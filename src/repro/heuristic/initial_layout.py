"""Initial-layout selection for the heuristic mappers.

A layout is a tuple ``layout[j] = i``: logical qubit ``j`` starts on physical
qubit ``i``.  Three selection policies are provided:

* trivial — logical ``j`` on physical ``j`` (what Qiskit 0.4 used by default),
* random — a uniformly random injective placement,
* greedy interaction — the most strongly interacting logical qubits are
  placed on the best connected physical qubits.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.layers import interaction_graph


def trivial_layout(circuit: QuantumCircuit, coupling: CouplingMap) -> Tuple[int, ...]:
    """Place logical qubit ``j`` on physical qubit ``j``."""
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on the device")
    return tuple(range(circuit.num_qubits))


def random_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    rng: Optional[random.Random] = None,
) -> Tuple[int, ...]:
    """Place the logical qubits on a uniformly random injective set of physical qubits."""
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on the device")
    rng = rng if rng is not None else random.Random()
    physical = list(range(coupling.num_qubits))
    rng.shuffle(physical)
    return tuple(physical[: circuit.num_qubits])


def greedy_interaction_layout(
    circuit: QuantumCircuit, coupling: CouplingMap
) -> Tuple[int, ...]:
    """Match strongly interacting logical qubits with well-connected physical qubits.

    Logical qubits are sorted by their total CNOT interaction count, physical
    qubits by degree; then each logical qubit is placed next to its already
    placed interaction partners when possible.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on the device")
    interactions = interaction_graph(circuit)
    logical_order: List[int] = sorted(
        range(circuit.num_qubits),
        key=lambda q: -sum(
            data["weight"] for _, _, data in interactions.edges(q, data=True)
        ),
    )
    physical_by_degree = sorted(
        range(coupling.num_qubits), key=lambda p: -coupling.degree(p)
    )
    placement: dict[int, int] = {}
    used: set[int] = set()
    for logical in logical_order:
        # Prefer a free physical qubit adjacent to already placed partners.
        candidate = None
        for partner in interactions[logical]:
            if partner in placement:
                for neighbour in coupling.neighbours(placement[partner]):
                    if neighbour not in used:
                        candidate = neighbour
                        break
            if candidate is not None:
                break
        if candidate is None:
            candidate = next(p for p in physical_by_degree if p not in used)
        placement[logical] = candidate
        used.add(candidate)
    return tuple(placement[j] for j in range(circuit.num_qubits))


__all__ = ["trivial_layout", "random_layout", "greedy_interaction_layout"]
