"""Shared machinery for the heuristic mappers.

Heuristic mappers process the circuit gate by gate while maintaining the
current logical-to-physical layout; they insert SWAPs (recorded gate by gate)
whenever a CNOT's qubits are not adjacent.  Unlike the exact engines they
build the mapped circuit directly, which also lets them work on devices that
are too large for an exhaustive permutation table.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Barrier, Measure
from repro.exact.cost import CostBreakdown
from repro.exact.result import MappingResult, MappingSchedule


class HeuristicMapper(ABC):
    """Base class of the heuristic mapping baselines."""

    #: Engine name used in result objects and benchmark tables.
    name: str = "heuristic"

    def __init__(self, coupling: CouplingMap, decompose_swaps: bool = True):
        self.coupling = coupling
        self.decompose_swaps = decompose_swaps

    # ------------------------------------------------------------------
    @abstractmethod
    def _run(self, circuit: QuantumCircuit) -> "_MappingTrace":
        """Produce the mapping trace for *circuit* (engine specific)."""

    def map(self, circuit: QuantumCircuit) -> MappingResult:
        """Map *circuit* and return a :class:`MappingResult`."""
        if circuit.num_qubits > self.coupling.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} logical qubits but the device "
                f"only has {self.coupling.num_qubits}"
            )
        start = time.monotonic()
        trace = self._run(circuit)
        runtime = time.monotonic() - start
        original_gates = circuit.count_single_qubit() + circuit.count_cnot()
        cost = CostBreakdown(
            original_gates=original_gates,
            swaps=trace.swap_count,
            reversals=trace.reversal_count,
        )
        schedule = MappingSchedule(
            num_logical=circuit.num_qubits,
            num_physical=self.coupling.num_qubits,
            mappings=trace.cnot_mappings,
            initial_mapping=trace.initial_layout,
        )
        return MappingResult(
            mapped_circuit=trace.circuit,
            original_circuit=circuit,
            schedule=schedule,
            cost=cost,
            objective=cost.added_cost,
            optimal=False,
            engine=self.name,
            strategy="heuristic",
            num_permutation_spots=None,
            runtime_seconds=runtime,
            statistics=trace.statistics,
        )


class _MappingTrace:
    """Mutable helper that records the circuit built by a heuristic mapper."""

    def __init__(self, coupling: CouplingMap, num_logical: int,
                 initial_layout: Tuple[int, ...], num_clbits: int,
                 decompose_swaps: bool, name: str):
        self.coupling = coupling
        self.decompose_swaps = decompose_swaps
        self.circuit = QuantumCircuit(coupling.num_qubits, name, num_clbits)
        self.layout: List[int] = list(initial_layout)
        self.initial_layout: Tuple[int, ...] = tuple(initial_layout)
        self.swap_count = 0
        self.reversal_count = 0
        self.cnot_mappings: List[Tuple[int, ...]] = []
        self.statistics: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def physical(self, logical: int) -> int:
        """Physical qubit currently hosting *logical*."""
        return self.layout[logical]

    def apply_swap(self, physical_a: int, physical_b: int) -> None:
        """Insert a SWAP between two coupled physical qubits and update the layout."""
        if self.coupling.allows_cnot(physical_a, physical_b):
            control, target = physical_a, physical_b
        elif self.coupling.allows_cnot(physical_b, physical_a):
            control, target = physical_b, physical_a
        else:
            raise ValueError(
                f"cannot SWAP physical qubits {physical_a} and {physical_b}: not coupled"
            )
        if self.decompose_swaps:
            self.circuit.cx(control, target)
            self.circuit.h(control)
            self.circuit.h(target)
            self.circuit.cx(control, target)
            self.circuit.h(control)
            self.circuit.h(target)
            self.circuit.cx(control, target)
        else:
            self.circuit.swap(control, target)
        self.swap_count += 1
        for logical, physical in enumerate(self.layout):
            if physical == physical_a:
                self.layout[logical] = physical_b
            elif physical == physical_b:
                self.layout[logical] = physical_a

    def apply_cnot(self, control: int, target: int) -> None:
        """Insert a CNOT between logical qubits, fixing the direction if needed."""
        physical_control = self.layout[control]
        physical_target = self.layout[target]
        self.cnot_mappings.append(tuple(self.layout))
        if self.coupling.allows_cnot(physical_control, physical_target):
            self.circuit.cx(physical_control, physical_target)
        elif self.coupling.allows_cnot(physical_target, physical_control):
            self.circuit.h(physical_control)
            self.circuit.h(physical_target)
            self.circuit.cx(physical_target, physical_control)
            self.circuit.h(physical_control)
            self.circuit.h(physical_target)
            self.reversal_count += 1
        else:
            raise ValueError(
                f"CNOT({control}, {target}) mapped to uncoupled physical pair "
                f"({physical_control}, {physical_target})"
            )

    def apply_other(self, gate) -> None:
        """Forward a non-CNOT gate to the physical qubits of its logical qubits."""
        if isinstance(gate, Measure):
            self.circuit.measure(self.layout[gate.qubit], gate.clbit)
        elif isinstance(gate, Barrier):
            self.circuit.append(Barrier(tuple(self.layout[q] for q in gate.qubits)))
        elif gate.is_single_qubit:
            self.circuit.append(gate.remap({gate.qubits[0]: self.layout[gate.qubits[0]]}))
        else:
            raise ValueError(
                f"two-qubit gate {gate.name!r} is not supported by the heuristic "
                "mappers; decompose the circuit into CNOT + single-qubit gates first"
            )


__all__ = ["HeuristicMapper"]
