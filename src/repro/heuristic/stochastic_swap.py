"""Re-implementation of the Qiskit-0.4-era stochastic swap mapper.

This is the baseline the paper compares against (Table 1, last column,
"IBM [12]").  The algorithm processes the circuit layer by layer (gates on
pairwise disjoint qubits); whenever a layer contains a CNOT whose qubits are
not adjacent under the current layout, a randomised greedy search inserts
SWAPs that reduce the total distance between the CNOT endpoints of the layer.
The whole mapping is repeated for a number of independent trials with
different random seeds and the cheapest result is kept — the paper ran
Qiskit's probabilistic mapper 5 times and reported the observed minimum.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.cache import shared_distance_matrix
from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.layers import front_layers
from repro.heuristic.base import HeuristicMapper, _MappingTrace
from repro.heuristic.initial_layout import random_layout, trivial_layout


class StochasticSwapMapper(HeuristicMapper):
    """Layer-by-layer randomised SWAP insertion (Qiskit 0.4 style).

    Args:
        coupling: Target architecture.
        trials: Number of independent randomised mapping attempts; the
            cheapest mapped circuit is returned (the paper uses 5).
        seed: Seed of the pseudo-random generator (for reproducibility).
        randomize_initial_layout: Start each trial except the first from a
            random initial layout (the first trial uses the trivial layout,
            as Qiskit 0.4 did).
        max_swaps_per_layer: Safety bound on SWAP insertions per layer.
        decompose_swaps: Emit SWAPs as 7-gate decompositions (default).
    """

    name = "stochastic"

    def __init__(
        self,
        coupling: CouplingMap,
        trials: int = 5,
        seed: Optional[int] = 0,
        randomize_initial_layout: bool = True,
        max_swaps_per_layer: int = 100,
        decompose_swaps: bool = True,
    ):
        super().__init__(coupling, decompose_swaps=decompose_swaps)
        if trials < 1:
            raise ValueError("trials must be at least 1")
        self.trials = trials
        self.seed = seed
        self.randomize_initial_layout = randomize_initial_layout
        self.max_swaps_per_layer = max_swaps_per_layer
        self._distances = shared_distance_matrix(coupling)

    # ------------------------------------------------------------------
    def _layer_distance(self, trace: _MappingTrace,
                        cnots: Sequence[Tuple[int, int]]) -> int:
        """Sum of physical distances between the endpoints of the layer's CNOTs."""
        total = 0
        for control, target in cnots:
            total += self._distances[trace.physical(control)][trace.physical(target)]
        return total

    def _layer_executable(self, trace: _MappingTrace,
                          cnots: Sequence[Tuple[int, int]]) -> bool:
        return all(
            self.coupling.connected(trace.physical(control), trace.physical(target))
            for control, target in cnots
        )

    def _route_layer(self, trace: _MappingTrace,
                     cnots: Sequence[Tuple[int, int]],
                     rng: random.Random) -> None:
        """Insert SWAPs until every CNOT of the layer acts on coupled qubits."""
        swaps_inserted = 0
        while not self._layer_executable(trace, cnots):
            if swaps_inserted >= self.max_swaps_per_layer:
                raise RuntimeError(
                    "stochastic swap search exceeded the per-layer SWAP budget"
                )
            current = self._layer_distance(trace, cnots)
            best_edges: List[Tuple[int, int]] = []
            best_score: Optional[float] = None
            for edge in sorted(self.coupling.undirected_edges):
                # Tentatively apply the swap on the layout only.
                layout = list(trace.layout)
                for logical, physical in enumerate(layout):
                    if physical == edge[0]:
                        layout[logical] = edge[1]
                    elif physical == edge[1]:
                        layout[logical] = edge[0]
                score = 0
                for control, target in cnots:
                    score += self._distances[layout[control]][layout[target]]
                noise = rng.uniform(0.0, 0.5)
                total = score + noise
                if best_score is None or total < best_score:
                    best_score = total
                    best_edges = [edge]
            # Require progress with high probability; allow occasional sideways
            # moves so the search does not get stuck in local minima.
            chosen = best_edges[0]
            trace.apply_swap(chosen[0], chosen[1])
            swaps_inserted += 1
            new_distance = self._layer_distance(trace, cnots)
            if new_distance > current and rng.random() < 0.5 and swaps_inserted > 1:
                # Undo unproductive oscillation by swapping back.
                trace.apply_swap(chosen[0], chosen[1])
                swaps_inserted += 1

    # ------------------------------------------------------------------
    def _single_trial(self, circuit: QuantumCircuit,
                      initial_layout: Tuple[int, ...],
                      rng: random.Random) -> _MappingTrace:
        trace = _MappingTrace(
            self.coupling,
            circuit.num_qubits,
            initial_layout,
            circuit.num_clbits,
            self.decompose_swaps,
            f"{circuit.name}_mapped",
        )
        layers = front_layers(circuit)
        for layer in layers:
            gates = [circuit.gates[index] for index in layer]
            cnots = [(g.control, g.target) for g in gates if g.is_cnot]
            if cnots:
                self._route_layer(trace, cnots, rng)
            for gate in gates:
                if gate.is_cnot:
                    trace.apply_cnot(gate.control, gate.target)
                else:
                    trace.apply_other(gate)
        return trace

    def _run(self, circuit: QuantumCircuit) -> _MappingTrace:
        rng = random.Random(self.seed)
        best_trace: Optional[_MappingTrace] = None
        best_cost: Optional[int] = None
        for trial in range(self.trials):
            if trial == 0 or not self.randomize_initial_layout:
                layout = trivial_layout(circuit, self.coupling)
            else:
                layout = random_layout(circuit, self.coupling, rng)
            trial_rng = random.Random(rng.random())
            trace = self._single_trial(circuit, layout, trial_rng)
            cost = trace.circuit.gate_cost()
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_trace = trace
        assert best_trace is not None
        best_trace.statistics["trials"] = float(self.trials)
        return best_trace


__all__ = ["StochasticSwapMapper"]
