"""Heuristic mapping baselines.

The paper compares its exact results against the heuristic swap mapper
shipped with IBM's Qiskit 0.4.15 (Table 1, last column).  Qiskit is not
available in this environment, so :mod:`repro.heuristic.stochastic_swap`
re-implements that generation of mapper (layer-by-layer randomised SWAP
search, best of several trials).  A SABRE-style look-ahead mapper is provided
as a second, stronger baseline for the extension benchmarks.
"""

from repro.heuristic.base import HeuristicMapper
from repro.heuristic.initial_layout import (
    trivial_layout,
    random_layout,
    greedy_interaction_layout,
)
from repro.heuristic.stochastic_swap import StochasticSwapMapper
from repro.heuristic.sabre_lite import SabreLiteMapper

__all__ = [
    "HeuristicMapper",
    "trivial_layout",
    "random_layout",
    "greedy_interaction_layout",
    "StochasticSwapMapper",
    "SabreLiteMapper",
]
