"""A simplified SABRE-style look-ahead swap mapper.

This second heuristic baseline is more recent than the Qiskit-0.4 stochastic
mapper: it keeps a *front layer* of CNOTs whose dependencies are satisfied
and greedily chooses SWAPs that minimise a weighted sum of the distances of
the front layer and of an extended look-ahead window (Li, Ding, Xie,
"Tackling the qubit mapping problem for NISQ-era quantum devices", ASPLOS
2019 — reference [13] of the paper).  It is included as an extension
experiment to show where the exact minimum sits relative to a stronger
heuristic than the one the paper compared against.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.cache import shared_distance_matrix
from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.heuristic.base import HeuristicMapper, _MappingTrace
from repro.heuristic.initial_layout import greedy_interaction_layout, trivial_layout


class SabreLiteMapper(HeuristicMapper):
    """Front-layer + look-ahead SWAP selection.

    Args:
        coupling: Target architecture.
        lookahead: Number of upcoming CNOTs included in the extended cost set.
        lookahead_weight: Relative weight of the extended set in the SWAP score.
        use_greedy_layout: Start from the interaction-aware greedy layout
            instead of the trivial one.
        seed: Random tie-breaking seed.
        decompose_swaps: Emit SWAPs as 7-gate decompositions (default).
    """

    name = "sabre_lite"

    def __init__(
        self,
        coupling: CouplingMap,
        lookahead: int = 20,
        lookahead_weight: float = 0.5,
        use_greedy_layout: bool = True,
        seed: Optional[int] = 0,
        decompose_swaps: bool = True,
    ):
        super().__init__(coupling, decompose_swaps=decompose_swaps)
        self.lookahead = lookahead
        self.lookahead_weight = lookahead_weight
        self.use_greedy_layout = use_greedy_layout
        self.seed = seed
        # Shared per-architecture matrix: the lookahead reads it, never
        # writes, so heuristics and the routed synthesizer share one copy.
        self._distances = shared_distance_matrix(coupling)

    # ------------------------------------------------------------------
    def _distance(self, trace: _MappingTrace, control: int, target: int) -> int:
        return self._distances[trace.physical(control)][trace.physical(target)]

    def _score(self, layout: Sequence[int],
               front: Sequence[Tuple[int, int]],
               extended: Sequence[Tuple[int, int]]) -> float:
        front_score = sum(
            self._distances[layout[c]][layout[t]] for c, t in front
        )
        if not extended:
            return float(front_score)
        extended_score = sum(
            self._distances[layout[c]][layout[t]] for c, t in extended
        ) / len(extended)
        return front_score + self.lookahead_weight * extended_score

    # ------------------------------------------------------------------
    def _run(self, circuit: QuantumCircuit) -> _MappingTrace:
        rng = random.Random(self.seed)
        if self.use_greedy_layout:
            layout = greedy_interaction_layout(circuit, self.coupling)
        else:
            layout = trivial_layout(circuit, self.coupling)
        trace = _MappingTrace(
            self.coupling,
            circuit.num_qubits,
            layout,
            circuit.num_clbits,
            self.decompose_swaps,
            f"{circuit.name}_mapped",
        )

        gates = list(circuit.gates)
        emitted = [False] * len(gates)
        swaps_without_progress = 0

        def dependencies_satisfied(index: int) -> bool:
            qubits = set(gates[index].qubits)
            for earlier in range(index):
                if not emitted[earlier] and qubits & set(gates[earlier].qubits):
                    return False
            return True

        while not all(emitted):
            progress = False
            # Emit every gate whose dependencies are satisfied and that is
            # directly executable (single-qubit gates always are).
            for index, gate in enumerate(gates):
                if emitted[index] or not dependencies_satisfied(index):
                    continue
                if not gate.is_cnot:
                    trace.apply_other(gate)
                    emitted[index] = True
                    progress = True
                    continue
                if self.coupling.connected(
                    trace.physical(gate.control), trace.physical(gate.target)
                ):
                    trace.apply_cnot(gate.control, gate.target)
                    emitted[index] = True
                    progress = True
            if all(emitted):
                break
            if progress:
                swaps_without_progress = 0
                continue
            # No gate is executable: pick a SWAP guided by the front layer and
            # a look-ahead window of upcoming CNOTs.
            front = [
                (gates[i].control, gates[i].target)
                for i in range(len(gates))
                if not emitted[i] and gates[i].is_cnot and dependencies_satisfied(i)
            ]
            upcoming = [
                (gates[i].control, gates[i].target)
                for i in range(len(gates))
                if not emitted[i] and gates[i].is_cnot
            ][: self.lookahead]
            best_edge: Optional[Tuple[int, int]] = None
            best_score: Optional[float] = None
            for edge in sorted(self.coupling.undirected_edges):
                layout_candidate = list(trace.layout)
                for logical, physical in enumerate(layout_candidate):
                    if physical == edge[0]:
                        layout_candidate[logical] = edge[1]
                    elif physical == edge[1]:
                        layout_candidate[logical] = edge[0]
                score = self._score(layout_candidate, front, upcoming)
                score += rng.uniform(0.0, 1e-3)
                if best_score is None or score < best_score:
                    best_score = score
                    best_edge = edge
            assert best_edge is not None
            trace.apply_swap(best_edge[0], best_edge[1])
            swaps_without_progress += 1
            if swaps_without_progress > 10 * self.coupling.num_qubits:
                raise RuntimeError("SABRE-lite failed to make progress")
        trace.statistics["lookahead"] = float(self.lookahead)
        return trace


__all__ = ["SabreLiteMapper"]
