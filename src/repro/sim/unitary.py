"""Construction of the full unitary matrix of a circuit."""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.sim.statevector import SimulationError, apply_gate, basis_state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Return the ``2^n x 2^n`` unitary implemented by *circuit*.

    Measurements are rejected; barriers are ignored.  Intended for small
    circuits (the matrix is dense).
    """
    num_qubits = circuit.num_qubits
    dimension = 2 ** num_qubits
    if num_qubits > 12:
        raise SimulationError(
            f"refusing to build a dense unitary on {num_qubits} qubits"
        )
    columns = []
    for index in range(dimension):
        state = basis_state(num_qubits, index)
        for gate in circuit.gates:
            if gate.name == "measure":
                raise SimulationError("cannot build the unitary of a circuit with measurements")
            state = apply_gate(state, gate, num_qubits)
        columns.append(state)
    return np.stack(columns, axis=1)


def unitaries_equal_up_to_global_phase(first: np.ndarray, second: np.ndarray,
                                       tolerance: float = 1e-9) -> bool:
    """True when the two unitaries differ only by a global phase."""
    if first.shape != second.shape:
        return False
    # Find the first entry with significant magnitude to estimate the phase.
    flat_first = first.reshape(-1)
    flat_second = second.reshape(-1)
    index = int(np.argmax(np.abs(flat_first)))
    if abs(flat_first[index]) < tolerance:
        return bool(np.allclose(first, second, atol=tolerance))
    if abs(flat_second[index]) < tolerance:
        return False
    phase = flat_second[index] / flat_first[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(first * phase, second, atol=1e-7))


__all__ = ["circuit_unitary", "unitaries_equal_up_to_global_phase"]
