"""Dense statevector simulation of the circuit IR.

The convention is little-endian: qubit 0 is the least significant bit of the
basis-state index.  The simulator supports all unitary gates of the IR;
barriers are ignored and measurements are rejected (the equivalence checks in
this library operate on pure states).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate
from repro.circuit.matrices import gate_matrix


class SimulationError(ValueError):
    """Raised when a circuit cannot be simulated."""


def zero_state(num_qubits: int) -> np.ndarray:
    """The all-zeros computational basis state on *num_qubits* qubits."""
    if num_qubits <= 0:
        raise SimulationError("need at least one qubit")
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(num_qubits: int, index: int) -> np.ndarray:
    """The computational basis state ``|index>`` on *num_qubits* qubits."""
    if not 0 <= index < 2 ** num_qubits:
        raise SimulationError(f"basis index {index} out of range")
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def random_state(num_qubits: int, seed: Optional[int] = None) -> np.ndarray:
    """A Haar-ish random normalised state (Gaussian amplitudes)."""
    rng = np.random.default_rng(seed)
    amplitudes = rng.normal(size=2 ** num_qubits) + 1j * rng.normal(size=2 ** num_qubits)
    return amplitudes / np.linalg.norm(amplitudes)


def _apply_single(state: np.ndarray, matrix: np.ndarray, qubit: int,
                  num_qubits: int) -> np.ndarray:
    """Apply a 2x2 matrix to *qubit* of *state*."""
    tensor = state.reshape([2] * num_qubits)
    axis = num_qubits - 1 - qubit
    tensor = np.moveaxis(tensor, axis, 0)
    shaped = tensor.reshape(2, -1)
    shaped = matrix @ shaped
    tensor = shaped.reshape([2] + [2] * (num_qubits - 1))
    tensor = np.moveaxis(tensor, 0, axis)
    return tensor.reshape(-1)


def _apply_two(state: np.ndarray, matrix: np.ndarray, qubit_a: int, qubit_b: int,
               num_qubits: int) -> np.ndarray:
    """Apply a 4x4 matrix to (*qubit_a*, *qubit_b*) of *state*.

    The matrix convention follows :mod:`repro.circuit.matrices`: the first
    gate qubit (``qubit_a``) is the more significant bit of the 2-qubit space.
    """
    tensor = state.reshape([2] * num_qubits)
    axis_a = num_qubits - 1 - qubit_a
    axis_b = num_qubits - 1 - qubit_b
    tensor = np.moveaxis(tensor, (axis_a, axis_b), (0, 1))
    shaped = tensor.reshape(4, -1)
    shaped = matrix @ shaped
    tensor = shaped.reshape([2, 2] + [2] * (num_qubits - 2))
    tensor = np.moveaxis(tensor, (0, 1), (axis_a, axis_b))
    return tensor.reshape(-1)


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one IR gate to *state* and return the new state."""
    if gate.name == "barrier":
        return state
    if gate.name == "measure":
        raise SimulationError("measurements are not supported by the statevector simulator")
    matrix = gate_matrix(gate)
    if gate.num_qubits == 1:
        return _apply_single(state, matrix, gate.qubits[0], num_qubits)
    if gate.num_qubits == 2:
        return _apply_two(state, matrix, gate.qubits[0], gate.qubits[1], num_qubits)
    raise SimulationError(f"cannot simulate {gate.num_qubits}-qubit gate {gate.name!r}")


class StatevectorSimulator:
    """Simulates circuits on dense statevectors.

    Example:
        >>> from repro.circuit import QuantumCircuit
        >>> bell = QuantumCircuit(2)
        >>> bell.h(0).cx(0, 1)
        >>> sim = StatevectorSimulator()
        >>> abs(sim.run(bell)[0]) ** 2  # doctest: +ELLIPSIS
        0.4999...
    """

    def run(self, circuit: QuantumCircuit,
            initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        """Simulate *circuit* starting from *initial_state* (default ``|0...0>``)."""
        num_qubits = circuit.num_qubits
        if initial_state is None:
            state = zero_state(num_qubits)
        else:
            state = np.asarray(initial_state, dtype=complex)
            if state.shape != (2 ** num_qubits,):
                raise SimulationError(
                    f"initial state has wrong dimension {state.shape} for "
                    f"{num_qubits} qubits"
                )
            state = state.copy()
        for gate in circuit.gates:
            if gate.name == "measure":
                continue
            state = apply_gate(state, gate, num_qubits)
        return state

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Measurement probabilities of the final state in the computational basis."""
        state = self.run(circuit)
        return np.abs(state) ** 2


__all__ = [
    "SimulationError",
    "zero_state",
    "basis_state",
    "random_state",
    "apply_gate",
    "StatevectorSimulator",
]
