"""Functional equivalence of a mapped circuit and its original.

A mapped circuit acts on the ``m`` physical qubits of a device; the original
acts on ``n`` logical qubits.  The two are equivalent when, for every input
state of the logical qubits placed according to the *initial mapping* (with
all unused physical qubits in ``|0>``), the mapped circuit produces the
original circuit's output placed according to the *final mapping* (unused
physical qubits back in ``|0>``, since SWAPs merely permute them).

The check is performed on a configurable number of random input states plus
a few computational basis states, which makes it both fast and (for the
circuit sizes of this library) extremely unlikely to accept a wrong circuit.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.exact.result import MappingResult
from repro.sim.statevector import (
    StatevectorSimulator,
    basis_state,
    random_state,
    zero_state,
)


def states_equal_up_to_global_phase(first: np.ndarray, second: np.ndarray,
                                    tolerance: float = 1e-7) -> bool:
    """True when two state vectors differ only by a global phase."""
    if first.shape != second.shape:
        return False
    norm_first = np.linalg.norm(first)
    norm_second = np.linalg.norm(second)
    if abs(norm_first - norm_second) > tolerance:
        return False
    overlap = np.vdot(first, second)
    return bool(abs(abs(overlap) - norm_first * norm_second) < tolerance)


def _embed_state(logical_state: np.ndarray, num_logical: int, num_physical: int,
                 mapping: Sequence[int]) -> np.ndarray:
    """Place a logical state onto physical qubits according to *mapping*.

    Physical qubit ``mapping[j]`` receives logical qubit ``j``; all other
    physical qubits are ``|0>``.
    """
    embedded = np.zeros(2 ** num_physical, dtype=complex)
    for logical_index in range(2 ** num_logical):
        amplitude = logical_state[logical_index]
        if amplitude == 0:
            continue
        physical_index = 0
        for logical_qubit in range(num_logical):
            if (logical_index >> logical_qubit) & 1:
                physical_index |= 1 << mapping[logical_qubit]
        embedded[physical_index] += amplitude
    return embedded


def mapped_circuit_equivalent(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    initial_mapping: Sequence[int],
    final_mapping: Sequence[int],
    num_random_states: int = 3,
    seed: Optional[int] = 1234,
) -> bool:
    """Check that *mapped* realises *original* under the given mappings.

    Args:
        original: The original circuit on ``n`` logical qubits.
        mapped: The mapped circuit on ``m >= n`` physical qubits.
        initial_mapping: ``initial_mapping[j]`` is the physical qubit holding
            logical qubit ``j`` at the start.
        final_mapping: The same at the end of the circuit.
        num_random_states: Number of random logical input states to test in
            addition to a few basis states.
        seed: Seed for the random input states.

    Returns:
        True when all tested inputs produce matching outputs (up to global
        phase).
    """
    num_logical = original.num_qubits
    num_physical = mapped.num_qubits
    simulator = StatevectorSimulator()

    test_states = [zero_state(num_logical)]
    for index in range(min(2 ** num_logical, 3)):
        test_states.append(basis_state(num_logical, (index * 3 + 1) % 2 ** num_logical))
    for offset in range(num_random_states):
        test_states.append(random_state(num_logical, seed=None if seed is None else seed + offset))

    for logical_input in test_states:
        expected_logical = simulator.run(original, initial_state=logical_input)
        expected_physical = _embed_state(
            expected_logical, num_logical, num_physical, final_mapping
        )
        physical_input = _embed_state(
            logical_input, num_logical, num_physical, initial_mapping
        )
        actual = simulator.run(mapped, initial_state=physical_input)
        if not states_equal_up_to_global_phase(expected_physical, actual):
            return False
    return True


def result_is_equivalent(result: MappingResult, **kwargs) -> bool:
    """Equivalence check directly on a :class:`MappingResult`."""
    original = result.original_circuit
    stripped = QuantumCircuit(original.num_qubits, original.name, original.num_clbits)
    for gate in original.gates:
        if gate.name == "measure":
            continue
        stripped.append(gate)
    mapped = QuantumCircuit(
        result.mapped_circuit.num_qubits,
        result.mapped_circuit.name,
        result.mapped_circuit.num_clbits,
    )
    for gate in result.mapped_circuit.gates:
        if gate.name == "measure":
            continue
        mapped.append(gate)
    return mapped_circuit_equivalent(
        stripped,
        mapped,
        result.initial_mapping,
        result.final_mapping,
        **kwargs,
    )


__all__ = [
    "states_equal_up_to_global_phase",
    "mapped_circuit_equivalent",
    "result_is_equivalent",
]
