"""Simulation and functional-equivalence checking.

The mapping algorithms must not change the functionality of a circuit (up to
the known relocation of the logical qubits).  This subpackage provides a
dense statevector simulator, a unitary builder and an equivalence checker
used throughout the test suite to validate every mapper end to end.
"""

from repro.sim.statevector import StatevectorSimulator, apply_gate, zero_state
from repro.sim.unitary import circuit_unitary
from repro.sim.equivalence import (
    mapped_circuit_equivalent,
    states_equal_up_to_global_phase,
)

__all__ = [
    "StatevectorSimulator",
    "apply_gate",
    "zero_state",
    "circuit_unitary",
    "mapped_circuit_equivalent",
    "states_equal_up_to_global_phase",
]
