"""repro — exact mapping of quantum circuits to IBM QX architectures.

A from-scratch Python reproduction of

    R. Wille, L. Burgholzer, A. Zulehner:
    "Mapping Quantum Circuits to IBM QX Architectures Using the Minimal
    Number of SWAP and H Operations", DAC 2019.

The package bundles everything the paper's tool-flow needs: a quantum
circuit IR with an OpenQASM 2.0 front end, the IBM QX coupling maps, a CDCL
SAT solver with a weighted-objective optimiser (standing in for Z3), the
paper's symbolic mapping formulation with its performance improvements, a
dynamic-programming exact oracle, heuristic baselines, a simulator-based
equivalence checker and the Table-1 benchmark suite.

Quickstart::

    from repro import QuantumCircuit, ibm_qx4, SATMapper

    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    result = SATMapper(ibm_qx4()).map(circuit)
    print(result.summary())
"""

from repro.circuit import QuantumCircuit, parse_qasm, parse_qasm_file, to_qasm
from repro.arch import (
    CouplingMap,
    ibm_qx2,
    ibm_qx4,
    ibm_qx5,
    ibm_tokyo,
    linear_architecture,
    ring_architecture,
    grid_architecture,
    fully_connected_architecture,
    get_architecture,
)
from repro.exact import (
    SATMapper,
    DPMapper,
    MappingResult,
    MappingSchedule,
    SWAP_COST,
    REVERSAL_COST,
    get_strategy,
    available_strategies,
)
from repro.heuristic import StochasticSwapMapper, SabreLiteMapper
from repro.pipeline import (
    BatchItem,
    MappingPipeline,
    PortfolioMapper,
    available_mappers,
    get_mapper,
    register_mapper,
)
from repro.sim import StatevectorSimulator, mapped_circuit_equivalent
from repro.verify import check_coupling_compliance, verify_result
from repro.benchlib import benchmark_circuit, benchmark_names, get_record
from repro.service import (
    MappingService,
    ResultStore,
    ServiceError,
    job_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "parse_qasm",
    "parse_qasm_file",
    "to_qasm",
    "CouplingMap",
    "ibm_qx2",
    "ibm_qx4",
    "ibm_qx5",
    "ibm_tokyo",
    "linear_architecture",
    "ring_architecture",
    "grid_architecture",
    "fully_connected_architecture",
    "get_architecture",
    "SATMapper",
    "DPMapper",
    "MappingResult",
    "MappingSchedule",
    "SWAP_COST",
    "REVERSAL_COST",
    "get_strategy",
    "available_strategies",
    "StochasticSwapMapper",
    "SabreLiteMapper",
    "BatchItem",
    "MappingPipeline",
    "PortfolioMapper",
    "available_mappers",
    "get_mapper",
    "register_mapper",
    "StatevectorSimulator",
    "mapped_circuit_equivalent",
    "check_coupling_compliance",
    "verify_result",
    "benchmark_circuit",
    "benchmark_names",
    "get_record",
    "MappingService",
    "ResultStore",
    "ServiceError",
    "job_fingerprint",
    "__version__",
]
