"""Reconstruction of the mapped circuit from a mapping schedule.

Given the original circuit and a :class:`~repro.exact.result.MappingSchedule`
(one complete logical-to-physical mapping per CNOT gate), this module builds
the architecture-compliant circuit:

* mapping changes between consecutive CNOTs are realised by minimal SWAP
  sequences along coupling-map edges; each SWAP is emitted in its
  7-operation decomposition (3 CNOTs + 4 H, Fig. 3 of the paper) so that the
  output circuit only contains gates the architecture supports natively,
* CNOTs whose placement goes against the coupling direction are surrounded by
  four Hadamards (cost 4),
* single-qubit gates, barriers and measurements are forwarded to the physical
  qubit currently hosting their logical qubit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.cache import shared_synthesizer
from repro.arch.coupling import CouplingError, CouplingMap
from repro.arch.synthesis import PermutationSynthesizer
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Barrier, CNOTGate, Measure
from repro.exact.cost import CostBreakdown
from repro.exact.result import MappingResult, MappingSchedule


class ReconstructionError(ValueError):
    """Raised when a schedule cannot be realised on the architecture."""


def _emit_swap(circuit: QuantumCircuit, coupling: CouplingMap,
               qubit_a: int, qubit_b: int, decompose: bool) -> None:
    """Append one SWAP between two coupled physical qubits.

    With ``decompose=True`` the SWAP is emitted as its 7-gate elementary
    decomposition (3 CNOTs with the middle one direction-fixed by 4 H gates);
    otherwise a single ``swap`` gate is appended (it still counts as 7
    operations in the cost model).
    """
    if coupling.allows_cnot(qubit_a, qubit_b):
        control, target = qubit_a, qubit_b
    elif coupling.allows_cnot(qubit_b, qubit_a):
        control, target = qubit_b, qubit_a
    else:
        raise ReconstructionError(
            f"cannot SWAP physical qubits {qubit_a} and {qubit_b}: not coupled"
        )
    if not decompose:
        circuit.swap(control, target)
        return
    circuit.cx(control, target)
    circuit.h(control)
    circuit.h(target)
    circuit.cx(control, target)
    circuit.h(control)
    circuit.h(target)
    circuit.cx(control, target)


def _emit_cnot(circuit: QuantumCircuit, coupling: CouplingMap,
               control: int, target: int) -> bool:
    """Append one CNOT on physical qubits, reversing direction if needed.

    Returns:
        True when the CNOT had to be reversed (four H gates were added).
    """
    if coupling.allows_cnot(control, target):
        circuit.cx(control, target)
        return False
    if coupling.allows_cnot(target, control):
        circuit.h(control)
        circuit.h(target)
        circuit.cx(target, control)
        circuit.h(control)
        circuit.h(target)
        return True
    raise ReconstructionError(
        f"CNOT between physical qubits {control} and {target} is not allowed "
        f"by the coupling map {coupling.name!r}"
    )


def _swap_sequence(old: Tuple[int, ...], new: Tuple[int, ...],
                   coupling: CouplingMap,
                   table: Optional[PermutationSynthesizer]) -> List[Tuple[int, int]]:
    """SWAP-edge sequence turning mapping *old* into mapping *new*.

    Minimal when the provider is exact (``optimal=True``, devices of at most
    8 qubits); an upper bound from the routed synthesizer on larger devices.
    The fallback resolves through the process-wide cache, so an omitted
    provider never re-runs the exhaustive BFS per call.
    """
    if old == new:
        return []
    if table is None:
        table = shared_synthesizer(coupling)
    return table.transition_sequence(old, new)


def reconstruct_circuit(
    original: QuantumCircuit,
    schedule: MappingSchedule,
    coupling: CouplingMap,
    decompose_swaps: bool = True,
    permutation_table: Optional[PermutationSynthesizer] = None,
) -> Tuple[QuantumCircuit, CostBreakdown]:
    """Build the architecture-compliant circuit realising *schedule*.

    Args:
        original: The original circuit (including single-qubit gates).
        schedule: Per-CNOT logical-to-physical mappings.
        coupling: Target architecture.
        decompose_swaps: Emit SWAPs as their 7-gate decomposition (default)
            instead of opaque ``swap`` gates.
        permutation_table: Optional SWAP provider for *coupling* — an exact
            :class:`~repro.arch.permutations.PermutationTable` or any
            :class:`~repro.arch.synthesis.PermutationSynthesizer`; resolved
            from the shared cache by device size otherwise.

    Returns:
        The mapped circuit and its :class:`CostBreakdown`.

    Raises:
        ReconstructionError: If the schedule places a CNOT on an uncoupled
            pair or requires an impossible SWAP.
    """
    schedule.validate()
    mapped = QuantumCircuit(
        coupling.num_qubits, f"{original.name}_mapped", original.num_clbits
    )
    current = tuple(schedule.initial_mapping)
    swaps = 0
    reversals = 0
    cnot_index = 0

    for gate in original.gates:
        if gate.is_cnot:
            if cnot_index >= len(schedule.mappings):
                raise ReconstructionError(
                    f"schedule provides only {len(schedule.mappings)} mappings but "
                    "the circuit has more CNOT gates"
                )
            target_mapping = schedule.mappings[cnot_index]
            for edge in _swap_sequence(current, target_mapping, coupling,
                                       permutation_table):
                _emit_swap(mapped, coupling, edge[0], edge[1], decompose_swaps)
                swaps += 1
            current = target_mapping
            physical_control = current[gate.control]
            physical_target = current[gate.target]
            if _emit_cnot(mapped, coupling, physical_control, physical_target):
                reversals += 1
            cnot_index += 1
        elif isinstance(gate, Measure):
            mapped.measure(current[gate.qubit], gate.clbit)
        elif isinstance(gate, Barrier):
            mapped.append(Barrier(tuple(current[q] for q in gate.qubits)))
        elif gate.is_single_qubit:
            mapped.append(gate.remap({gate.qubits[0]: current[gate.qubits[0]]}))
        elif gate.num_qubits == 2:
            # Non-CNOT two-qubit gates (cz, swap) are not part of the paper's
            # gate set; reject them so the cost accounting stays honest.
            raise ReconstructionError(
                f"two-qubit gate {gate.name!r} is not supported; decompose the "
                "circuit into CNOT + single-qubit gates first"
            )
        else:
            raise ReconstructionError(f"unsupported gate {gate.name!r}")

    if cnot_index != len(schedule.mappings):
        raise ReconstructionError(
            f"schedule provides {len(schedule.mappings)} mappings but the circuit "
            f"has {cnot_index} CNOT gates"
        )

    original_gates = original.count_single_qubit() + original.count_cnot()
    cost = CostBreakdown(original_gates=original_gates, swaps=swaps, reversals=reversals)
    return mapped, cost


def build_result(
    original: QuantumCircuit,
    schedule: MappingSchedule,
    coupling: CouplingMap,
    engine: str,
    strategy: str,
    objective: Optional[int],
    optimal: bool,
    runtime_seconds: float,
    num_permutation_spots: Optional[int] = None,
    statistics: Optional[Dict[str, float]] = None,
    decompose_swaps: bool = True,
    permutation_table: Optional[PermutationSynthesizer] = None,
) -> MappingResult:
    """Convenience helper assembling a :class:`MappingResult` from a schedule."""
    mapped, cost = reconstruct_circuit(
        original,
        schedule,
        coupling,
        decompose_swaps=decompose_swaps,
        permutation_table=permutation_table,
    )
    return MappingResult(
        mapped_circuit=mapped,
        original_circuit=original,
        schedule=schedule,
        cost=cost,
        objective=objective,
        optimal=optimal,
        engine=engine,
        strategy=strategy,
        num_permutation_spots=num_permutation_spots,
        runtime_seconds=runtime_seconds,
        statistics=dict(statistics or {}),
    )


def default_schedule(num_logical: int, coupling: CouplingMap) -> MappingSchedule:
    """A trivial schedule for circuits without CNOT gates.

    Logical qubit ``j`` is placed on physical qubit ``j``.
    """
    if num_logical > coupling.num_qubits:
        raise ReconstructionError(
            f"circuit has {num_logical} logical qubits but the device only has "
            f"{coupling.num_qubits} physical qubits"
        )
    initial = tuple(range(num_logical))
    return MappingSchedule(
        num_logical=num_logical,
        num_physical=coupling.num_qubits,
        mappings=[],
        initial_mapping=initial,
    )


__all__ = [
    "ReconstructionError",
    "reconstruct_circuit",
    "build_result",
    "default_schedule",
]
