"""Exact mapping by dynamic programming over complete mappings.

The paper's cost function decomposes over the gate sequence: before every
CNOT the mapping may change (charged ``7 * swaps(pi)`` for the cheapest
permutation realising the change) and every CNOT placed against the coupling
direction costs 4.  For a fixed, small device the set of complete
logical-to-physical mappings is tiny (at most ``m! / (m - n)!``), so the
minimum of the paper's objective can be computed exactly by a shortest-path /
dynamic-programming sweep over "(gate index, mapping)" states.

This engine is *not* the paper's method (the paper uses a reasoning engine on
the symbolic formulation), but it computes the same minimum.  It serves two
purposes in this reproduction:

* as an independent oracle to cross-check the SAT formulation in the test
  suite (both engines must agree on the minimal cost),
* as a fast way to produce the "minimal" column of Table 1 for the larger
  benchmark circuits, where the pure-Python SAT optimiser would need
  impractically long runtimes.

The permutation-restriction strategies of Section 4.2 are supported in the
same way as in the SAT engine: between gates that are not permutation spots
the mapping must stay unchanged.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.cost import REVERSAL_COST, SWAP_COST
from repro.exact.reconstruction import build_result, default_schedule
from repro.exact.result import MappingResult, MappingSchedule
from repro.exact.strategies import AllGatesStrategy, PermutationStrategy
from repro.arch.cache import shared_permutation_table

State = Tuple[int, ...]


class DPMapper:
    """Exact mapper based on dynamic programming over complete mappings.

    Args:
        coupling: Target architecture (at most 8 physical qubits, since the
            full permutation table of the device is enumerated).
        strategy: Permutation-restriction strategy (defaults to permutations
            before every gate, i.e. the minimal formulation).
        decompose_swaps: Emit SWAPs in the reconstructed circuit as their
            7-gate decomposition (default) or as opaque ``swap`` gates.

    Example:
        >>> from repro.arch import ibm_qx4
        >>> from repro.circuit import QuantumCircuit
        >>> circuit = QuantumCircuit(3)
        >>> circuit.cx(0, 1).cx(1, 2).cx(0, 2)
        >>> result = DPMapper(ibm_qx4()).map(circuit)
        >>> result.optimal
        True
    """

    def __init__(
        self,
        coupling: CouplingMap,
        strategy: Optional[PermutationStrategy] = None,
        decompose_swaps: bool = True,
    ):
        self.coupling = coupling
        self.strategy = strategy if strategy is not None else AllGatesStrategy()
        self.decompose_swaps = decompose_swaps
        self._table = shared_permutation_table(coupling)
        self._transition_cache: Dict[Tuple[State, State], Optional[int]] = {}

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def _gate_cost(self, state: State, control: int, target: int) -> Optional[int]:
        """Placement cost of a CNOT under *state*; None when not placeable."""
        physical_control = state[control]
        physical_target = state[target]
        if self.coupling.allows_cnot(physical_control, physical_target):
            return 0
        if self.coupling.allows_cnot(physical_target, physical_control):
            return REVERSAL_COST
        return None

    def _transition_cost(self, old: State, new: State) -> Optional[int]:
        """SWAP cost (in elementary operations) of changing *old* into *new*."""
        if old == new:
            return 0
        key = (old, new)
        if key in self._transition_cache:
            return self._transition_cache[key]
        try:
            swaps = self._table.transition_cost(old, new)
            cost: Optional[int] = SWAP_COST * swaps
        except ValueError:
            cost = None
        self._transition_cache[key] = cost
        return cost

    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit) -> MappingResult:
        """Map *circuit* and return the minimal-cost result.

        Raises:
            ValueError: If the circuit needs more logical qubits than the
                device offers, or a CNOT cannot be placed at all.
        """
        start = time.monotonic()
        num_logical = circuit.num_qubits
        num_physical = self.coupling.num_qubits
        if num_logical > num_physical:
            raise ValueError(
                f"circuit has {num_logical} logical qubits but the device only "
                f"has {num_physical}"
            )
        cnot_gates = circuit.cnot_gates()
        gates = [(gate.control, gate.target) for gate in cnot_gates]
        if not gates:
            schedule = default_schedule(num_logical, self.coupling)
            return build_result(
                circuit, schedule, self.coupling,
                engine="dp", strategy=self.strategy.name,
                objective=0, optimal=True,
                runtime_seconds=time.monotonic() - start,
                num_permutation_spots=0,
                statistics={"states": 0},
                decompose_swaps=self.decompose_swaps,
                permutation_table=self._table,
            )

        spots = set(self.strategy.spots(cnot_gates, self.coupling))
        spots.add(0)

        all_states: List[State] = list(
            itertools.permutations(range(num_physical), num_logical)
        )

        # Valid states per gate: the gate's qubits must sit on a coupled pair.
        valid_states: List[List[Tuple[State, int]]] = []
        for control, target in gates:
            options: List[Tuple[State, int]] = []
            for state in all_states:
                cost = self._gate_cost(state, control, target)
                if cost is not None:
                    options.append((state, cost))
            if not options:
                raise ValueError(
                    f"CNOT({control}, {target}) cannot be placed on any coupled pair"
                )
            valid_states.append(options)

        # Dynamic programming over (gate, state).
        best: Dict[State, int] = {}
        parents: List[Dict[State, State]] = []
        for state, gate_cost in valid_states[0]:
            best[state] = gate_cost
        parents.append({})

        transitions_evaluated = 0
        for k in range(1, len(gates)):
            new_best: Dict[State, int] = {}
            parent: Dict[State, State] = {}
            permutation_allowed = k in spots
            for state, gate_cost in valid_states[k]:
                best_cost: Optional[int] = None
                best_parent: Optional[State] = None
                if not permutation_allowed:
                    previous_cost = best.get(state)
                    if previous_cost is not None:
                        best_cost = previous_cost + gate_cost
                        best_parent = state
                else:
                    for old_state, old_cost in best.items():
                        transition = self._transition_cost(old_state, state)
                        transitions_evaluated += 1
                        if transition is None:
                            continue
                        candidate = old_cost + transition + gate_cost
                        if best_cost is None or candidate < best_cost:
                            best_cost = candidate
                            best_parent = old_state
                if best_cost is not None:
                    new_best[state] = best_cost
                    parent[state] = best_parent  # type: ignore[assignment]
            if not new_best:
                raise ValueError(
                    f"no valid mapping exists before gate {k} under strategy "
                    f"{self.strategy.name!r}"
                )
            best = new_best
            parents.append(parent)

        # Recover the optimal mapping sequence.
        final_state = min(best, key=best.get)  # type: ignore[arg-type]
        objective = best[final_state]
        sequence: List[State] = [final_state]
        current = final_state
        for k in range(len(gates) - 1, 0, -1):
            current = parents[k][current]
            sequence.append(current)
        sequence.reverse()

        schedule = MappingSchedule(
            num_logical=num_logical,
            num_physical=num_physical,
            mappings=[tuple(state) for state in sequence],
            initial_mapping=tuple(sequence[0]),
        )
        runtime = time.monotonic() - start
        return build_result(
            circuit,
            schedule,
            self.coupling,
            engine="dp",
            strategy=self.strategy.name,
            objective=objective,
            optimal=isinstance(self.strategy, AllGatesStrategy),
            runtime_seconds=runtime,
            num_permutation_spots=len(spots),
            statistics={
                "states": len(all_states),
                "transitions_evaluated": transitions_evaluated,
            },
            decompose_swaps=self.decompose_swaps,
            permutation_table=self._table,
        )


__all__ = ["DPMapper"]
