"""Result objects shared by the exact and heuristic mappers.

Both result classes serialise losslessly to plain dictionaries
(:meth:`MappingResult.to_dict` / :meth:`MappingResult.from_dict`): circuits
travel as OpenQASM 2.0 text (the writer/parser round-trip preserves the
canonical gate stream), everything else as JSON-ready primitives.  This is
what the persistent :class:`~repro.service.store.ResultStore` writes to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.exact.cost import CostBreakdown

#: Version of the ``to_dict`` payload layout.  Bump on incompatible changes;
#: ``from_dict`` rejects payloads from other versions.
RESULT_SCHEMA_VERSION = 1


def schedule_is_valid(circuit, mappings, coupling) -> bool:
    """Whether *mappings* is a valid schedule for *circuit* on *coupling*.

    Checks shape (one mapping per CNOT, covering every logical qubit),
    injectivity and range, and that every CNOT lands on a coupled pair in
    either orientation.  Shared by the model-seeding layers
    (:class:`repro.pipeline.bounds.ModelProvider`,
    :meth:`repro.exact.sat_mapper.SATMapper.validate_schedule`): a cached
    schedule from the result store may stem from a different
    (sub-)architecture and must not be trusted blindly.

    Args:
        circuit: The circuit the schedule claims to map.
        mappings: One logical-to-physical mapping per CNOT gate.
        coupling: The :class:`~repro.arch.coupling.CouplingMap` to check
            against.
    """
    cnots = circuit.cnot_gates()
    if len(mappings) != len(cnots) or not cnots:
        return False
    num_logical = circuit.num_qubits
    num_physical = coupling.num_qubits
    edges = coupling.edges
    for gate, mapping in zip(cnots, mappings):
        if len(mapping) != num_logical or len(set(mapping)) != len(mapping):
            return False
        if any(not 0 <= physical < num_physical for physical in mapping):
            return False
        pair = (mapping[gate.control], mapping[gate.target])
        if pair not in edges and (pair[1], pair[0]) not in edges:
            return False
    return True


@dataclass
class MappingSchedule:
    """The raw output of a mapping engine, before circuit reconstruction.

    A schedule fixes, for every CNOT gate of the circuit's CNOT skeleton, the
    complete logical-to-physical mapping that is active when the gate
    executes.  The differences between consecutive mappings are realised by
    SWAP insertions during reconstruction; CNOTs placed against the coupling
    direction are realised with four extra Hadamards.

    Attributes:
        num_logical: Number of logical qubits ``n``.
        num_physical: Number of physical qubits ``m`` of the target device.
        mappings: One tuple per CNOT gate; ``mappings[k][j]`` is the physical
            qubit hosting logical qubit ``j`` right before CNOT ``k``.  Empty
            for circuits without CNOT gates.
        initial_mapping: The mapping before the first CNOT (equals
            ``mappings[0]`` when the circuit has CNOTs, otherwise a default
            placement).
    """

    num_logical: int
    num_physical: int
    mappings: List[Tuple[int, ...]] = field(default_factory=list)
    initial_mapping: Tuple[int, ...] = ()

    def final_mapping(self) -> Tuple[int, ...]:
        """The mapping active after the last CNOT gate."""
        if self.mappings:
            return self.mappings[-1]
        return self.initial_mapping

    def validate(self) -> None:
        """Raise ``ValueError`` when the schedule is malformed."""
        expected_length = self.num_logical
        all_mappings = [self.initial_mapping] + list(self.mappings)
        for mapping in all_mappings:
            if len(mapping) != expected_length:
                raise ValueError(
                    f"mapping {mapping!r} does not cover all {expected_length} logical qubits"
                )
            if len(set(mapping)) != len(mapping):
                raise ValueError(f"mapping {mapping!r} is not injective")
            for physical in mapping:
                if not 0 <= physical < self.num_physical:
                    raise ValueError(
                        f"physical qubit {physical} out of range in mapping {mapping!r}"
                    )

    def to_dict(self) -> Dict[str, Any]:
        """The schedule as a JSON-ready dictionary."""
        return {
            "num_logical": self.num_logical,
            "num_physical": self.num_physical,
            "mappings": [list(mapping) for mapping in self.mappings],
            "initial_mapping": list(self.initial_mapping),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MappingSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        return cls(
            num_logical=int(payload["num_logical"]),
            num_physical=int(payload["num_physical"]),
            mappings=[tuple(mapping) for mapping in payload["mappings"]],
            initial_mapping=tuple(payload["initial_mapping"]),
        )


@dataclass
class MappingResult:
    """Complete outcome of mapping a circuit to an architecture.

    Attributes:
        mapped_circuit: The architecture-compliant circuit over the device's
            physical qubits.
        original_circuit: The input circuit.
        schedule: The per-gate mapping schedule the circuit was built from.
        cost: Gate-count breakdown (original gates, SWAPs, reversals).
        objective: The engine's reported objective value ``F`` (added cost);
            for exact engines this equals ``cost.added_cost``.
        optimal: True when the engine proved the result minimal.
        engine: Name of the engine that produced the result
            (``"sat"``, ``"dp"``, ``"stochastic"``, ...).
        strategy: Name of the permutation-restriction strategy used.
        num_permutation_spots: The paper's ``|G'|`` (spots including the
            initial mapping); ``None`` for heuristic engines.
        runtime_seconds: Wall-clock mapping time.
        statistics: Engine-specific counters (solver conflicts, DP states,
            heuristic trials, ...).
    """

    mapped_circuit: QuantumCircuit
    original_circuit: QuantumCircuit
    schedule: MappingSchedule
    cost: CostBreakdown
    objective: Optional[int] = None
    optimal: bool = False
    engine: str = "unknown"
    strategy: str = "all"
    num_permutation_spots: Optional[int] = None
    runtime_seconds: float = 0.0
    statistics: Dict[str, float] = field(default_factory=dict)

    @property
    def added_cost(self) -> int:
        """Number of elementary operations added by the mapping (``F``)."""
        return self.cost.added_cost

    @property
    def total_cost(self) -> int:
        """Total number of elementary operations of the mapped circuit."""
        return self.cost.total_cost

    @property
    def initial_mapping(self) -> Tuple[int, ...]:
        """Logical-to-physical mapping before the first gate."""
        return self.schedule.initial_mapping

    @property
    def final_mapping(self) -> Tuple[int, ...]:
        """Logical-to-physical mapping after the last gate."""
        return self.schedule.final_mapping()

    def summary(self) -> str:
        """Short human-readable summary line."""
        flag = "minimal" if self.optimal else "not proven minimal"
        return (
            f"{self.engine}/{self.strategy}: total={self.total_cost} gates "
            f"(added {self.added_cost}: {self.cost.swaps} SWAPs, "
            f"{self.cost.reversals} reversals) [{flag}] "
            f"in {self.runtime_seconds:.2f}s"
        )

    # ------------------------------------------------------------------
    # Validation and serialization
    # ------------------------------------------------------------------
    def validate(self, coupling=None) -> None:
        """Raise ``ValueError`` when the result is internally inconsistent.

        Checks the mapping schedule (coverage, injectivity, range), the cost
        bookkeeping (the gate counts of the two circuits must imply exactly
        the added cost the :class:`CostBreakdown` reports) and, when a
        *coupling* is given, that every CNOT of the mapped circuit respects
        the architecture.  The persistent result store calls this before
        caching: a corrupt result must never be served to later callers.

        Args:
            coupling: Optional :class:`~repro.arch.coupling.CouplingMap` to
                additionally check coupling compliance against.
        """
        self.schedule.validate()
        if self.cost.swaps < 0 or self.cost.reversals < 0:
            raise ValueError(f"negative cost components in {self.cost}")
        recomputed_added = (
            self.mapped_circuit.gate_cost() - self.original_circuit.gate_cost()
        )
        if recomputed_added != self.cost.added_cost:
            raise ValueError(
                f"cost mismatch: gate counts imply {recomputed_added} added "
                f"operations but the breakdown reports {self.cost.added_cost}"
            )
        if coupling is not None:
            from repro.verify.compliance import check_coupling_compliance

            report = check_coupling_compliance(self.mapped_circuit, coupling)
            if not report.compliant:
                raise ValueError(
                    f"mapped circuit violates the coupling map at "
                    f"{report.violations[:5]}"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the complete result as a JSON-ready dictionary.

        The circuits travel as OpenQASM 2.0 text; their names (which QASM
        does not carry) are stored alongside so :meth:`from_dict` restores
        them.  The payload is versioned via ``RESULT_SCHEMA_VERSION``.
        """
        from repro.circuit.qasm.writer import to_qasm

        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "mapped_circuit": to_qasm(self.mapped_circuit),
            "mapped_circuit_name": self.mapped_circuit.name,
            "original_circuit": to_qasm(self.original_circuit),
            "original_circuit_name": self.original_circuit.name,
            "schedule": self.schedule.to_dict(),
            "cost": {
                "original_gates": self.cost.original_gates,
                "swaps": self.cost.swaps,
                "reversals": self.cost.reversals,
            },
            "objective": self.objective,
            "optimal": self.optimal,
            "engine": self.engine,
            "strategy": self.strategy,
            "num_permutation_spots": self.num_permutation_spots,
            "runtime_seconds": self.runtime_seconds,
            "statistics": dict(self.statistics),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MappingResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises:
            ValueError: When the payload's schema version is unsupported.
        """
        from repro.circuit.qasm.parser import parse_qasm

        version = payload.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported MappingResult payload version {version!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        mapped = parse_qasm(
            payload["mapped_circuit"], name=payload["mapped_circuit_name"]
        )
        original = parse_qasm(
            payload["original_circuit"], name=payload["original_circuit_name"]
        )
        objective = payload["objective"]
        spots = payload["num_permutation_spots"]
        return cls(
            mapped_circuit=mapped,
            original_circuit=original,
            schedule=MappingSchedule.from_dict(payload["schedule"]),
            cost=CostBreakdown(
                original_gates=int(payload["cost"]["original_gates"]),
                swaps=int(payload["cost"]["swaps"]),
                reversals=int(payload["cost"]["reversals"]),
            ),
            objective=None if objective is None else int(objective),
            optimal=bool(payload["optimal"]),
            engine=str(payload["engine"]),
            strategy=str(payload["strategy"]),
            num_permutation_spots=None if spots is None else int(spots),
            runtime_seconds=float(payload["runtime_seconds"]),
            statistics=dict(payload["statistics"]),
        )


__all__ = [
    "MappingSchedule",
    "MappingResult",
    "RESULT_SCHEMA_VERSION",
    "schedule_is_valid",
]
