"""Result objects shared by the exact and heuristic mappers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.exact.cost import CostBreakdown


@dataclass
class MappingSchedule:
    """The raw output of a mapping engine, before circuit reconstruction.

    A schedule fixes, for every CNOT gate of the circuit's CNOT skeleton, the
    complete logical-to-physical mapping that is active when the gate
    executes.  The differences between consecutive mappings are realised by
    SWAP insertions during reconstruction; CNOTs placed against the coupling
    direction are realised with four extra Hadamards.

    Attributes:
        num_logical: Number of logical qubits ``n``.
        num_physical: Number of physical qubits ``m`` of the target device.
        mappings: One tuple per CNOT gate; ``mappings[k][j]`` is the physical
            qubit hosting logical qubit ``j`` right before CNOT ``k``.  Empty
            for circuits without CNOT gates.
        initial_mapping: The mapping before the first CNOT (equals
            ``mappings[0]`` when the circuit has CNOTs, otherwise a default
            placement).
    """

    num_logical: int
    num_physical: int
    mappings: List[Tuple[int, ...]] = field(default_factory=list)
    initial_mapping: Tuple[int, ...] = ()

    def final_mapping(self) -> Tuple[int, ...]:
        """The mapping active after the last CNOT gate."""
        if self.mappings:
            return self.mappings[-1]
        return self.initial_mapping

    def validate(self) -> None:
        """Raise ``ValueError`` when the schedule is malformed."""
        expected_length = self.num_logical
        all_mappings = [self.initial_mapping] + list(self.mappings)
        for mapping in all_mappings:
            if len(mapping) != expected_length:
                raise ValueError(
                    f"mapping {mapping!r} does not cover all {expected_length} logical qubits"
                )
            if len(set(mapping)) != len(mapping):
                raise ValueError(f"mapping {mapping!r} is not injective")
            for physical in mapping:
                if not 0 <= physical < self.num_physical:
                    raise ValueError(
                        f"physical qubit {physical} out of range in mapping {mapping!r}"
                    )


@dataclass
class MappingResult:
    """Complete outcome of mapping a circuit to an architecture.

    Attributes:
        mapped_circuit: The architecture-compliant circuit over the device's
            physical qubits.
        original_circuit: The input circuit.
        schedule: The per-gate mapping schedule the circuit was built from.
        cost: Gate-count breakdown (original gates, SWAPs, reversals).
        objective: The engine's reported objective value ``F`` (added cost);
            for exact engines this equals ``cost.added_cost``.
        optimal: True when the engine proved the result minimal.
        engine: Name of the engine that produced the result
            (``"sat"``, ``"dp"``, ``"stochastic"``, ...).
        strategy: Name of the permutation-restriction strategy used.
        num_permutation_spots: The paper's ``|G'|`` (spots including the
            initial mapping); ``None`` for heuristic engines.
        runtime_seconds: Wall-clock mapping time.
        statistics: Engine-specific counters (solver conflicts, DP states,
            heuristic trials, ...).
    """

    mapped_circuit: QuantumCircuit
    original_circuit: QuantumCircuit
    schedule: MappingSchedule
    cost: CostBreakdown
    objective: Optional[int] = None
    optimal: bool = False
    engine: str = "unknown"
    strategy: str = "all"
    num_permutation_spots: Optional[int] = None
    runtime_seconds: float = 0.0
    statistics: Dict[str, float] = field(default_factory=dict)

    @property
    def added_cost(self) -> int:
        """Number of elementary operations added by the mapping (``F``)."""
        return self.cost.added_cost

    @property
    def total_cost(self) -> int:
        """Total number of elementary operations of the mapped circuit."""
        return self.cost.total_cost

    @property
    def initial_mapping(self) -> Tuple[int, ...]:
        """Logical-to-physical mapping before the first gate."""
        return self.schedule.initial_mapping

    @property
    def final_mapping(self) -> Tuple[int, ...]:
        """Logical-to-physical mapping after the last gate."""
        return self.schedule.final_mapping()

    def summary(self) -> str:
        """Short human-readable summary line."""
        flag = "minimal" if self.optimal else "not proven minimal"
        return (
            f"{self.engine}/{self.strategy}: total={self.total_cost} gates "
            f"(added {self.added_cost}: {self.cost.swaps} SWAPs, "
            f"{self.cost.reversals} reversals) [{flag}] "
            f"in {self.runtime_seconds:.2f}s"
        )


__all__ = ["MappingSchedule", "MappingResult"]
