"""Symbolic (Boolean) formulation of the mapping problem (Section 3.2).

Given the CNOT skeleton of a circuit, a coupling map and a set of permutation
spots, :func:`build_encoding` produces a CNF formula together with a weighted
objective, exactly following the paper's formulation:

* mapping variables ``x^k_ij`` — logical qubit ``j`` sits on physical qubit
  ``i`` right before CNOT gate ``k`` (Definition 4),
* constraint (1): each mapping is a valid injective assignment,
* constraint (2): each CNOT acts on a coupled pair, in either orientation,
* permutation variables ``y^k_pi`` and constraint (3): ``y^k_pi`` tracks the
  permutation applied between gate ``k-1`` and ``k`` (with the "left-handed
  implication" variant of footnote 5 whenever ``n < m``),
* switching variables ``z^k`` and constraint (4): ``z^k`` tracks whether the
  CNOT direction must be reversed,
* objective (5): ``F = sum_k sum_pi 7*swaps(pi)*y^k_pi + sum_k 4*z^k``.

Gates that are not permutation spots keep the mapping unchanged (their
``x`` variables are equated with the previous gate's), which is how the
Section 4.2 strategies shrink the search space.

Construction fast path
----------------------
An encoding consists of three contiguous variable blocks, in this order:

1. the **x block** — mapping variables with constraint (1); depends only on
   ``(gates, n, m)``,
2. the **edge block** — constraint (2) placement literals and the switching
   variables of constraint (4); the only part that reads the *directed*
   edge set,
3. the **spot block** — shared equality variables, permutation variables
   and constraint (3); its content (including the permutation enumeration
   order, a BFS over undirected SWAP edges) depends only on ``(gates, n, m,
   spots)`` and the *undirected* edge set.

Blocks 1 and 3 are memoised in an :class:`EncodingSkeleton` keyed by exactly
those inputs: a subset sweep re-runs the Tseitin construction once per
undirected structure, and every further family instantiates the cached
skeleton by sharing the x-block clause objects verbatim and re-basing the
spot block with a constant index shift (literal substitution) — the edge
block in between is the only part built per family.  The skeleton also
fixes the *roles* of the shared variables across families, which is what
makes cross-family learned-clause sharing (:mod:`repro.exact.sweep`) a
table lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.cache import shared_permutation_table
from repro.arch.coupling import CouplingMap
from repro.arch.permutations import Permutation, PermutationTable
from repro.exact.cost import REVERSAL_COST, SWAP_COST
from repro.sat.cardinality import at_most_one_pairwise, exactly_one
from repro.sat.cnf import CNF, Clause, VariablePool
from repro.sat.optimize import ObjectiveTerm
from repro.sat.tseitin import TseitinEncoder


class EncodingError(ValueError):
    """Raised when the mapping problem cannot be encoded."""


@dataclass
class MappingEncoding:
    """The symbolic instance handed to the reasoning engine.

    Attributes:
        cnf: Hard constraints (constraints (1)-(4) of the paper).
        objective: Weighted terms of the cost function ``F`` (Eq. 5).
        x_vars: ``x_vars[k][(i, j)]`` is the SAT variable of ``x^k_ij``
            (physical ``i`` hosts logical ``j`` before CNOT ``k``).
        y_vars: ``y_vars[k][pi]`` is the variable of ``y^k_pi`` for every
            permutation spot ``k > 0``.
        z_vars: ``z_vars[k]`` is the variable of ``z^k``.
        gates: The encoded (control, target) logical pairs.
        num_logical: Number of logical qubits ``n``.
        num_physical: Number of physical qubits ``m`` used in the encoding.
        permutation_spots: Gate indices before which the mapping may change
            (always includes 0, the free initial mapping).
        permutation_table: The ``swaps(pi)`` table used for the objective.
        eq_vars: ``eq_vars[k][(i, i2, j)]`` is the shared equality variable
            "logical ``j`` moved from physical ``i`` to ``i2`` at spot ``k``"
            (part of the spot block).
        skeleton: The cached structural blocks this encoding was
            instantiated from (see the module docstring); encodings sharing
            one skeleton object have identical spot-block content up to a
            constant index shift.
        x_var_limit: Highest variable index of the x block (variables ``1
            .. x_var_limit`` are the mapping variables, identically numbered
            in every encoding of the same instance shape).
        spot_var_start: Variable count before the spot block; spot-block
            variables occupy ``spot_var_start + 1 .. spot_var_end``.
        spot_var_end: Last variable index of the spot block (the encoding's
            variable count at construction time — the pool keeps growing
            afterwards when a solve session adds bound-ladder nodes).
    """

    cnf: CNF
    objective: List[ObjectiveTerm]
    x_vars: List[Dict[Tuple[int, int], int]]
    y_vars: Dict[int, Dict[Permutation, int]]
    z_vars: Dict[int, int]
    gates: List[Tuple[int, int]]
    num_logical: int
    num_physical: int
    permutation_spots: List[int]
    permutation_table: PermutationTable
    eq_vars: Dict[int, Dict[Tuple[int, int, int], int]] = field(
        default_factory=dict
    )
    skeleton: Optional["EncodingSkeleton"] = None
    x_var_limit: int = 0
    spot_var_start: int = 0
    spot_var_end: int = 0

    @property
    def num_variables(self) -> int:
        """Total number of SAT variables in the instance."""
        return self.cnf.num_vars

    def is_shared_variable(self, var: int) -> bool:
        """Whether *var* belongs to the cross-family shareable layers.

        True for the x block and the spot block — the variables whose
        meaning is independent of the directed edge set.  False for the
        edge block (placement/switching literals are defined over this
        family's edges) and for anything allocated after the encoding
        (bound-ladder nodes).
        """
        return var <= self.x_var_limit or (
            self.spot_var_start < var <= self.spot_var_end
        )

    @property
    def num_clauses(self) -> int:
        """Total number of clauses in the instance."""
        return self.cnf.num_clauses

    def extract_schedule(self, model: Dict[int, bool]) -> List[Tuple[int, ...]]:
        """Read the per-gate logical-to-physical mappings from a SAT model.

        Returns:
            One tuple per CNOT gate; entry ``j`` of tuple ``k`` is the
            physical qubit hosting logical qubit ``j`` before gate ``k``.
        """
        mappings: List[Tuple[int, ...]] = []
        for k in range(len(self.gates)):
            placement = [-1] * self.num_logical
            for (physical, logical), variable in self.x_vars[k].items():
                if model.get(variable, False):
                    if placement[logical] != -1:
                        raise EncodingError(
                            f"model places logical qubit {logical} on two physical "
                            f"qubits before gate {k}"
                        )
                    placement[logical] = physical
            if -1 in placement:
                raise EncodingError(
                    f"model leaves a logical qubit unplaced before gate {k}"
                )
            mappings.append(tuple(placement))
        return mappings

    def assignment_from_schedule(
        self, mappings: Sequence[Tuple[int, ...]]
    ) -> Dict[int, bool]:
        """The (partial) assignment of the mapping variables realising *mappings*.

        The inverse of :meth:`extract_schedule`: every ``x^k_ij`` variable is
        set according to the given per-gate placements.  Auxiliary (Tseitin,
        permutation, switching) variables are left unassigned — the result
        is meant as a model warm start (phase seeding plus an incumbent for
        :meth:`repro.sat.optimize.OptimizingSolver.minimize`), and both
        :meth:`extract_schedule` and the objective bookkeeping of the warm
        start only need the ``x`` layer.

        Raises:
            EncodingError: When the schedule does not fit this encoding —
                wrong gate count, non-injective or out-of-range placements,
                or a mapping change before a gate that is not a permutation
                spot.
        """
        if len(mappings) != len(self.gates):
            raise EncodingError(
                f"schedule covers {len(mappings)} gates but the encoding has "
                f"{len(self.gates)}"
            )
        spot_set = set(self.permutation_spots)
        assignment: Dict[int, bool] = {}
        previous: Optional[Tuple[int, ...]] = None
        for k, mapping in enumerate(mappings):
            mapping = tuple(mapping)
            if len(mapping) != self.num_logical:
                raise EncodingError(
                    f"mapping {mapping!r} does not cover all "
                    f"{self.num_logical} logical qubits"
                )
            if len(set(mapping)) != len(mapping):
                raise EncodingError(f"mapping {mapping!r} is not injective")
            for physical in mapping:
                if not 0 <= physical < self.num_physical:
                    raise EncodingError(
                        f"physical qubit {physical} out of range in {mapping!r}"
                    )
            if k not in spot_set and mapping != previous:
                raise EncodingError(
                    f"mapping changes before gate {k}, which is not a "
                    f"permutation spot of this encoding"
                )
            for (i, j), variable in self.x_vars[k].items():
                assignment[variable] = mapping[j] == i
            previous = mapping
        return assignment

    def objective_value(self, model: Dict[int, bool]) -> int:
        """Evaluate the cost function ``F`` under a SAT model."""
        total = 0
        for term in self.objective:
            variable = abs(term.literal)
            value = model.get(variable, False)
            if term.literal < 0:
                value = not value
            if value:
                total += term.weight
        return total


@dataclass
class EncodingSkeleton:
    """The memoised structural blocks of the symbolic formulation.

    Holds the **x block** (mapping variables with constraint (1)) and the
    **spot block** (shared equality variables, permutation variables with
    constraint (3), mapping-stability clauses) — everything whose content is
    independent of the coupling's *directed* edge set.  The spot block is
    stored in *template numbering*: its variables directly follow the x
    block, i.e. they occupy ``x_var_limit + 1 .. x_var_limit +
    spot_var_count``.  Instantiating the skeleton for a concrete family
    shares the x-block clause objects verbatim, builds the family's edge
    block, and then re-bases the spot block by adding the edge block's size
    to every spot variable (pure literal substitution — no Tseitin re-run).

    Keyed by ``(gates, n, m, spots, undirected edges)``: the permutation
    enumeration (a BFS over undirected SWAP edges) and therefore the spot
    block's content is identical for every family with the same undirected
    structure, most notably for sub-couplings differing only in CNOT edge
    orientation.
    """

    key: Tuple
    num_logical: int
    num_physical: int
    x_var_limit: int
    x_clauses: List[Clause]
    x_pool: "VariablePool"
    x_vars: List[Dict[Tuple[int, int], int]]
    spot_var_count: int
    spot_clauses: List[Clause]
    spot_names: Dict[int, str]
    eq_vars: Dict[int, Dict[Tuple[int, int, int], int]]
    y_vars: Dict[int, Dict[Permutation, int]]
    permutations: Tuple[Permutation, ...]

    def instantiate_spot_block(self, cnf: CNF) -> int:
        """Append the spot block to *cnf*, re-based after its current vars.

        Returns the shift that was applied to every template spot variable
        (the size of *cnf*'s edge block).  ``0`` means the clause objects
        were shared verbatim.
        """
        shift = cnf.num_vars - self.x_var_limit
        cnf.pool.append_block(
            self.spot_var_count,
            {var + shift: name for var, name in self.spot_names.items()},
        )
        if shift == 0:
            cnf.clauses.extend(self.spot_clauses)
            return 0
        limit = self.x_var_limit
        for clause in self.spot_clauses:
            cnf.clauses.append(Clause(
                literal + shift if literal > limit
                else (literal - shift if literal < -limit else literal)
                for literal in clause.literals
            ))
        return shift


def _shift_var_map(mapping: Dict, shift: int) -> Dict:
    """Re-base a (possibly nested) template variable map by *shift*."""
    if shift == 0:
        return mapping
    return {
        key: (_shift_var_map(value, shift) if isinstance(value, dict)
              else value + shift)
        for key, value in mapping.items()
    }


def _build_skeleton(
    gates: Tuple[Tuple[int, int], ...],
    num_logical: int,
    num_physical: int,
    spots: Tuple[int, ...],
    permutation_table: PermutationTable,
) -> EncodingSkeleton:
    """Construct the structural blocks from scratch (template numbering)."""
    cnf = CNF()
    encoder = TseitinEncoder(cnf)
    spot_set = set(spots)
    total_mapping = num_logical == num_physical
    perms = tuple(permutation_table.permutations())

    # ------------------------------------------------------------------
    # x block: mapping variables x^k_ij and constraint (1).
    # ------------------------------------------------------------------
    x_vars: List[Dict[Tuple[int, int], int]] = []
    for k in range(len(gates)):
        layer: Dict[Tuple[int, int], int] = {}
        for i in range(num_physical):
            for j in range(num_logical):
                layer[(i, j)] = cnf.new_var(f"x_{k}_{i}_{j}")
        x_vars.append(layer)
        # Every logical qubit sits on exactly one physical qubit.
        for j in range(num_logical):
            exactly_one(cnf, [layer[(i, j)] for i in range(num_physical)])
        # Every physical qubit hosts at most one logical qubit.
        for i in range(num_physical):
            at_most_one_pairwise(cnf, [layer[(i, j)] for j in range(num_logical)])
    x_var_limit = cnf.num_vars
    x_clauses = list(cnf.clauses)
    x_pool = cnf.pool.fork()
    del cnf.clauses[:]

    # ------------------------------------------------------------------
    # Spot block (template numbering, directly after the x block):
    # constraint (3) permutations between gates, and mapping stability for
    # gates that are not permutation spots.
    # ------------------------------------------------------------------
    eq_vars: Dict[int, Dict[Tuple[int, int, int], int]] = {}
    y_vars: Dict[int, Dict[Permutation, int]] = {}
    for k in range(1, len(gates)):
        previous, current = x_vars[k - 1], x_vars[k]
        if k not in spot_set:
            # The mapping must stay unchanged.
            for key in previous:
                encoder.add_iff(previous[key], current[key])
            continue
        # Shared equality variables eq_{i -> i2, j}: "logical j moved from
        # physical i to physical i2" expressed as x^{k-1}_{ij} <-> x^k_{i2 j}.
        equality: Dict[Tuple[int, int, int], int] = {}
        for i in range(num_physical):
            for i2 in range(num_physical):
                for j in range(num_logical):
                    equality[(i, i2, j)] = encoder.encode_iff(
                        previous[(i, j)], current[(i2, j)],
                        name=f"eq_{k}_{i}_{i2}_{j}",
                    )
        eq_vars[k] = equality
        spot_vars: Dict[Permutation, int] = {}
        for perm in perms:
            y_var = cnf.new_var(f"y_{k}_{'_'.join(map(str, perm))}")
            spot_vars[perm] = y_var
            conditions = [
                equality[(i, perm[i], j)]
                for i in range(num_physical)
                for j in range(num_logical)
            ]
            if total_mapping:
                # Equation (3): the conjunction of equalities iff y^k_pi.
                encoder.add_iff_and(y_var, conditions)
            else:
                # Footnote 5: y^k_pi implies consistency with pi; exactly one
                # permutation is selected per spot.
                for condition in conditions:
                    encoder.add_implication(y_var, condition)
        exactly_one(cnf, list(spot_vars.values()), encoding="sequential",
                    prefix=f"y_spot_{k}")
        y_vars[k] = spot_vars

    spot_names = {
        var: cnf.pool.name(var)
        for var in range(x_var_limit + 1, cnf.num_vars + 1)
    }
    undirected = tuple(sorted(permutation_table.coupling.undirected_edges))
    return EncodingSkeleton(
        key=(gates, num_logical, num_physical, spots, undirected),
        num_logical=num_logical,
        num_physical=num_physical,
        x_var_limit=x_var_limit,
        x_clauses=x_clauses,
        x_pool=x_pool,
        x_vars=x_vars,
        spot_var_count=cnf.num_vars - x_var_limit,
        spot_clauses=list(cnf.clauses),
        spot_names=spot_names,
        eq_vars=eq_vars,
        y_vars=y_vars,
        permutations=perms,
    )


#: Process-wide skeleton cache (small LRU; one entry covers a whole sweep).
_SKELETON_CACHE: "OrderedDict[Tuple, EncodingSkeleton]" = OrderedDict()
_SKELETON_CACHE_LOCK = threading.Lock()
_SKELETON_CACHE_MAX = 16
_SKELETON_CACHE_STATS = {"hits": 0, "misses": 0}


def _shared_skeleton(
    gates: Tuple[Tuple[int, int], ...],
    num_logical: int,
    num_physical: int,
    spots: Tuple[int, ...],
    permutation_table: PermutationTable,
) -> EncodingSkeleton:
    undirected = tuple(
        sorted(permutation_table.coupling.undirected_edges)
    )
    key = (gates, num_logical, num_physical, spots, undirected)
    with _SKELETON_CACHE_LOCK:
        cached = _SKELETON_CACHE.get(key)
        if cached is not None:
            _SKELETON_CACHE.move_to_end(key)
            _SKELETON_CACHE_STATS["hits"] += 1
            return cached
        _SKELETON_CACHE_STATS["misses"] += 1
        skeleton = _build_skeleton(
            gates, num_logical, num_physical, spots, permutation_table
        )
        _SKELETON_CACHE[key] = skeleton
        while len(_SKELETON_CACHE) > _SKELETON_CACHE_MAX:
            _SKELETON_CACHE.popitem(last=False)
        return skeleton


def skeleton_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the shared-skeleton cache."""
    with _SKELETON_CACHE_LOCK:
        stats = dict(_SKELETON_CACHE_STATS)
        stats["entries"] = len(_SKELETON_CACHE)
        return stats


def clear_skeleton_cache() -> None:
    """Drop all cached encoding skeletons (mainly for tests/benchmarks)."""
    with _SKELETON_CACHE_LOCK:
        _SKELETON_CACHE.clear()
        _SKELETON_CACHE_STATS["hits"] = 0
        _SKELETON_CACHE_STATS["misses"] = 0


def build_encoding(
    gates: Sequence[Tuple[int, int]],
    num_logical: int,
    coupling: CouplingMap,
    permutation_spots: Optional[Sequence[int]] = None,
    permutation_table: Optional[PermutationTable] = None,
    reuse_skeleton: bool = True,
) -> MappingEncoding:
    """Build the symbolic formulation for a CNOT sequence.

    Args:
        gates: The circuit's CNOT skeleton as (control, target) logical pairs.
        num_logical: Number of logical qubits ``n`` of the circuit.
        coupling: Target architecture (``m`` physical qubits).
        permutation_spots: Gate indices before which the mapping may change.
            Defaults to every gate (the minimal formulation).  Index 0 (the
            initial mapping) is always treated as free.
        permutation_table: Pre-computed ``swaps(pi)`` table for *coupling*;
            built on demand when omitted.
        reuse_skeleton: Serve the edge-independent skeleton from the
            process-wide cache (the subset-sweep fast path).  Disable to
            force a from-scratch construction, e.g. for ablation
            benchmarks; the resulting formula is identical either way.

    Returns:
        The :class:`MappingEncoding`.

    Raises:
        EncodingError: If the circuit needs more logical qubits than the
            device has physical qubits, or a gate index is out of range.
    """
    gates = [tuple(gate) for gate in gates]
    num_physical = coupling.num_qubits
    if num_logical > num_physical:
        raise EncodingError(
            f"cannot map {num_logical} logical qubits onto {num_physical} physical qubits"
        )
    if not gates:
        raise EncodingError("the CNOT skeleton is empty; nothing to encode")
    for control, target in gates:
        for qubit in (control, target):
            if not 0 <= qubit < num_logical:
                raise EncodingError(f"gate qubit {qubit} out of range")

    if permutation_spots is None:
        spots = list(range(len(gates)))
    else:
        spots = sorted(set(permutation_spots) | {0})
        for spot in spots:
            if not 0 <= spot < len(gates):
                raise EncodingError(f"permutation spot {spot} out of range")

    if permutation_table is None:
        # The shared cache, not a fresh BFS per call: encodings for the same
        # (sub-)coupling are built once per process and reused.
        permutation_table = shared_permutation_table(coupling)

    # ------------------------------------------------------------------
    # Structural blocks: the x block is appended verbatim (shared clause
    # objects); the spot block is re-based after the edge block below.
    # ------------------------------------------------------------------
    skeleton_args = (tuple(gates), num_logical, num_physical, tuple(spots))
    if reuse_skeleton:
        skeleton = _shared_skeleton(*skeleton_args, permutation_table)
    else:
        skeleton = _build_skeleton(*skeleton_args, permutation_table)
    cnf = CNF(skeleton.x_pool.fork())
    cnf.clauses = list(skeleton.x_clauses)
    encoder = TseitinEncoder(cnf)
    x_vars = skeleton.x_vars

    # ------------------------------------------------------------------
    # Edge block — constraint (2) and (4): CNOT placement and direction
    # switching over this coupling's edges.
    # ------------------------------------------------------------------
    z_vars: Dict[int, int] = {}
    objective: List[ObjectiveTerm] = []
    for k, (control, target) in enumerate(gates):
        layer = x_vars[k]
        aligned_literals: List[int] = []
        reversed_literals: List[int] = []
        for (pi, pj) in sorted(coupling.edges):
            aligned = encoder.encode_and(
                [layer[(pi, control)], layer[(pj, target)]],
                name=f"aligned_{k}_{pi}_{pj}",
            )
            aligned_literals.append(aligned)
            flipped = encoder.encode_and(
                [layer[(pi, target)], layer[(pj, control)]],
                name=f"reversed_{k}_{pi}_{pj}",
            )
            reversed_literals.append(flipped)
        # Constraint (2): the CNOT must sit on a coupled pair (either way).
        encoder.add_at_least_one(aligned_literals + reversed_literals)
        # Constraint (4): z^k is true iff the placement requires switching the
        # control and target (i.e. only the reversed orientation is native).
        z_var = cnf.new_var(f"z_{k}")
        z_vars[k] = z_var
        any_aligned = encoder.encode_or(aligned_literals, name=f"any_aligned_{k}")
        any_reversed = encoder.encode_or(reversed_literals, name=f"any_reversed_{k}")
        # z <-> (reversed placement possible and aligned placement not possible).
        encoder.add_iff_and(z_var, [any_reversed, -any_aligned])
        objective.append(ObjectiveTerm(REVERSAL_COST, z_var))

    # ------------------------------------------------------------------
    # Spot block — constraint (3), instantiated from the skeleton by
    # literal substitution, plus the swaps(pi) objective weights.
    # ------------------------------------------------------------------
    spot_var_start = cnf.num_vars
    shift = skeleton.instantiate_spot_block(cnf)
    eq_vars = _shift_var_map(skeleton.eq_vars, shift)
    y_vars = _shift_var_map(skeleton.y_vars, shift)
    for k in sorted(y_vars):
        for perm, y_var in y_vars[k].items():
            weight = SWAP_COST * permutation_table.swaps(perm)
            if weight > 0:
                objective.append(ObjectiveTerm(weight, y_var))

    return MappingEncoding(
        cnf=cnf,
        objective=objective,
        x_vars=x_vars,
        y_vars=y_vars,
        z_vars=z_vars,
        gates=list(gates),
        num_logical=num_logical,
        num_physical=num_physical,
        permutation_spots=spots,
        permutation_table=permutation_table,
        eq_vars=eq_vars,
        skeleton=skeleton,
        x_var_limit=skeleton.x_var_limit,
        spot_var_start=spot_var_start,
        spot_var_end=cnf.num_vars,
    )


__all__ = [
    "MappingEncoding",
    "EncodingSkeleton",
    "EncodingError",
    "build_encoding",
    "skeleton_cache_stats",
    "clear_skeleton_cache",
]
