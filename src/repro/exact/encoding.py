"""Symbolic (Boolean) formulation of the mapping problem (Section 3.2).

Given the CNOT skeleton of a circuit, a coupling map and a set of permutation
spots, :func:`build_encoding` produces a CNF formula together with a weighted
objective, exactly following the paper's formulation:

* mapping variables ``x^k_ij`` — logical qubit ``j`` sits on physical qubit
  ``i`` right before CNOT gate ``k`` (Definition 4),
* constraint (1): each mapping is a valid injective assignment,
* constraint (2): each CNOT acts on a coupled pair, in either orientation,
* permutation variables ``y^k_pi`` and constraint (3): ``y^k_pi`` tracks the
  permutation applied between gate ``k-1`` and ``k`` (with the "left-handed
  implication" variant of footnote 5 whenever ``n < m``),
* switching variables ``z^k`` and constraint (4): ``z^k`` tracks whether the
  CNOT direction must be reversed,
* objective (5): ``F = sum_k sum_pi 7*swaps(pi)*y^k_pi + sum_k 4*z^k``.

Gates that are not permutation spots keep the mapping unchanged (their
``x`` variables are equated with the previous gate's), which is how the
Section 4.2 strategies shrink the search space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.arch.permutations import Permutation, PermutationTable
from repro.exact.cost import REVERSAL_COST, SWAP_COST
from repro.sat.cardinality import at_most_one_pairwise, exactly_one
from repro.sat.cnf import CNF
from repro.sat.optimize import ObjectiveTerm
from repro.sat.tseitin import TseitinEncoder


class EncodingError(ValueError):
    """Raised when the mapping problem cannot be encoded."""


@dataclass
class MappingEncoding:
    """The symbolic instance handed to the reasoning engine.

    Attributes:
        cnf: Hard constraints (constraints (1)-(4) of the paper).
        objective: Weighted terms of the cost function ``F`` (Eq. 5).
        x_vars: ``x_vars[k][(i, j)]`` is the SAT variable of ``x^k_ij``
            (physical ``i`` hosts logical ``j`` before CNOT ``k``).
        y_vars: ``y_vars[k][pi]`` is the variable of ``y^k_pi`` for every
            permutation spot ``k > 0``.
        z_vars: ``z_vars[k]`` is the variable of ``z^k``.
        gates: The encoded (control, target) logical pairs.
        num_logical: Number of logical qubits ``n``.
        num_physical: Number of physical qubits ``m`` used in the encoding.
        permutation_spots: Gate indices before which the mapping may change
            (always includes 0, the free initial mapping).
        permutation_table: The ``swaps(pi)`` table used for the objective.
    """

    cnf: CNF
    objective: List[ObjectiveTerm]
    x_vars: List[Dict[Tuple[int, int], int]]
    y_vars: Dict[int, Dict[Permutation, int]]
    z_vars: Dict[int, int]
    gates: List[Tuple[int, int]]
    num_logical: int
    num_physical: int
    permutation_spots: List[int]
    permutation_table: PermutationTable

    @property
    def num_variables(self) -> int:
        """Total number of SAT variables in the instance."""
        return self.cnf.num_vars

    @property
    def num_clauses(self) -> int:
        """Total number of clauses in the instance."""
        return self.cnf.num_clauses

    def extract_schedule(self, model: Dict[int, bool]) -> List[Tuple[int, ...]]:
        """Read the per-gate logical-to-physical mappings from a SAT model.

        Returns:
            One tuple per CNOT gate; entry ``j`` of tuple ``k`` is the
            physical qubit hosting logical qubit ``j`` before gate ``k``.
        """
        mappings: List[Tuple[int, ...]] = []
        for k in range(len(self.gates)):
            placement = [-1] * self.num_logical
            for (physical, logical), variable in self.x_vars[k].items():
                if model.get(variable, False):
                    if placement[logical] != -1:
                        raise EncodingError(
                            f"model places logical qubit {logical} on two physical "
                            f"qubits before gate {k}"
                        )
                    placement[logical] = physical
            if -1 in placement:
                raise EncodingError(
                    f"model leaves a logical qubit unplaced before gate {k}"
                )
            mappings.append(tuple(placement))
        return mappings

    def assignment_from_schedule(
        self, mappings: Sequence[Tuple[int, ...]]
    ) -> Dict[int, bool]:
        """The (partial) assignment of the mapping variables realising *mappings*.

        The inverse of :meth:`extract_schedule`: every ``x^k_ij`` variable is
        set according to the given per-gate placements.  Auxiliary (Tseitin,
        permutation, switching) variables are left unassigned — the result
        is meant as a model warm start (phase seeding plus an incumbent for
        :meth:`repro.sat.optimize.OptimizingSolver.minimize`), and both
        :meth:`extract_schedule` and the objective bookkeeping of the warm
        start only need the ``x`` layer.

        Raises:
            EncodingError: When the schedule does not fit this encoding —
                wrong gate count, non-injective or out-of-range placements,
                or a mapping change before a gate that is not a permutation
                spot.
        """
        if len(mappings) != len(self.gates):
            raise EncodingError(
                f"schedule covers {len(mappings)} gates but the encoding has "
                f"{len(self.gates)}"
            )
        spot_set = set(self.permutation_spots)
        assignment: Dict[int, bool] = {}
        previous: Optional[Tuple[int, ...]] = None
        for k, mapping in enumerate(mappings):
            mapping = tuple(mapping)
            if len(mapping) != self.num_logical:
                raise EncodingError(
                    f"mapping {mapping!r} does not cover all "
                    f"{self.num_logical} logical qubits"
                )
            if len(set(mapping)) != len(mapping):
                raise EncodingError(f"mapping {mapping!r} is not injective")
            for physical in mapping:
                if not 0 <= physical < self.num_physical:
                    raise EncodingError(
                        f"physical qubit {physical} out of range in {mapping!r}"
                    )
            if k not in spot_set and mapping != previous:
                raise EncodingError(
                    f"mapping changes before gate {k}, which is not a "
                    f"permutation spot of this encoding"
                )
            for (i, j), variable in self.x_vars[k].items():
                assignment[variable] = mapping[j] == i
            previous = mapping
        return assignment

    def objective_value(self, model: Dict[int, bool]) -> int:
        """Evaluate the cost function ``F`` under a SAT model."""
        total = 0
        for term in self.objective:
            variable = abs(term.literal)
            value = model.get(variable, False)
            if term.literal < 0:
                value = not value
            if value:
                total += term.weight
        return total


def build_encoding(
    gates: Sequence[Tuple[int, int]],
    num_logical: int,
    coupling: CouplingMap,
    permutation_spots: Optional[Sequence[int]] = None,
    permutation_table: Optional[PermutationTable] = None,
) -> MappingEncoding:
    """Build the symbolic formulation for a CNOT sequence.

    Args:
        gates: The circuit's CNOT skeleton as (control, target) logical pairs.
        num_logical: Number of logical qubits ``n`` of the circuit.
        coupling: Target architecture (``m`` physical qubits).
        permutation_spots: Gate indices before which the mapping may change.
            Defaults to every gate (the minimal formulation).  Index 0 (the
            initial mapping) is always treated as free.
        permutation_table: Pre-computed ``swaps(pi)`` table for *coupling*;
            built on demand when omitted.

    Returns:
        The :class:`MappingEncoding`.

    Raises:
        EncodingError: If the circuit needs more logical qubits than the
            device has physical qubits, or a gate index is out of range.
    """
    gates = [tuple(gate) for gate in gates]
    num_physical = coupling.num_qubits
    if num_logical > num_physical:
        raise EncodingError(
            f"cannot map {num_logical} logical qubits onto {num_physical} physical qubits"
        )
    if not gates:
        raise EncodingError("the CNOT skeleton is empty; nothing to encode")
    for control, target in gates:
        for qubit in (control, target):
            if not 0 <= qubit < num_logical:
                raise EncodingError(f"gate qubit {qubit} out of range")

    if permutation_spots is None:
        spots = list(range(len(gates)))
    else:
        spots = sorted(set(permutation_spots) | {0})
        for spot in spots:
            if not 0 <= spot < len(gates):
                raise EncodingError(f"permutation spot {spot} out of range")
    spot_set = set(spots)

    if permutation_table is None:
        permutation_table = PermutationTable(coupling)

    cnf = CNF()
    encoder = TseitinEncoder(cnf)

    # ------------------------------------------------------------------
    # Mapping variables x^k_ij and constraint (1).
    # ------------------------------------------------------------------
    x_vars: List[Dict[Tuple[int, int], int]] = []
    for k in range(len(gates)):
        layer: Dict[Tuple[int, int], int] = {}
        for i in range(num_physical):
            for j in range(num_logical):
                layer[(i, j)] = cnf.new_var(f"x_{k}_{i}_{j}")
        x_vars.append(layer)
        # Every logical qubit sits on exactly one physical qubit.
        for j in range(num_logical):
            exactly_one(cnf, [layer[(i, j)] for i in range(num_physical)])
        # Every physical qubit hosts at most one logical qubit.
        for i in range(num_physical):
            at_most_one_pairwise(cnf, [layer[(i, j)] for j in range(num_logical)])

    # ------------------------------------------------------------------
    # Constraint (2) and (4): CNOT placement and direction switching.
    # ------------------------------------------------------------------
    z_vars: Dict[int, int] = {}
    objective: List[ObjectiveTerm] = []
    for k, (control, target) in enumerate(gates):
        layer = x_vars[k]
        aligned_literals: List[int] = []
        reversed_literals: List[int] = []
        for (pi, pj) in sorted(coupling.edges):
            aligned = encoder.encode_and(
                [layer[(pi, control)], layer[(pj, target)]],
                name=f"aligned_{k}_{pi}_{pj}",
            )
            aligned_literals.append(aligned)
            flipped = encoder.encode_and(
                [layer[(pi, target)], layer[(pj, control)]],
                name=f"reversed_{k}_{pi}_{pj}",
            )
            reversed_literals.append(flipped)
        # Constraint (2): the CNOT must sit on a coupled pair (either way).
        encoder.add_at_least_one(aligned_literals + reversed_literals)
        # Constraint (4): z^k is true iff the placement requires switching the
        # control and target (i.e. only the reversed orientation is native).
        z_var = cnf.new_var(f"z_{k}")
        z_vars[k] = z_var
        any_aligned = encoder.encode_or(aligned_literals, name=f"any_aligned_{k}")
        any_reversed = encoder.encode_or(reversed_literals, name=f"any_reversed_{k}")
        # z <-> (reversed placement possible and aligned placement not possible).
        encoder.add_iff_and(z_var, [any_reversed, -any_aligned])
        objective.append(ObjectiveTerm(REVERSAL_COST, z_var))

    # ------------------------------------------------------------------
    # Constraint (3): permutations between gates, and mapping stability for
    # gates that are not permutation spots.
    # ------------------------------------------------------------------
    y_vars: Dict[int, Dict[Permutation, int]] = {}
    total_mapping = num_logical == num_physical
    for k in range(1, len(gates)):
        previous, current = x_vars[k - 1], x_vars[k]
        if k not in spot_set:
            # The mapping must stay unchanged.
            for key in previous:
                encoder.add_iff(previous[key], current[key])
            continue
        # Shared equality variables eq_{i -> i2, j}: "logical j moved from
        # physical i to physical i2" expressed as x^{k-1}_{ij} <-> x^k_{i2 j}.
        equality: Dict[Tuple[int, int, int], int] = {}
        for i in range(num_physical):
            for i2 in range(num_physical):
                for j in range(num_logical):
                    equality[(i, i2, j)] = encoder.encode_iff(
                        previous[(i, j)], current[(i2, j)],
                        name=f"eq_{k}_{i}_{i2}_{j}",
                    )
        spot_vars: Dict[Permutation, int] = {}
        for perm in permutation_table.permutations():
            y_var = cnf.new_var(f"y_{k}_{'_'.join(map(str, perm))}")
            spot_vars[perm] = y_var
            conditions = [
                equality[(i, perm[i], j)]
                for i in range(num_physical)
                for j in range(num_logical)
            ]
            if total_mapping:
                # Equation (3): the conjunction of equalities iff y^k_pi.
                encoder.add_iff_and(y_var, conditions)
            else:
                # Footnote 5: y^k_pi implies consistency with pi; exactly one
                # permutation is selected per spot.
                for condition in conditions:
                    encoder.add_implication(y_var, condition)
        exactly_one(cnf, list(spot_vars.values()), encoding="sequential",
                    prefix=f"y_spot_{k}")
        y_vars[k] = spot_vars
        for perm, y_var in spot_vars.items():
            weight = SWAP_COST * permutation_table.swaps(perm)
            if weight > 0:
                objective.append(ObjectiveTerm(weight, y_var))

    return MappingEncoding(
        cnf=cnf,
        objective=objective,
        x_vars=x_vars,
        y_vars=y_vars,
        z_vars=z_vars,
        gates=list(gates),
        num_logical=num_logical,
        num_physical=num_physical,
        permutation_spots=spots,
        permutation_table=permutation_table,
    )


__all__ = ["MappingEncoding", "EncodingError", "build_encoding"]
