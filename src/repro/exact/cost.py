"""Cost model of the mapping problem.

The paper counts elementary operations (Section 2.2): inserting one SWAP
costs 7 operations (its decomposition into 3 CNOTs and 4 Hadamards, Fig. 3),
and reversing the direction of a CNOT costs 4 operations (4 Hadamards).
The overall objective ``F`` (Eq. 5) is the total number of *added*
operations.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of elementary operations added per SWAP (3 CNOTs + 4 H, Fig. 3).
SWAP_COST = 7

#: Number of elementary operations added per CNOT direction reversal (4 H).
REVERSAL_COST = 4


@dataclass(frozen=True)
class CostBreakdown:
    """Breakdown of the cost of a mapped circuit.

    Attributes:
        original_gates: Number of elementary gates before mapping
            (single-qubit gates plus CNOTs).
        swaps: Number of SWAP operations inserted.
        reversals: Number of CNOT gates whose direction was reversed.
    """

    original_gates: int
    swaps: int
    reversals: int

    @property
    def added_cost(self) -> int:
        """The paper's objective ``F``: number of added elementary operations."""
        return SWAP_COST * self.swaps + REVERSAL_COST * self.reversals

    @property
    def total_cost(self) -> int:
        """Total number of elementary operations of the mapped circuit
        (the ``c`` columns of Table 1)."""
        return self.original_gates + self.added_cost

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostBreakdown(original={self.original_gates}, swaps={self.swaps}, "
            f"reversals={self.reversals}, added={self.added_cost}, "
            f"total={self.total_cost})"
        )


def swap_cost(num_swaps: int) -> int:
    """Cost in elementary operations of *num_swaps* SWAP insertions."""
    if num_swaps < 0:
        raise ValueError("number of SWAPs cannot be negative")
    return SWAP_COST * num_swaps


def reversal_cost(num_reversals: int) -> int:
    """Cost in elementary operations of *num_reversals* CNOT reversals."""
    if num_reversals < 0:
        raise ValueError("number of reversals cannot be negative")
    return REVERSAL_COST * num_reversals


__all__ = [
    "SWAP_COST",
    "REVERSAL_COST",
    "CostBreakdown",
    "swap_cost",
    "reversal_cost",
]
