"""Exact mapping of quantum circuits to coupling-constrained architectures.

This package implements the paper's primary contribution: formulating the
qubit-mapping problem symbolically and solving it with a reasoning engine so
that the number of added SWAP and H operations is minimal (Section 3), plus
the performance improvements of Section 4 (physical-qubit subsets and
restricted permutation spots).

Two exact engines are provided:

* :class:`~repro.exact.sat_mapper.SATMapper` — the paper's method: the
  symbolic formulation (constraints (1)-(4), objective (5)) handed to the
  SAT-based optimiser of :mod:`repro.sat`.
* :class:`~repro.exact.dp_mapper.DPMapper` — an independent exact engine that
  performs dynamic programming over complete logical-to-physical mappings per
  CNOT gate.  For the small QX-era devices its state space is tiny, so it
  serves both as a fast oracle for large gate counts and as a cross-check of
  the SAT formulation in the test suite.
"""

from repro.exact.cost import SWAP_COST, REVERSAL_COST, CostBreakdown
from repro.exact.result import MappingResult, MappingSchedule
from repro.exact.strategies import (
    PermutationStrategy,
    AllGatesStrategy,
    DisjointQubitsStrategy,
    OddGatesStrategy,
    QubitTriangleStrategy,
    WindowStrategy,
    get_strategy,
    available_strategies,
)
from repro.exact.encoding import MappingEncoding, build_encoding
from repro.exact.dp_mapper import DPMapper
from repro.exact.sat_mapper import SATMapper
from repro.exact.reconstruction import reconstruct_circuit

__all__ = [
    "SWAP_COST",
    "REVERSAL_COST",
    "CostBreakdown",
    "MappingResult",
    "MappingSchedule",
    "PermutationStrategy",
    "AllGatesStrategy",
    "DisjointQubitsStrategy",
    "OddGatesStrategy",
    "QubitTriangleStrategy",
    "WindowStrategy",
    "get_strategy",
    "available_strategies",
    "MappingEncoding",
    "build_encoding",
    "DPMapper",
    "SATMapper",
    "reconstruct_circuit",
]
