"""Windowed circuit splitting: exact windows stitched by synthesized SWAPs.

The paper's scalability lever for deep circuits and big devices: the CNOT
stream is chunked into *windows*, each window is solved **exactly** on a
connected sub-coupling of at most
:data:`~repro.arch.synthesis.EXHAUSTIVE_SYNTHESIS_MAX_QUBITS` active qubits
(reusing the full subset-family sweep of
:class:`~repro.exact.sat_mapper.SATMapper`), and adjacent windows are
stitched with permutations synthesized by the polynomial routed backend
(:mod:`repro.arch.synthesis`).  The result is an end-to-end mapping on
devices far beyond the permutation-table wall — ``ibm_qx5`` (16 qubits),
``ibm_tokyo`` (20 qubits) — at the price of global optimality: each window's
objective is provably minimal *for that window*, the stitches are
upper-bound SWAP sequences, so the combined result reports
``optimal=False``.

Provenance: the result's ``statistics`` record the window layout
(``split_windows``, ``split_window_size``), per-window exact objectives
(``window_objectives``), per-boundary stitch SWAP counts (``stitch_swaps``)
and their total, plus the summed solver counters of all windows.

The engine registers as ``sat_split`` (alias ``split``) and is reachable
from the CLI as ``--engine sat --split-window N``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.cache import shared_distance_matrix, shared_synthesizer
from repro.arch.coupling import CouplingMap
from repro.arch.synthesis import EXHAUSTIVE_SYNTHESIS_MAX_QUBITS
from repro.circuit.circuit import QuantumCircuit
from repro.exact.reconstruction import build_result, default_schedule
from repro.exact.result import MappingResult, MappingSchedule
from repro.exact.sat_mapper import SATMapper, SATMapperError

#: Default number of CNOT gates per window.
DEFAULT_WINDOW_SIZE = 8

#: Default cap on active logical qubits per window.  Deliberately below the
#: exhaustive-synthesis ceiling: the per-spot objective grows with the
#: sub-coupling's permutation count (``5! = 120`` vs ``8! = 40320``), and the
#: paper's own subset experiments stop at 5 qubits.
DEFAULT_QUBIT_CAP = 5


class SplittingError(RuntimeError):
    """Raised when a circuit cannot be mapped by windowed splitting."""


def partition_windows(
    gates: Sequence[Tuple[int, int]],
    window_size: int,
    qubit_cap: int,
) -> List[List[int]]:
    """Chunk CNOT indices into windows bounded by gate count and active qubits.

    A window closes when it holds *window_size* CNOTs or when admitting the
    next CNOT would push its active logical-qubit set past *qubit_cap* (the
    exact-solve ceiling).  Every CNOT touches two qubits, so any cap of at
    least two admits every gate into some window.

    Args:
        gates: The circuit's CNOT skeleton as (control, target) pairs.
        window_size: Maximum CNOTs per window (at least 1).
        qubit_cap: Maximum distinct logical qubits per window (at least 2).

    Returns:
        Consecutive, non-empty lists of gate indices covering ``range(len(gates))``.
    """
    if window_size < 1:
        raise ValueError("split window size must be at least 1")
    if qubit_cap < 2:
        raise ValueError("split qubit cap must be at least 2")
    windows: List[List[int]] = []
    current: List[int] = []
    active: set = set()
    for index, (control, target) in enumerate(gates):
        grown = active | {control, target}
        if current and (len(current) >= window_size or len(grown) > qubit_cap):
            windows.append(current)
            current = []
            grown = {control, target}
        current.append(index)
        active = grown
    if current:
        windows.append(current)
    return windows


class SplitSATMapper:
    """Windowed exact mapping for devices beyond the permutation-table wall.

    Args:
        coupling: Target architecture (any size).
        window_size: CNOT gates per window (the CLI's ``--split-window``).
        qubit_cap: Maximum active logical qubits per window; defaults to the
            exact-synthesis ceiling and must not exceed it (each window is
            solved on the permutation table of its sub-coupling).
        strategy: Permutation-restriction strategy forwarded to each
            window's :class:`SATMapper`.
        optimizer: Low-level optimiser name forwarded to window solves.
        optimizer_strategy: Descent strategy forwarded to window solves.
        time_limit: Overall wall-clock budget in seconds, shared across
            windows (each window sees the remaining budget).
        decompose_swaps: Emit SWAPs as the 7-gate decomposition (default).
    """

    name = "sat_split"
    accepts_external_bound = False
    accepts_initial_model = False

    def __init__(
        self,
        coupling: CouplingMap,
        window_size: int = DEFAULT_WINDOW_SIZE,
        qubit_cap: int = DEFAULT_QUBIT_CAP,
        strategy: Any = None,
        optimizer: Optional[str] = None,
        optimizer_strategy: str = "linear",
        time_limit: Optional[float] = None,
        decompose_swaps: bool = True,
    ):
        if window_size < 1:
            raise ValueError("split window size must be at least 1")
        if not 2 <= qubit_cap <= EXHAUSTIVE_SYNTHESIS_MAX_QUBITS:
            raise ValueError(
                "split qubit cap must be between 2 and "
                f"{EXHAUSTIVE_SYNTHESIS_MAX_QUBITS} (windows are solved exactly)"
            )
        self.coupling = coupling
        self.window_size = window_size
        self.qubit_cap = qubit_cap
        self.strategy = strategy
        self.optimizer = optimizer
        self.optimizer_strategy = optimizer_strategy
        self.time_limit = time_limit
        self.decompose_swaps = decompose_swaps

    # ------------------------------------------------------------------
    def _window_mapper(self, remaining: Optional[float]) -> SATMapper:
        return SATMapper(
            self.coupling,
            strategy=self.strategy,
            use_subsets=True,
            optimizer=self.optimizer,
            optimizer_strategy=self.optimizer_strategy,
            time_limit=remaining,
            decompose_swaps=self.decompose_swaps,
        )

    def _park_displaced(
        self,
        placement: List[int],
        active: Sequence[int],
        window_positions: set,
    ) -> None:
        """Move parked logical qubits out of the next window's subset.

        A logical qubit that is not active in the window but currently sits
        on one of the window's physical qubits is re-parked on the nearest
        free physical qubit outside the subset (deterministic tie-break by
        index).  Counting guarantees a spot exists: the device has at least
        as many positions outside the subset as there are parked qubits.
        """
        distances = shared_distance_matrix(self.coupling)
        active_set = set(active)
        occupied = {
            position
            for logical, position in enumerate(placement)
            if position >= 0 and logical not in active_set
        }
        for logical in range(len(placement)):
            position = placement[logical]
            if logical in active_set or position < 0:
                continue
            if position not in window_positions:
                continue
            candidates = [
                physical
                for physical in range(self.coupling.num_qubits)
                if physical not in window_positions and physical not in occupied
            ]
            if not candidates:
                raise SplittingError(
                    "no free physical qubit outside the window subset"
                )
            row = distances.get(position, {})
            best = min(
                candidates,
                key=lambda physical: (row.get(physical, self.coupling.num_qubits + 1), physical),
            )
            occupied.discard(position)
            occupied.add(best)
            placement[logical] = best

    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit) -> MappingResult:
        """Map *circuit* window by window; see the module docstring.

        Raises:
            SATMapperError: When a window has no valid mapping or the time
                budget runs out mid-stream.
            ValueError: When the circuit does not fit on the device.
        """
        start = time.monotonic()
        num_logical = circuit.num_qubits
        num_physical = self.coupling.num_qubits
        if num_logical > num_physical:
            raise ValueError(
                f"circuit has {num_logical} logical qubits but the device only "
                f"has {num_physical}"
            )
        cnot_gates = circuit.cnot_gates()
        gates = [(gate.control, gate.target) for gate in cnot_gates]
        if not gates:
            schedule = default_schedule(num_logical, self.coupling)
            return build_result(
                circuit,
                schedule,
                self.coupling,
                engine=self.name,
                strategy=self._strategy_name(),
                objective=0,
                optimal=True,
                runtime_seconds=time.monotonic() - start,
                statistics={"split_windows": 0,
                            "split_window_size": self.window_size},
                decompose_swaps=self.decompose_swaps,
            )

        windows = partition_windows(gates, self.window_size, self.qubit_cap)
        synthesizer = shared_synthesizer(self.coupling)
        placement: List[int] = [-1] * num_logical
        global_mappings: List[Tuple[int, ...]] = []
        window_objectives: List[int] = []
        window_sizes: List[int] = []
        stitch_swaps: List[int] = []
        solver_totals: Dict[str, float] = {}
        windows_optimal = 0
        boundary_before: Optional[Tuple[int, ...]] = None

        for window_index, window in enumerate(windows):
            remaining = self._remaining(start)
            if remaining is not None and remaining <= 0:
                raise SATMapperError(
                    "time budget exhausted before all windows were solved"
                )
            active = sorted({q for index in window for q in gates[index]})
            local_index = {logical: i for i, logical in enumerate(active)}
            sub_circuit = QuantumCircuit(
                len(active), f"{circuit.name}_w{window_index}"
            )
            for index in window:
                control, target = gates[index]
                sub_circuit.cx(local_index[control], local_index[target])
            window_result = self._window_mapper(remaining).map(sub_circuit)
            window_mappings = window_result.schedule.mappings
            window_positions = {
                position for mapping in window_mappings for position in mapping
            }
            window_objectives.append(int(window_result.objective or 0))
            windows_optimal += 1 if window_result.optimal else 0
            window_sizes.append(len(window))
            for key, value in window_result.statistics.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    solver_totals[key] = solver_totals.get(key, 0) + value

            # Evict parked qubits from the window's subset, then park any
            # logical qubit that has never been placed yet — every global
            # mapping must be total over the circuit's logical qubits.
            self._park_displaced(placement, active, window_positions)
            occupied = {
                position for position in placement if position >= 0
            } | window_positions
            for logical in range(num_logical):
                if placement[logical] < 0 and logical not in local_index:
                    free = next(
                        physical
                        for physical in range(num_physical)
                        if physical not in occupied
                    )
                    placement[logical] = free
                    occupied.add(free)

            for mapping in window_mappings:
                for logical in active:
                    placement[logical] = mapping[local_index[logical]]
                global_mappings.append(tuple(placement))

            boundary_after = global_mappings[len(global_mappings) - len(window)]
            if boundary_before is not None:
                stitch_swaps.append(
                    synthesizer.transition_cost(boundary_before, boundary_after)
                )
            boundary_before = global_mappings[-1]

        schedule = MappingSchedule(
            num_logical=num_logical,
            num_physical=num_physical,
            mappings=global_mappings,
            initial_mapping=global_mappings[0],
        )
        statistics: Dict[str, Any] = {
            "split_windows": len(windows),
            "split_window_size": self.window_size,
            "split_qubit_cap": self.qubit_cap,
            "window_objectives": window_objectives,
            "window_gates": window_sizes,
            "stitch_swaps": stitch_swaps,
            "stitch_swaps_total": sum(stitch_swaps),
            "windows_optimal": windows_optimal,
        }
        for key in (
            "solver_conflicts",
            "solver_iterations",
            "solver_propagations",
            "subsets_solved",
            "subsets_pruned",
            "family_reuses",
        ):
            if key in solver_totals:
                statistics[key] = solver_totals[key]
        if not synthesizer.optimal:
            statistics["routed_reconstruction"] = 1

        result = build_result(
            circuit,
            schedule,
            self.coupling,
            engine=self.name,
            strategy=self._strategy_name(),
            objective=None,
            optimal=False,
            runtime_seconds=time.monotonic() - start,
            num_permutation_spots=None,
            statistics=statistics,
            decompose_swaps=self.decompose_swaps,
            permutation_table=synthesizer,
        )
        # The realized added cost is the honest objective of a stitched
        # mapping: window objectives are exact only within their windows.
        result.objective = result.cost.added_cost
        return result

    # ------------------------------------------------------------------
    def _strategy_name(self) -> str:
        if self.strategy is None:
            return "all"
        return getattr(self.strategy, "name", str(self.strategy))

    def _remaining(self, start: float) -> Optional[float]:
        if self.time_limit is None:
            return None
        return self.time_limit - (time.monotonic() - start)


__all__ = [
    "DEFAULT_WINDOW_SIZE",
    "DEFAULT_QUBIT_CAP",
    "SplittingError",
    "partition_windows",
    "SplitSATMapper",
]
