"""Cross-family reuse for the subset sweep: bounds, embeddings, clause maps.

A subset sweep (Section 4.1) solves one mapping instance per *family* of
structurally identical sub-couplings.  Families are independent SAT
instances, but they are far from unrelated — this module provides the three
relations the sweep exploits so that work done on one family transfers to
the others:

* :func:`structural_lower_bound` — a provable lower bound on a family's
  added cost, computed in microseconds from the CNOT skeleton and the edge
  count alone.  Used to order families (densest first, so a tight incumbent
  appears early) and to prune sparse families outright.

* :func:`find_edge_embedding` — a vertex bijection under which one
  sub-coupling's directed edge set is contained in another's.  When family
  *A* embeds into family *B*, every schedule valid on *A* is valid on *B*
  at no higher cost (extra edges only ever help), so

  - ``optimum(A) >= optimum(B)`` — *B*'s proven bounds prune *A*, and
  - clauses implied by *B*'s formula are implied by *A*'s formula once
    translated, because any *A*-model extends to a *B*-model over the
    shared skeleton variables (the edge layer of *B* is definitionally
    determined by the ``x`` layer, and constraint (2) is satisfied via the
    embedded edge).

* :func:`encoding_variable_remap` — the literal translation table realising
  that transfer.  The map works on the variable *roles* shared by every
  encoding of the same instance shape: ``x^k_{ij}`` maps to
  ``x^k_{sigma(i)j}``, equality variables permute both endpoints, and a
  permutation variable ``y^k_pi`` maps to ``y^k_{sigma . pi . sigma^-1}``.
  Edge-block and bound-ladder variables are deliberately absent — a clause
  mentioning one does not transfer and is dropped by the importer.  When
  source and target instantiate the *same* cached skeleton under the
  identity relabelling, the whole spot block (sequential at-most-one chain
  auxiliaries included) transfers via a constant index shift instead.

Soundness of a clause import is checkable per clause with
:func:`clause_is_implied`; :class:`~repro.exact.sat_mapper.SATMapper`
runs that check on every imported clause when the environment variable
``REPRO_CHECK_IMPORTS`` is set (slow — meant for tests and debugging).
"""

from __future__ import annotations

import itertools
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.arch.permutations import PermutationTable, permutation_between
from repro.exact.cost import REVERSAL_COST, SWAP_COST
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver, SolverResult

#: Largest sub-coupling size for which the brute-force embedding search runs
#: (``n!`` candidate bijections with early rejection; subsets are circuit
#: sized, so this is never hit in practice).
MAX_EMBEDDING_QUBITS = 8


def structural_lower_bound(
    coupling: CouplingMap, gates: Sequence[Tuple[int, int]]
) -> int:
    """A provable lower bound on the added cost of mapping *gates* onto *coupling*.

    Two independent arguments, combined by maximum:

    * **SWAP count** — any fixed injective placement realises at most ``e``
      distinct logical interaction pairs (distinct pairs occupy distinct
      undirected edges), and a schedule with ``S`` SWAPs visits at most
      ``S + 1`` distinct placements — so a circuit touching ``p`` distinct
      pairs needs at least ``ceil(p / e) - 1`` SWAPs, each costing
      :data:`~repro.exact.cost.SWAP_COST`.
    * **Reversal** — on a coupling without bidirectional edges, a logical
      pair interacting in *both* orientations cannot sit aligned for both
      directions under one placement (that would need the physical edge in
      both directions); a schedule therefore pays at least one reversal
      (:data:`~repro.exact.cost.REVERSAL_COST`) or one SWAP, whichever is
      cheaper.

    The bound is weak (it mostly ignores *which* pairs interact) but free:
    it only counts pairs and edges.  It is used as the family ordering key
    and as the first pruning filter of the sweep.
    """
    pairs = {frozenset((control, target)) for control, target in gates
             if control != target}
    if not pairs:
        return 0
    num_edges = len(coupling.undirected_edges)
    if num_edges == 0:
        # No two qubits are ever adjacent; unsatisfiable for any CNOT, but
        # report a plain positive bound and let the solver prove it.
        return SWAP_COST
    placements_needed = -(-len(pairs) // num_edges)  # ceil division
    bound = SWAP_COST * (placements_needed - 1)
    edges = coupling.edges
    if not any((b, a) in edges for (a, b) in edges):
        directed_pairs = {(c, t) for c, t in gates if c != t}
        if any((t, c) in directed_pairs for (c, t) in directed_pairs):
            bound = max(bound, min(REVERSAL_COST, SWAP_COST))
    return bound


def find_edge_embedding(
    inner: CouplingMap,
    outer: CouplingMap,
    directed: bool = True,
    max_qubits: int = MAX_EMBEDDING_QUBITS,
) -> Optional[Tuple[int, ...]]:
    """A vertex bijection embedding *inner*'s edges into *outer*'s.

    Returns the lexicographically first tuple ``sigma`` (so the result is
    deterministic) with ``(sigma[u], sigma[v])`` an edge of *outer* for
    every directed edge ``(u, v)`` of *inner*, or ``None`` when no such
    bijection exists (or the maps differ in size / exceed *max_qubits*).

    With ``directed=False`` the containment is checked on the *undirected*
    edge sets instead.  The two relations license different transfers:

    * **directed** embeddings preserve costs (SWAP weights depend only on
      undirected edges, and a CNOT aligned on *inner* stays aligned on
      *outer*), so proven *lower bounds* transfer — the basis of family
      pruning;
    * **undirected** embeddings still preserve *satisfiability* of the hard
      constraints (constraint (2) accepts a coupled pair in either
      orientation), so formula-implied *learned clauses* transfer, but a
      reversal-free schedule may pick up reversal costs — no bound
      transfer.

    Both maps must have the same number of qubits — subset families of one
    sweep always do.
    """
    size = inner.num_qubits
    if size != outer.num_qubits or size > max_qubits:
        return None
    if directed:
        inner_edges = tuple(sorted(inner.edges))
        outer_edges = outer.edges
    else:
        inner_edges = tuple(sorted(inner.undirected_edges))
        outer_edges = frozenset(
            edge
            for (a, b) in outer.undirected_edges
            for edge in ((a, b), (b, a))
        )
    if len(inner_edges) > len(outer_edges if directed else outer.undirected_edges):
        return None
    for sigma in itertools.permutations(range(size)):
        if all(
            (sigma[u], sigma[v]) in outer_edges for (u, v) in inner_edges
        ):
            return sigma
    return None


def encoding_variable_remap(
    source, target, vertex_map: Sequence[int]
) -> Dict[int, int]:
    """Variable translation table for clauses crossing between two families.

    Args:
        source: The encoding the clauses were learned on (or any object
            exposing its ``x_vars``/``eq_vars``/``y_vars`` maps and block
            boundaries, e.g. the slim per-family record the sweep keeps
            after releasing a solver).
        target: The encoding the clauses are imported into.
        vertex_map: Bijection over physical indices, ``vertex_map[i]`` being
            the target-family index playing source-family index ``i``'s role
            (for clauses flowing from *B* into an *A* that embeds via
            ``sigma``, this is ``sigma^-1``).

    Returns:
        Source variable -> target variable over the shared ``x``, equality
        and ``y`` roles.  When both encodings instantiate the same cached
        skeleton and *vertex_map* is the identity, the map additionally
        covers the spot block's at-most-one chain auxiliaries (their
        semantics depend on the permutation enumeration order, which only
        survives the identity relabelling of an identical spot block).
    """
    size = len(vertex_map)
    if sorted(vertex_map) != list(range(size)):
        raise ValueError(f"vertex map {vertex_map!r} is not a bijection")
    identity = all(vertex_map[i] == i for i in range(size))
    if identity and source.skeleton is not None and (
        source.skeleton is target.skeleton
    ):
        # Same spot-block content at a constant offset: map the x block
        # one-to-one and shift the whole spot block, auxiliaries included.
        shift = target.spot_var_start - source.spot_var_start
        remap = {var: var for var in range(1, source.x_var_limit + 1)}
        for var in range(source.spot_var_start + 1, source.spot_var_end + 1):
            remap[var] = var + shift
        return remap
    remap = {}
    for k, layer in enumerate(source.x_vars):
        target_layer = target.x_vars[k]
        for (i, j), var in layer.items():
            remap[var] = target_layer[(vertex_map[i], j)]
    for k, equality in source.eq_vars.items():
        target_equality = target.eq_vars[k]
        for (i, i2, j), var in equality.items():
            remap[var] = target_equality[(vertex_map[i], vertex_map[i2], j)]
    for k, spot_vars in source.y_vars.items():
        target_spot = target.y_vars[k]
        for perm, var in spot_vars.items():
            image = [0] * size
            for i in range(size):
                image[vertex_map[i]] = vertex_map[perm[i]]
            remap[var] = target_spot[tuple(image)]
    return remap


def translate_schedule(
    mappings: Sequence[Tuple[int, ...]], vertex_map: Sequence[int]
) -> List[Tuple[int, ...]]:
    """Relabel a schedule's physical indices through *vertex_map*.

    ``vertex_map[i]`` is the target-family index playing source index
    ``i``'s role; logical qubit ``j`` sitting on source physical
    ``mapping[j]`` moves to ``vertex_map[mapping[j]]``.
    """
    return [
        tuple(vertex_map[physical] for physical in mapping)
        for mapping in mappings
    ]


def schedule_cost(
    coupling: CouplingMap,
    table: PermutationTable,
    gates: Sequence[Tuple[int, int]],
    mappings: Sequence[Tuple[int, ...]],
) -> Optional[int]:
    """Exact added cost of running *mappings* on *coupling* (or ``None``).

    Evaluates the paper's objective (Eq. 5) for a concrete schedule:
    ``SWAP_COST * swaps(pi)`` per mapping change plus ``REVERSAL_COST`` per
    CNOT that sits on its coupled pair in the reversed orientation only.
    Returns ``None`` when some CNOT is not on a coupled pair at all — the
    schedule is invalid for this coupling.

    Used by the sweep's cross-family model transfer: a solved family's
    optimal schedule relabelled through an *undirected* embedding is always
    placement-valid on the target family, but its reversal cost must be
    re-computed against the target's edge directions before it can serve as
    an incumbent.  Requires total mappings (``n == m``), which is always the
    case for subset families.
    """
    edges = coupling.edges
    total = 0
    previous: Optional[Tuple[int, ...]] = None
    for (control, target), mapping in zip(gates, mappings):
        mapping = tuple(mapping)
        if previous is not None and mapping != previous:
            permutation = permutation_between(
                previous, mapping, coupling.num_qubits
            )
            total += SWAP_COST * table.swaps(permutation)
        physical_control = mapping[control]
        physical_target = mapping[target]
        if (physical_control, physical_target) in edges:
            pass
        elif (physical_target, physical_control) in edges:
            total += REVERSAL_COST
        else:
            return None
        previous = mapping
    return total


def artifact_key(
    gates: Sequence[Tuple[int, int]],
    num_logical: int,
    coupling: CouplingMap,
    spots: Sequence[int],
) -> str:
    """Canonical store key of one instance shape's encoding skeleton.

    The JSON rendering of the exact tuple
    :func:`repro.exact.encoding._shared_skeleton` keys its cache by —
    ``(gates, n, m, spots, undirected edge set)``.  Two encodings with equal
    keys are built by the same deterministic construction, so their x blocks
    are numbered identically and their spot blocks are identical up to a
    constant shift: learned clauses persisted under this key transfer
    between them by pure index arithmetic (see :func:`clauses_to_template`
    / :func:`template_clause_remap`), across sweeps, jobs and processes.
    """
    key = (
        [list(gate) for gate in gates],
        num_logical,
        coupling.num_qubits,
        list(spots),
        [list(edge) for edge in sorted(coupling.undirected_edges)],
    )
    return json.dumps(key, separators=(",", ":"))


def directed_edges_key(coupling: CouplingMap) -> str:
    """Canonical rendering of a coupling's *directed* edge set.

    Artifact lower bounds are only valid for the exact directed orientation
    they were proven under (reversal costs differ between orientations even
    when the undirected structure — and therefore the skeleton key — is the
    same), so bound entries in an artifact row are keyed by this string.
    """
    return json.dumps(
        [list(edge) for edge in sorted(coupling.edges)], separators=(",", ":")
    )


def clauses_to_template(
    clauses: Sequence[Sequence[int]],
    x_var_limit: int,
    spot_var_start: int,
) -> List[List[int]]:
    """Re-base shared-layer clauses from encoding to *template* numbering.

    Template numbering is the skeleton's own: x variables ``1 ..
    x_var_limit`` verbatim, spot variables directly after them.  It is the
    common currency of persisted artifact rows — every encoding of the same
    skeleton key converts to and from it with one constant shift,
    regardless of how large its (non-shared) edge block was.
    """
    shift = spot_var_start - x_var_limit
    rebased: List[List[int]] = []
    for clause in clauses:
        literals: List[int] = []
        for literal in clause:
            var = abs(literal)
            if var > x_var_limit:
                var -= shift
            literals.append(var if literal > 0 else -var)
        rebased.append(literals)
    return rebased


def template_clause_remap(
    x_var_limit: int, spot_var_count: int, target
) -> Dict[int, int]:
    """Template variable -> *target*-encoding variable translation table.

    The inverse direction of :func:`clauses_to_template`, shaped like the
    tables :func:`encoding_variable_remap` produces so
    :meth:`repro.sat.session.SolveSession.import_clauses` consumes both
    interchangeably.  Valid only when *target* instantiates the same
    skeleton key the template numbering came from and the block shapes
    match — callers must check ``x_var_limit`` and ``spot_var_count``
    against the target first and degrade to bound-only seeding otherwise.
    """
    remap = {var: var for var in range(1, x_var_limit + 1)}
    for offset in range(1, spot_var_count + 1):
        remap[x_var_limit + offset] = target.spot_var_start + offset
    return remap


def clause_is_implied(cnf: CNF, clause: Sequence[int]) -> bool:
    """Whether *clause* is a logical consequence of *cnf*.

    Decided by refutation on a fresh solver: the formula together with the
    clause's negation must be unsatisfiable.  Expensive (one SAT call per
    clause) — this is the debug invariant behind ``REPRO_CHECK_IMPORTS``
    and the clause-import property tests, never part of the solving path.
    """
    solver = CDCLSolver(cnf)
    outcome = solver.solve(assumptions=[-literal for literal in clause])
    return outcome is SolverResult.UNSAT


__all__ = [
    "MAX_EMBEDDING_QUBITS",
    "artifact_key",
    "clause_is_implied",
    "clauses_to_template",
    "directed_edges_key",
    "encoding_variable_remap",
    "find_edge_embedding",
    "schedule_cost",
    "structural_lower_bound",
    "template_clause_remap",
    "translate_schedule",
]
