"""Permutation-restriction strategies (Section 4.2 of the paper).

A strategy decides before which CNOT gates the logical-to-physical mapping is
allowed to change.  The unrestricted formulation allows a permutation before
every gate (guaranteeing minimality); the restricted strategies trade
optimality guarantees for much smaller search spaces.

A strategy returns the sorted list of *permutation spots*: 0-based indices
into the CNOT-gate sequence.  Index 0 is always a spot — it represents the
freely chosen initial mapping, which carries no SWAP cost.  The paper's
``|G'|`` column counts these spots (including the initial one), and so do we.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.gates import Gate
from repro.circuit.layers import disjoint_qubit_layers, two_qubit_blocks


class PermutationStrategy(ABC):
    """Base class of permutation-restriction strategies."""

    #: Short identifier used on the command line and in benchmark tables.
    name: str = "base"

    #: True when the strategy still guarantees a minimal result.
    guarantees_minimality: bool = False

    @abstractmethod
    def spots(self, gates: Sequence[Gate], coupling: CouplingMap) -> List[int]:
        """Return the sorted permutation spots for the CNOT sequence *gates*.

        Args:
            gates: The CNOT-only gate sequence (``circuit.cnot_gates()``).
            coupling: The target architecture (some strategies inspect it).

        Returns:
            Sorted list of 0-based gate indices; always contains 0 when the
            circuit has at least one gate.
        """

    def describe(self) -> str:
        """One-line human readable description."""
        return self.__doc__.strip().splitlines()[0] if self.__doc__ else self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class AllGatesStrategy(PermutationStrategy):
    """Allow a permutation before every gate (the minimal formulation of Sec. 3)."""

    name = "all"
    guarantees_minimality = True

    def spots(self, gates: Sequence[Gate], coupling: CouplingMap) -> List[int]:
        return list(range(len(gates)))


class DisjointQubitsStrategy(PermutationStrategy):
    """Allow permutations only before runs of gates acting on disjoint qubits.

    Gates acting on pairwise disjoint qubit sets can always be mapped without
    intermediate permutations, so the circuit is clustered into such runs and
    the mapping may only change at run boundaries (Section 4.2, "disjoint
    qubits").
    """

    name = "disjoint"
    guarantees_minimality = False

    def spots(self, gates: Sequence[Gate], coupling: CouplingMap) -> List[int]:
        layers = disjoint_qubit_layers(gates)
        return sorted(layer[0] for layer in layers)


class OddGatesStrategy(PermutationStrategy):
    """Allow permutations only before gates with an odd (1-based) index.

    With 1-based gate indices ``g1, g2, ...`` as in the paper, permutations
    are allowed before ``g1`` (the initial mapping), ``g3``, ``g5``, and so
    on.  Any two consecutive gates either act on disjoint qubits, share both
    qubits, or share one qubit; in all three cases a valid placement of the
    pair exists, so a valid mapping can always be found (Section 4.2, "odd
    gates").
    """

    name = "odd"
    guarantees_minimality = False

    def spots(self, gates: Sequence[Gate], coupling: CouplingMap) -> List[int]:
        return list(range(0, len(gates), 2))


class QubitTriangleStrategy(PermutationStrategy):
    """Allow permutations only between blocks of gates on at most three qubits.

    The circuit is clustered into maximal runs whose combined qubit support
    has at most three qubits; each run can be mapped onto a "triangle" of the
    coupling map (three mutually connected physical qubits) without any
    intermediate permutation (Section 4.2, "qubit triangle").

    When the architecture has no triangle the strategy falls back to blocks
    of at most two qubits (a single coupled pair), which is always mappable.
    """

    name = "triangle"
    guarantees_minimality = False

    def spots(self, gates: Sequence[Gate], coupling: CouplingMap) -> List[int]:
        max_qubits = 3 if coupling.triangles() else 2
        blocks = two_qubit_blocks(gates, max_qubits=max_qubits)
        return sorted(block[0] for block in blocks)


class WindowStrategy(PermutationStrategy):
    """Allow permutations every ``window`` gates.

    This is not one of the paper's named strategies but a natural
    generalisation of "odd gates" (which is ``window=2``); it is used by the
    ablation benchmarks to study the runtime/quality trade-off as the number
    of permutation spots shrinks.
    """

    name = "window"
    guarantees_minimality = False

    def __init__(self, window: int = 4):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window

    def spots(self, gates: Sequence[Gate], coupling: CouplingMap) -> List[int]:
        return list(range(0, len(gates), self.window))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WindowStrategy(window={self.window})"


_STRATEGIES = {
    "all": AllGatesStrategy,
    "minimal": AllGatesStrategy,
    "disjoint": DisjointQubitsStrategy,
    "disjoint_qubits": DisjointQubitsStrategy,
    "odd": OddGatesStrategy,
    "odd_gates": OddGatesStrategy,
    "triangle": QubitTriangleStrategy,
    "qubit_triangle": QubitTriangleStrategy,
}

#: Aliases of the built-in strategies, excluded from the canonical listing.
_BUILTIN_ALIASES = frozenset({"minimal", "disjoint_qubits", "odd_gates", "qubit_triangle"})


def available_strategies() -> List[str]:
    """Canonical names accepted by :func:`get_strategy`."""
    custom = sorted(
        key for key in _STRATEGIES
        if key not in _BUILTIN_ALIASES
        and key not in ("all", "disjoint", "odd", "triangle")
    )
    return ["all", "disjoint", "odd", "triangle", "window"] + custom


def register_strategy(name: str, factory, overwrite: bool = False) -> None:
    """Register a custom strategy factory under *name* (case-insensitive).

    The factory is called with the keyword arguments passed to
    :func:`get_strategy` and must return a :class:`PermutationStrategy`.
    Registered names become resolvable from everything that accepts a
    strategy name — the CLI, the mapper registry and the pipeline.

    Raises:
        ValueError: When the name is taken and *overwrite* is off.
    """
    key = name.lower()
    if not overwrite and (key in _STRATEGIES or key == "window"):
        raise ValueError(f"strategy name {name!r} is already registered")
    _STRATEGIES[key] = factory


def get_strategy(name, **kwargs) -> PermutationStrategy:
    """Instantiate a strategy by name (case-insensitive).

    Args:
        name: One of :func:`available_strategies` (plus aliases such as
            ``"minimal"`` or ``"disjoint_qubits"``).  An already instantiated
            :class:`PermutationStrategy` is passed through unchanged, so
            callers resolving user-supplied configuration need no type
            switch.
        kwargs: Extra arguments for parameterised strategies
            (``window=<int>`` for the window strategy).

    Raises:
        KeyError: If the name is unknown.
    """
    if isinstance(name, PermutationStrategy):
        return name
    key = name.lower()
    if key in _STRATEGIES:
        return _STRATEGIES[key](**kwargs)
    if key == "window":
        return WindowStrategy(**kwargs)
    raise KeyError(
        f"unknown strategy {name!r}; available: {available_strategies()}"
    )


__all__ = [
    "PermutationStrategy",
    "AllGatesStrategy",
    "DisjointQubitsStrategy",
    "OddGatesStrategy",
    "QubitTriangleStrategy",
    "WindowStrategy",
    "available_strategies",
    "get_strategy",
    "register_strategy",
]
