"""The paper's mapping method: symbolic formulation + reasoning engine.

:class:`SATMapper` builds the Boolean formulation of Section 3.2 (via
:mod:`repro.exact.encoding`), hands it to the SAT-based optimiser of
:mod:`repro.sat` and turns the minimal model into an architecture-compliant
circuit.  The performance improvements of Section 4 are available through

* ``use_subsets=True`` — map onto every connected subset of ``n`` physical
  qubits separately and keep the best result (Section 4.1),
* ``strategy=...`` — restrict the gates before which the mapping may change
  (Section 4.2).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.arch.permutations import PermutationTable
from repro.arch.subsets import connected_subsets
from repro.circuit.circuit import QuantumCircuit
from repro.exact.encoding import build_encoding
from repro.exact.reconstruction import build_result, default_schedule
from repro.exact.result import MappingResult, MappingSchedule
from repro.exact.strategies import AllGatesStrategy, PermutationStrategy
from repro.sat.optimize import OptimizationResult, OptimizingSolver


class SATMapperError(RuntimeError):
    """Raised when no valid mapping could be determined."""


class SATMapper:
    """Exact mapper using the paper's symbolic formulation and a SAT optimiser.

    Args:
        coupling: Target architecture.
        strategy: Permutation-restriction strategy (Section 4.2); defaults to
            permutations before every gate (the minimal formulation).
        use_subsets: Solve one instance per connected subset of ``n`` physical
            qubits instead of one instance over all ``m`` (Section 4.1).
        optimizer_strategy: ``"linear"`` or ``"binary"`` objective search
            (see :class:`~repro.sat.optimize.OptimizingSolver`).
        time_limit: Optional wall-clock budget in seconds for the whole
            mapping call; when exhausted the best solution found so far is
            returned (not necessarily minimal).
        conflict_limit: Optional per-solver-call conflict budget.
        decompose_swaps: Emit SWAPs as their 7-gate decomposition (default).

    Example:
        >>> from repro.arch import ibm_qx4
        >>> from repro.circuit import QuantumCircuit
        >>> circuit = QuantumCircuit(3)
        >>> circuit.cx(0, 1).cx(1, 2)
        >>> result = SATMapper(ibm_qx4()).map(circuit)
        >>> result.added_cost
        0
    """

    def __init__(
        self,
        coupling: CouplingMap,
        strategy: Optional[PermutationStrategy] = None,
        use_subsets: bool = False,
        optimizer_strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        decompose_swaps: bool = True,
    ):
        self.coupling = coupling
        self.strategy = strategy if strategy is not None else AllGatesStrategy()
        self.use_subsets = use_subsets
        self.optimizer_strategy = optimizer_strategy
        self.time_limit = time_limit
        self.conflict_limit = conflict_limit
        self.decompose_swaps = decompose_swaps

    # ------------------------------------------------------------------
    def _candidate_subsets(self, num_logical: int) -> List[Tuple[int, ...]]:
        """Physical-qubit subsets to try (Section 4.1)."""
        num_physical = self.coupling.num_qubits
        if not self.use_subsets or num_logical >= num_physical:
            return [tuple(range(num_physical))]
        return connected_subsets(self.coupling, num_logical)

    def _remaining_time(self, start: float) -> Optional[float]:
        if self.time_limit is None:
            return None
        return max(0.01, self.time_limit - (time.monotonic() - start))

    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit) -> MappingResult:
        """Map *circuit* to the architecture with minimal added cost.

        Raises:
            SATMapperError: If no valid mapping exists (or none was found
                within the time budget).
            ValueError: If the circuit does not fit on the device.
        """
        start = time.monotonic()
        num_logical = circuit.num_qubits
        num_physical = self.coupling.num_qubits
        if num_logical > num_physical:
            raise ValueError(
                f"circuit has {num_logical} logical qubits but the device only "
                f"has {num_physical}"
            )
        cnot_gates = circuit.cnot_gates()
        gates = [(gate.control, gate.target) for gate in cnot_gates]

        if not gates:
            schedule = default_schedule(num_logical, self.coupling)
            return build_result(
                circuit, schedule, self.coupling,
                engine="sat", strategy=self.strategy.name,
                objective=0, optimal=True,
                runtime_seconds=time.monotonic() - start,
                num_permutation_spots=0,
                statistics={},
                decompose_swaps=self.decompose_swaps,
            )

        spots = self.strategy.spots(cnot_gates, self.coupling)

        best_mappings: Optional[List[Tuple[int, ...]]] = None
        best_objective: Optional[int] = None
        best_optimal = False
        total_conflicts = 0
        total_iterations = 0
        total_variables = 0
        total_clauses = 0
        subsets = self._candidate_subsets(num_logical)

        for subset in subsets:
            sub_coupling = self.coupling.subgraph(subset)
            if not sub_coupling.is_connected():
                continue
            table = PermutationTable(sub_coupling)
            encoding = build_encoding(
                gates, num_logical, sub_coupling,
                permutation_spots=spots,
                permutation_table=table,
            )
            total_variables += encoding.num_variables
            total_clauses += encoding.num_clauses
            optimizer = OptimizingSolver(encoding.cnf, encoding.objective)
            outcome: OptimizationResult = optimizer.minimize(
                strategy=self.optimizer_strategy,
                time_limit=self._remaining_time(start),
                conflict_limit=self.conflict_limit,
            )
            total_conflicts += outcome.conflicts
            total_iterations += outcome.iterations
            if not outcome.is_satisfiable:
                continue
            local_mappings = encoding.extract_schedule(outcome.model)
            # Translate subset-relative physical indices back to device indices.
            translated = [
                tuple(subset[physical] for physical in mapping)
                for mapping in local_mappings
            ]
            objective = outcome.objective if outcome.objective is not None else 0
            if best_objective is None or objective < best_objective:
                best_objective = objective
                best_mappings = translated
                best_optimal = outcome.is_optimal

        if best_mappings is None:
            raise SATMapperError(
                "no valid mapping found (all subsets unsatisfiable or the time "
                "budget was exhausted before a first solution)"
            )

        schedule = MappingSchedule(
            num_logical=num_logical,
            num_physical=num_physical,
            mappings=best_mappings,
            initial_mapping=best_mappings[0],
        )
        runtime = time.monotonic() - start
        # Minimality is only guaranteed for the unrestricted formulation over
        # all physical qubits, with the optimiser having proven optimality for
        # every subset it solved.
        proven_minimal = (
            best_optimal
            and self.strategy.guarantees_minimality
            and not self.use_subsets
        )
        return build_result(
            circuit,
            schedule,
            self.coupling,
            engine="sat",
            strategy=self.strategy.name,
            objective=best_objective,
            optimal=proven_minimal,
            runtime_seconds=runtime,
            num_permutation_spots=len(spots),
            statistics={
                "subsets_tried": len(subsets),
                "solver_conflicts": total_conflicts,
                "solver_iterations": total_iterations,
                "encoding_variables": total_variables,
                "encoding_clauses": total_clauses,
            },
            decompose_swaps=self.decompose_swaps,
        )


__all__ = ["SATMapper", "SATMapperError"]
