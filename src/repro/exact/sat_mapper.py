"""The paper's mapping method: symbolic formulation + reasoning engine.

:class:`SATMapper` builds the Boolean formulation of Section 3.2 (via
:mod:`repro.exact.encoding`), hands it to the SAT-based optimiser of
:mod:`repro.sat` and turns the minimal model into an architecture-compliant
circuit.  The performance improvements of Section 4 are available through

* ``use_subsets=True`` — map onto every connected subset of ``n`` physical
  qubits separately and keep the best result (Section 4.1),
* ``strategy=...`` — restrict the gates before which the mapping may change
  (Section 4.2).

The subset sweep is organised around four reuse layers:

* **Subset families** — two subsets whose induced sub-couplings re-index to
  the same directed edge set produce *identical* encodings, so they form one
  family that is encoded and solved once; the other members mirror the
  outcome (translated to their own device indices) without any solver call.
* **Solve sessions** — each family keeps one persistent
  :class:`~repro.sat.session.SolveSession`; objective bounds (the heuristic
  seed and the cross-subset incumbent) are *assumed* on the live solver, so
  learned clauses survive both the objective descent and any re-solve of the
  family under a tightened incumbent.
* **Family ordering and pruning** — families are solved in ascending order
  of a provable structural lower bound
  (:func:`~repro.exact.sweep.structural_lower_bound`, densest sub-couplings
  first), with ties keeping the canonical keys' first-appearance order, so
  sequential and parallel sweeps walk the same order.  Once an incumbent
  exists, a family whose proven lower bound — structural, or transferred
  from an already-decided family it embeds into (fewer edges can never map
  more cheaply) — meets the incumbent is *pruned without a single solver
  call*, and the skip is mirrored to all its members.
* **Cross-family clause sharing** — clauses learned by one family's solver
  before any committed bound are consequences of that family's formula
  alone; restricted to the shared encoding layers and translated through
  :func:`~repro.exact.sweep.encoding_variable_remap` along an (undirected)
  edge embedding, they are implied by every sparser family's formula too,
  and are injected into those sessions before their first solve.  Set the
  environment variable ``REPRO_CHECK_IMPORTS`` to verify every imported
  clause by refutation (slow; used by the property tests).

The subset loop is factored into :meth:`SATMapper.solve_subset` so that the
batch pipeline (:mod:`repro.pipeline.pipeline`) can fan the independent
family representatives out over a worker pool; both the sequential loop here
and the parallel one share :meth:`SATMapper.subset_family_groups`,
:meth:`SATMapper.mirror_outcome`, :meth:`SATMapper.select_best_outcome` and
:meth:`SATMapper.build_mapping_result`.  Per-architecture artefacts
(permutation tables, connected subsets) come from the process-wide caches in
:mod:`repro.arch.cache`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.encoding import EncodingError, MappingEncoding, build_encoding
from repro.exact.reconstruction import build_result, default_schedule
from repro.exact.result import MappingResult, MappingSchedule, schedule_is_valid
from repro.exact.strategies import AllGatesStrategy, PermutationStrategy
from repro.exact.sweep import (
    artifact_key,
    clause_is_implied,
    clauses_to_template,
    directed_edges_key,
    encoding_variable_remap,
    find_edge_embedding,
    schedule_cost,
    structural_lower_bound,
    template_clause_remap,
    translate_schedule,
)
from repro.arch.cache import (
    shared_connected_subsets,
    shared_permutation_table,
    shared_synthesizer,
)
from repro.arch.permutations import invert_permutation
from repro.sat.optimize import (
    OptimizationResult,
    OptimizingSolver,
    resolve_optimizer_name,
)
from repro.sat.session import SolveSession
from repro.sat.solver import solver_backend_provenance

#: Longest learned clause exported across subset families (short clauses
#: prune the most per imported literal; long ones mostly cost propagation).
SHARE_MAX_CLAUSE_SIZE = 8


class SATMapperError(RuntimeError):
    """Raised when no valid mapping could be determined."""

    @classmethod
    def no_solution(cls, budget_exhausted: bool) -> "SATMapperError":
        """The error for a search that ended without any solution.

        Shared by the sequential subset loop and the parallel fan-out in
        :mod:`repro.pipeline.pipeline` so the two paths cannot drift apart.
        """
        if budget_exhausted:
            return cls("time budget exhausted before a first solution was found")
        return cls(
            "no valid mapping found (all subsets unsatisfiable within the "
            "objective bound, or the search was inconclusive)"
        )


@dataclass
class SubsetOutcome:
    """Result of solving one physical-qubit subset instance.

    Attributes:
        subset: Device indices of the physical qubits of this instance.
        status: Optimiser status (``"optimal"``, ``"satisfiable"``,
            ``"unsat"``, ``"unknown"``).
        objective: Best objective value found (``None`` when unsatisfiable).
        mappings: Per-CNOT logical-to-physical mappings, translated back to
            device indices (``None`` when unsatisfiable).
        iterations: Solver calls spent on this instance.
        conflicts: Solver conflicts spent on this instance.
        variables: CNF variables of the instance encoding.
        clauses: CNF clauses of the instance encoding.
        reused: True when the outcome was mirrored from another subset of
            the same family instead of being solved.
        pruned: True when the subset's family was skipped without solving
            because its proven lower bound met the sweep incumbent
            (``status`` is then ``"pruned"``, which reads as
            unsatisfiable-within-bound).
        proven_lower_bound: Lower bound on the family's objective that
            justified the prune (``None`` for solved/mirrored outcomes).
        statistics: Incremental-session counters of the solve (empty for
            mirrored outcomes).
        core_labels: Human-readable labels of the final UNSAT core of the
            optimiser run, when its strategy recorded one (empty for
            mirrored outcomes and strategies without assumption probes).
    """

    subset: Tuple[int, ...]
    status: str
    objective: Optional[int] = None
    mappings: Optional[List[Tuple[int, ...]]] = None
    iterations: int = 0
    conflicts: int = 0
    variables: int = 0
    clauses: int = 0
    reused: bool = False
    pruned: bool = False
    proven_lower_bound: Optional[float] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    core_labels: Tuple[str, ...] = ()

    @property
    def is_satisfiable(self) -> bool:
        """True when the instance yielded at least one model."""
        return self.status in ("optimal", "satisfiable")

    @property
    def is_optimal(self) -> bool:
        """True when the instance was solved to (bounded) optimality."""
        return self.status == "optimal"


@dataclass
class _FamilyState:
    """Live solving state of one subset family during a sweep.

    The encoding (and therefore the session) belongs to the *family*, not to
    a particular subset: outcomes carry subset-relative ("local") mappings
    here and are translated per member.
    """

    encoding: Optional[MappingEncoding]
    optimizer: Optional[OptimizingSolver]
    session: Optional[SolveSession]
    status: Optional[str] = None
    objective: Optional[int] = None
    local_mappings: Optional[List[Tuple[int, ...]]] = None
    bound_used: Optional[int] = None

    def release_solver(self) -> None:
        """Drop the live solver once the family is conclusively decided.

        A sweep can cover many families; keeping every CDCL solver (watch
        lists, learned clauses) alive until the end would grow memory with
        the family count, while a conclusive (``optimal``/``unsat``) family
        only ever serves mirrored outcomes from the recorded fields.
        """
        self.encoding = None
        self.optimizer = None
        self.session = None


@dataclass
class FamilyPlan:
    """One subset family of a sweep, in solving order.

    Attributes:
        indices: Subset indices of the family's members, ascending (the
            first is the representative that is actually solved).
        key: Canonical coupling key of the induced sub-coupling.
        sub_coupling: The representative's re-indexed sub-coupling.
        heuristic_lower_bound: Provable structural lower bound on the
            family's added cost (the primary ordering key, see
            :func:`repro.exact.sweep.structural_lower_bound`).
        connected: Whether the sub-coupling is connected (disconnected
            families are recorded as unsatisfiable without solving).
    """

    indices: List[int]
    key: Tuple
    sub_coupling: CouplingMap
    heuristic_lower_bound: int
    connected: bool


@dataclass
class _SharedVars:
    """Slim view of an encoding's shareable variable layers.

    Retained in the sweep's family records after the heavyweight encoding
    (its CNF clause list) has been released — everything
    :func:`repro.exact.sweep.encoding_variable_remap` needs from a clause
    *source*.
    """

    skeleton: Optional[object]
    x_var_limit: int
    spot_var_start: int
    spot_var_end: int
    x_vars: List[Dict[Tuple[int, int], int]]
    eq_vars: Dict[int, Dict[Tuple[int, int, int], int]]
    y_vars: Dict[int, Dict[Tuple[int, ...], int]]

    @classmethod
    def of(cls, encoding: MappingEncoding) -> "_SharedVars":
        return cls(
            skeleton=encoding.skeleton,
            x_var_limit=encoding.x_var_limit,
            spot_var_start=encoding.spot_var_start,
            spot_var_end=encoding.spot_var_end,
            x_vars=encoding.x_vars,
            eq_vars=encoding.eq_vars,
            y_vars=encoding.y_vars,
        )


@dataclass
class _FamilyRecord:
    """What a processed family leaves behind for the rest of the sweep."""

    plan: FamilyPlan
    shared_vars: Optional[_SharedVars]
    lower_bound: Optional[float]
    exported: List[Tuple[int, ...]]
    schedule: Optional[List[Tuple[int, ...]]] = None
    schedule_objective: Optional[int] = None
    #: Sweep-plan position, set by the parallel fan-out so that pruning
    #: decisions can be restricted to plan-order-prefix information (the
    #: sequential loop's records are prefix-ordered by construction).
    position: Optional[int] = None


class SweepContext:
    """Cross-family bookkeeping of one sweep: proven bounds and clause pool.

    Both the sequential loop (:meth:`SATMapper.map`) and the parallel
    fan-out (:mod:`repro.pipeline.pipeline`) feed processed families in via
    :meth:`note_family` and query :meth:`lower_bound_for` before touching
    the next one; the sequential loop additionally pulls translated learned
    clauses via :meth:`import_into`.

    With an *artifacts* cache (see
    :class:`repro.service.store.ArtifactCache` — duck-typed here as
    anything with ``load(key)``/``save(key, payload)``) and the instance
    shape (*gates*, *num_logical*, *spots*), the context additionally
    consults **persisted solve artifacts** from structurally identical past
    jobs: learned clauses (:meth:`artifact_import_into`), proven lower
    bounds (:meth:`artifact_lower_bound`, directed-orientation matched) and
    incumbent schedules (:meth:`artifact_incumbent`, re-costed), and writes
    this sweep's harvest back via :meth:`save_artifacts`.  Every artifact
    consumption is shape-checked against the live encoding; a corrupt or
    mismatched row degrades to bound-only seeding with a note in
    :attr:`artifact_notes`, never to an error.
    """

    def __init__(
        self,
        gates: Optional[Sequence[Tuple[int, int]]] = None,
        num_logical: Optional[int] = None,
        spots: Optional[Sequence[int]] = None,
        artifacts=None,
    ) -> None:
        self.records: List[_FamilyRecord] = []
        self._embeddings: Dict[Tuple, Optional[Tuple[int, ...]]] = {}
        self.clauses_exported = 0
        self.clauses_imported = 0
        self.families_pruned = 0
        self.models_transferred = 0
        self.gates = [tuple(gate) for gate in gates] if gates else None
        self.num_logical = num_logical
        self.spots = list(spots) if spots is not None else None
        self.artifacts = artifacts
        self.artifact_clauses_imported = 0
        self.artifact_bounds_used = 0
        self.artifact_models_used = 0
        self.artifact_hits = 0
        self.artifact_misses = 0
        self.artifact_notes: List[str] = []
        self._artifact_rows: Dict[str, Optional[Dict]] = {}

    # ------------------------------------------------------------------
    # Persisted artifacts (cross-job warm starts)
    # ------------------------------------------------------------------
    def _artifact_for(
        self, sub_coupling: CouplingMap
    ) -> Tuple[Optional[str], Optional[Dict]]:
        """The (cached) artifact row for one family, with hit/miss counting."""
        if (
            self.artifacts is None
            or self.gates is None
            or self.num_logical is None
            or self.spots is None
        ):
            return None, None
        key = artifact_key(self.gates, self.num_logical, sub_coupling, self.spots)
        if key not in self._artifact_rows:
            try:
                payload = self.artifacts.load(key)
            except Exception:  # noqa: BLE001 - seeding must never fail a solve
                payload = None
            self._artifact_rows[key] = payload
            if payload is None:
                self.artifact_misses += 1
            else:
                self.artifact_hits += 1
        return key, self._artifact_rows[key]

    def artifact_lower_bound(self, sub_coupling: CouplingMap) -> Optional[float]:
        """A persisted proven lower bound for this family, or ``None``.

        Only bound entries proven under *exactly* this family's directed
        edge set apply — same-key families with another CNOT orientation
        pay different reversal costs, so their bounds do not transfer.
        """
        _, payload = self._artifact_for(sub_coupling)
        if payload is None:
            return None
        bound = payload["bounds"].get(directed_edges_key(sub_coupling))
        if bound is None:
            return None
        return float(bound)

    def artifact_incumbent(
        self,
        sub_coupling: CouplingMap,
        table,
        bound: Optional[int],
    ) -> Optional[Tuple[List[Tuple[int, ...]], int]]:
        """A persisted schedule for this family, re-costed, or ``None``.

        Placement validity follows from skeleton-key equality (local
        indices mean the same physical structure); the reversal cost does
        not, so the schedule is re-costed against this family's directed
        edges via :func:`repro.exact.sweep.schedule_cost` — a schedule that
        fails the re-costing (corrupt row) is dropped with a note.
        """
        _, payload = self._artifact_for(sub_coupling)
        if payload is None or payload.get("schedule") is None:
            return None
        if self.gates is None:
            return None
        mappings = [tuple(mapping) for mapping in payload["schedule"]]
        cost = schedule_cost(sub_coupling, table, self.gates, mappings)
        if cost is None:
            self.artifact_notes.append(
                "persisted schedule does not place this family's gates on "
                "coupled pairs; model seeding skipped for this family"
            )
            return None
        if bound is not None and cost > bound:
            return None
        return mappings, cost

    def artifact_import_into(
        self, sub_coupling: CouplingMap, state: "_FamilyState"
    ) -> int:
        """Inject persisted learned clauses into *state*'s session.

        The clauses arrive in template numbering; skeleton-key equality
        makes the translation a constant shift
        (:func:`repro.exact.sweep.template_clause_remap`).  A row whose
        variable-block shape disagrees with the live encoding (a corrupt or
        foreign row) contributes nothing — its bounds and schedule are
        still semantically validated elsewhere, so seeding degrades to
        bound-only with a note.  With ``REPRO_CHECK_IMPORTS`` set, every
        clause is verified implied by the target formula via refutation.
        """
        if state.encoding is None or state.session is None:
            return 0
        _, payload = self._artifact_for(sub_coupling)
        if payload is None or not payload["clauses"]:
            return 0
        encoding = state.encoding
        spot_var_count = encoding.spot_var_end - encoding.spot_var_start
        if (
            payload["x_var_limit"] != encoding.x_var_limit
            or payload["spot_var_count"] != spot_var_count
        ):
            self.artifact_notes.append(
                f"artifact row has variable blocks "
                f"({payload['x_var_limit']}, {payload['spot_var_count']}) "
                f"but the live encoding has ({encoding.x_var_limit}, "
                f"{spot_var_count}); clauses dropped, bound-only seeding"
            )
            return 0
        remap = template_clause_remap(
            payload["x_var_limit"], payload["spot_var_count"], encoding
        )
        clauses = [tuple(clause) for clause in payload["clauses"]]
        if os.environ.get("REPRO_CHECK_IMPORTS"):
            for clause in clauses:
                mapped = [
                    remap[abs(l)] if l > 0 else -remap[abs(l)]
                    for l in clause
                    if abs(l) in remap
                ]
                if len(mapped) != len(clause):
                    continue
                if not clause_is_implied(encoding.cnf, mapped):
                    raise AssertionError(
                        f"artifact clause {clause} (mapped {mapped}) is not "
                        f"implied by the target family's formula"
                    )
        imported = state.session.import_clauses(clauses, remap=remap)
        self.artifact_clauses_imported += imported
        return imported

    def save_artifacts(self) -> int:
        """Persist every processed family's harvest; returns rows written.

        Per family: exported learned clauses re-based to template numbering,
        the proven lower bound keyed by the directed edge set it was proven
        under, and the best local schedule.  Families with nothing useful
        (no clauses, no positive bound, no schedule) write nothing.  Write
        failures are swallowed — persisting artifacts is best-effort.
        """
        if self.artifacts is None or self.gates is None:
            return 0
        written = 0
        for record in self.records:
            key, _ = self._artifact_for(record.plan.sub_coupling)
            if key is None:
                continue
            clauses: List[List[int]] = []
            x_var_limit = len(self.gates) * self.num_logical * (
                record.plan.sub_coupling.num_qubits
            )
            spot_var_count = 0
            shared = record.shared_vars
            if record.exported and shared is not None:
                clauses = clauses_to_template(
                    record.exported, shared.x_var_limit, shared.spot_var_start
                )
                x_var_limit = shared.x_var_limit
                spot_var_count = shared.spot_var_end - shared.spot_var_start
            bounds: Dict[str, float] = {}
            if record.lower_bound is not None and record.lower_bound > 0:
                bounds[directed_edges_key(record.plan.sub_coupling)] = (
                    record.lower_bound
                )
            payload = {
                "version": 1,
                "x_var_limit": x_var_limit,
                "spot_var_count": spot_var_count,
                "clauses": clauses,
                "bounds": bounds,
                "schedule": (
                    [list(mapping) for mapping in record.schedule]
                    if record.schedule is not None else None
                ),
                "objective": record.schedule_objective,
            }
            if not clauses and not bounds and payload["schedule"] is None:
                continue
            try:
                self.artifacts.save(key, payload)
                written += 1
            except Exception:  # noqa: BLE001 - best-effort persistence
                continue
        return written

    def artifact_statistics(self) -> Dict[str, int]:
        """The artifact hit-rate counters of this sweep (always complete)."""
        return {
            "artifact_clauses_imported": self.artifact_clauses_imported,
            "artifact_bounds_used": self.artifact_bounds_used,
            "artifact_models_used": self.artifact_models_used,
            "artifact_hits": self.artifact_hits,
            "artifact_misses": self.artifact_misses,
        }

    # ------------------------------------------------------------------
    def note_family(
        self,
        plan: FamilyPlan,
        lower_bound: Optional[float],
        shared_vars: Optional[_SharedVars] = None,
        exported: Optional[List[Tuple[int, ...]]] = None,
        schedule: Optional[List[Tuple[int, ...]]] = None,
        schedule_objective: Optional[int] = None,
        position: Optional[int] = None,
    ) -> None:
        """Record a processed (solved or pruned) family.

        A family that is solved again (an inconclusive representative
        re-minimised for a later member) updates its record in place: the
        export list is replaced (``export_learned`` is cumulative) and the
        proven bound only ever rises.
        """
        exported = exported or []
        for record in self.records:
            if record.plan is plan:
                if exported:
                    self.clauses_exported += max(
                        0, len(exported) - len(record.exported)
                    )
                    record.exported = exported
                if lower_bound is not None and (
                    record.lower_bound is None
                    or lower_bound > record.lower_bound
                ):
                    record.lower_bound = lower_bound
                if shared_vars is not None:
                    record.shared_vars = shared_vars
                if schedule is not None and (
                    record.schedule_objective is None
                    or schedule_objective < record.schedule_objective
                ):
                    record.schedule = schedule
                    record.schedule_objective = schedule_objective
                return
        self.clauses_exported += len(exported)
        self.records.append(
            _FamilyRecord(
                plan=plan, shared_vars=shared_vars,
                lower_bound=lower_bound, exported=exported,
                schedule=schedule, schedule_objective=schedule_objective,
                position=position,
            )
        )

    def _embedding(
        self, inner: FamilyPlan, outer: FamilyPlan, directed: bool
    ) -> Optional[Tuple[int, ...]]:
        cache_key = (inner.key, outer.key, directed)
        if cache_key not in self._embeddings:
            self._embeddings[cache_key] = find_edge_embedding(
                inner.sub_coupling, outer.sub_coupling, directed=directed
            )
        return self._embeddings[cache_key]

    # ------------------------------------------------------------------
    def lower_bound_for(
        self, plan: FamilyPlan, before: Optional[int] = None
    ) -> float:
        """The tightest proven lower bound available for *plan*'s family.

        Combines the family's own structural bound with bounds transferred
        from processed families it embeds into: when every edge of this
        family maps into family *B* under some vertex relabelling, every
        schedule here is also valid on *B* at no higher cost, so this
        family's optimum is at least *B*'s proven bound.

        Args:
            before: When given, only records stamped with a plan position
                strictly below this take part — the parallel fan-out prunes
                a family from exactly the information the sequential sweep
                would have at that point, never from a later-ordered family
                that happened to finish early (which could change which
                subset wins a tie).
        """
        bound: float = plan.heuristic_lower_bound
        for record in self.records:
            if record.lower_bound is None or record.lower_bound <= bound:
                continue
            if (
                before is not None
                and record.position is not None
                and record.position >= before
            ):
                continue
            # Bound transfer needs the cost-preserving (directed) relation.
            if self._embedding(plan, record.plan, directed=True) is not None:
                bound = record.lower_bound
        return bound

    # ------------------------------------------------------------------
    def incumbent_for(
        self,
        plan: FamilyPlan,
        gates: Sequence[Tuple[int, int]],
        table,
        bound: Optional[int],
    ) -> Optional[Tuple[List[Tuple[int, ...]], int]]:
        """A warm-start schedule for *plan*, transferred from a solved family.

        A schedule found on family *B* relabelled through an undirected
        embedding stays *placement-valid* on this family (constraint (2)
        accepts a coupled pair in either orientation); only its reversal
        cost changes, and :func:`repro.exact.sweep.schedule_cost` recomputes
        the exact objective against this family's edge directions.  The
        cheapest transferable schedule at or below *bound* is returned as
        ``(local mappings, objective)`` — a genuine feasible solution, so
        the descent starts directly below it (phases seeded, first model
        free) instead of descending from scratch.
        """
        best: Optional[Tuple[List[Tuple[int, ...]], int]] = None
        for record in self.records:
            if record.schedule is None:
                continue
            sigma = self._embedding(plan, record.plan, directed=False)
            if sigma is None:
                continue
            translated = translate_schedule(
                record.schedule, invert_permutation(sigma)
            )
            cost = schedule_cost(plan.sub_coupling, table, gates, translated)
            if cost is None:
                continue
            if bound is not None and cost > bound:
                continue
            if best is None or cost < best[1]:
                best = (translated, cost)
        if best is not None:
            self.models_transferred += 1
        return best

    # ------------------------------------------------------------------
    def import_into(self, plan: FamilyPlan, state: "_FamilyState") -> int:
        """Inject every transferable recorded clause into *state*'s session.

        Clauses flow from an edge-superset family (where they were learned)
        into this edge-subset family, remapped through the inverse of the
        embedding over the shared variable roles.
        """
        assert state.encoding is not None and state.session is not None
        check_imports = bool(os.environ.get("REPRO_CHECK_IMPORTS"))
        imported = 0
        for record in self.records:
            if not record.exported or record.shared_vars is None:
                continue
            # Clause transfer only needs hard-constraint satisfiability to
            # carry over, so the looser undirected relation applies.
            sigma = self._embedding(plan, record.plan, directed=False)
            if sigma is None:
                continue
            remap = encoding_variable_remap(
                record.shared_vars, state.encoding, invert_permutation(sigma)
            )
            if check_imports:
                for clause in record.exported:
                    mapped = [
                        remap[abs(l)] if l > 0 else -remap[abs(l)]
                        for l in clause
                        if abs(l) in remap
                    ]
                    if len(mapped) != len(clause):
                        continue
                    if not clause_is_implied(state.encoding.cnf, mapped):
                        raise AssertionError(
                            f"imported clause {clause} (mapped {mapped}) is "
                            f"not implied by the target family's formula"
                        )
            imported += state.session.import_clauses(
                record.exported, remap=remap
            )
        self.clauses_imported += imported
        return imported


class SATMapper:
    """Exact mapper using the paper's symbolic formulation and a SAT optimiser.

    Args:
        coupling: Target architecture.
        strategy: Permutation-restriction strategy (Section 4.2); defaults to
            permutations before every gate (the minimal formulation).
        use_subsets: Solve one instance per connected subset of ``n`` physical
            qubits instead of one instance over all ``m`` (Section 4.1).
        optimizer: Objective-search strategy from the optimizer registry
            (``"linear"``, ``"binary"``, ``"core"`` or any name registered
            via :func:`repro.sat.optimize.register_optimizer`); validated at
            construction time.
        optimizer_strategy: Backwards-compatible alias for *optimizer*
            (ignored when *optimizer* is given).
        time_limit: Optional wall-clock budget in seconds for the whole
            mapping call; when exhausted the best solution found so far is
            returned (not necessarily minimal) and the remaining subset
            instances are skipped.
        conflict_limit: Optional per-solver-call conflict budget.
        decompose_swaps: Emit SWAPs as their 7-gate decomposition (default).
        share_clauses: Share work across subset families: sibling families
            instantiate one cached encoding skeleton instead of re-running
            the Tseitin construction, and learned clauses cross family
            boundaries along edge embeddings (see the module docstring).
            Never changes the result — only how fast it is found.
        prune_families: Skip — without solving — subset families whose
            proven lower bound (structural, or transferred from a decided
            family they embed into) already meets the sweep incumbent.
            Never changes the proven minimum.

    Example:
        >>> from repro.arch import ibm_qx4
        >>> from repro.circuit import QuantumCircuit
        >>> circuit = QuantumCircuit(3)
        >>> circuit.cx(0, 1).cx(1, 2)
        >>> result = SATMapper(ibm_qx4()).map(circuit)
        >>> result.added_cost
        0
    """

    def __init__(
        self,
        coupling: CouplingMap,
        strategy: Optional[PermutationStrategy] = None,
        use_subsets: bool = False,
        optimizer: Optional[str] = None,
        optimizer_strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        decompose_swaps: bool = True,
        share_clauses: bool = True,
        prune_families: bool = True,
    ):
        self.coupling = coupling
        self.strategy = strategy if strategy is not None else AllGatesStrategy()
        self.use_subsets = use_subsets
        # Resolve (and thereby validate) the strategy name up front: a typo
        # should fail at construction, not after minutes of encoding work.
        self.optimizer_strategy = resolve_optimizer_name(
            optimizer if optimizer is not None else optimizer_strategy
        )
        self.time_limit = time_limit
        self.conflict_limit = conflict_limit
        self.decompose_swaps = decompose_swaps
        self.share_clauses = share_clauses
        self.prune_families = prune_families
        # Optional cooperative-cancellation token (see bind_control):
        # every solver this mapper creates registers itself on it, so the
        # owner can interrupt a running map() from another thread.
        self.control = None

    def bind_control(self, control) -> None:
        """Attach a :class:`~repro.sat.control.SolveControl` token.

        Every CDCL solver created by later :meth:`map`/:meth:`solve_subset`
        calls registers on *control*; ``control.cancel()`` then interrupts
        all of them at their next conflict boundary, and the sweep loop
        stops launching further family solves.  Cancellation behaves like
        an exhausted time budget: the best solution found so far (if any)
        is returned as non-optimal, otherwise :class:`SATMapperError` is
        raised.
        """
        self.control = control

    def _cancelled(self) -> bool:
        return self.control is not None and self.control.cancelled

    # ------------------------------------------------------------------
    # Instance preparation (shared with the batch pipeline)
    # ------------------------------------------------------------------
    @property
    def accepts_external_bound(self) -> bool:
        """Whether an externally derived upper bound is safe to assert.

        A bound taken from *any* valid mapping (a heuristic, a cached result
        on the same or a sub-architecture) is an upper bound on the **true**
        minimum.  Asserting it is only safe when this mapper's search space
        contains the true minimum — i.e. the unrestricted formulation over
        all physical qubits.  Restricted strategies and the subset sweep may
        have a higher restricted minimum, where an external bound could turn
        a solvable instance unsatisfiable.
        """
        return self.strategy.guarantees_minimality and not self.use_subsets

    @property
    def accepts_initial_model(self) -> bool:
        """Whether a cached schedule may seed the search as an incumbent model.

        Same condition as :attr:`accepts_external_bound` — the schedule's
        cost is asserted as an upper bound alongside the model, so both
        gates share one safety argument — plus the schedule must survive
        validation against this mapper's coupling map and permutation spots
        (see :meth:`map`).
        """
        return self.accepts_external_bound

    @property
    def accepts_artifacts(self) -> bool:
        """Whether a persisted solve-artifact cache may warm-start this mapper.

        Always true — and deliberately *not* tied to
        :attr:`accepts_external_bound`: artifact material is keyed by the
        encoding skeleton of each individual subset family (gates × n × m ×
        spots × undirected edges), so clauses, bounds and schedules apply
        *within* the family they were harvested from, restricted search
        space or not.  The global-bound safety argument that makes sweeps
        reject external bounds simply never arises.
        """
        return True

    def validate_schedule(
        self, circuit: QuantumCircuit, mappings: Sequence[Tuple[int, ...]]
    ) -> bool:
        """Whether *mappings* is a valid schedule for *circuit* on this device.

        See :func:`repro.exact.result.schedule_is_valid` (shared with the
        model-seeding bound providers).
        """
        return schedule_is_valid(circuit, mappings, self.coupling)

    def candidate_subsets(self, num_logical: int) -> List[Tuple[int, ...]]:
        """Physical-qubit subsets to try (Section 4.1)."""
        num_physical = self.coupling.num_qubits
        if not self.use_subsets or num_logical >= num_physical:
            return [tuple(range(num_physical))]
        return shared_connected_subsets(self.coupling, num_logical)

    def subset_family_groups(
        self, subsets: Sequence[Tuple[int, ...]]
    ) -> List[List[int]]:
        """Group subset indices by induced-subgraph structure.

        Two subsets fall into one family when their re-indexed sub-couplings
        have the same canonical key — their encodings are then identical, so
        one solve covers the whole family.  Groups are ordered by their first
        member and each group is ascending, which keeps the representative
        (the first member) aligned with the sequential sweep order.
        """
        groups: Dict[Tuple, List[int]] = {}
        order: List[Tuple] = []
        for index, subset in enumerate(subsets):
            key = self.coupling.subgraph(subset).canonical_key()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(index)
        return [groups[key] for key in order]

    def plan_families(
        self,
        subsets: Sequence[Tuple[int, ...]],
        gates: Sequence[Tuple[int, int]],
    ) -> List[FamilyPlan]:
        """Group subsets into families and fix the sweep's solving order.

        Families are sorted by ``(heuristic lower bound, canonical coupling
        key)`` — a *stable* sort, so the order is fully determined by the
        architecture and the circuit.  Densest sub-couplings (lowest
        structural bound) come first: they tend to hold the cheapest
        mappings, which establishes a tight incumbent early and lets the
        sparse tail be pruned without solving.  Sequential and parallel
        sweeps both follow this order, so they prune identically and
        benchmark numbers are reproducible.
        """
        plans: List[FamilyPlan] = []
        for group in self.subset_family_groups(subsets):
            sub_coupling = self.coupling.subgraph(subsets[group[0]])
            connected = sub_coupling.is_connected()
            plans.append(
                FamilyPlan(
                    indices=list(group),
                    key=sub_coupling.canonical_key(),
                    sub_coupling=sub_coupling,
                    heuristic_lower_bound=(
                        structural_lower_bound(sub_coupling, gates)
                        if connected else 0
                    ),
                    connected=connected,
                )
            )
        # Stable sort: ties keep the canonical keys' first-appearance order
        # over the (sorted) subset enumeration, which is itself a pure
        # function of the architecture — the overall order is reproducible
        # across runs, processes and the parallel fan-out.
        plans.sort(key=lambda plan: plan.heuristic_lower_bound)
        return plans

    def cnot_instance(
        self, circuit: QuantumCircuit
    ) -> Tuple[List[Tuple[int, int]], List[int]]:
        """The CNOT pair sequence of *circuit* and its permutation spots."""
        cnot_gates = circuit.cnot_gates()
        gates = [(gate.control, gate.target) for gate in cnot_gates]
        spots = self.strategy.spots(cnot_gates, self.coupling) if gates else []
        return gates, spots

    def _remaining_time(self, start: float) -> Optional[float]:
        """Seconds left of the overall budget; <= 0 means the budget is spent."""
        if self.time_limit is None:
            return None
        return self.time_limit - (time.monotonic() - start)

    # ------------------------------------------------------------------
    # Per-family solving
    # ------------------------------------------------------------------
    def _family_state(
        self,
        sub_coupling: CouplingMap,
        gates: Sequence[Tuple[int, int]],
        num_logical: int,
        spots: Sequence[int],
    ) -> _FamilyState:
        """Encode one subset family and open its persistent session."""
        table = shared_permutation_table(sub_coupling)
        encoding = build_encoding(
            list(gates), num_logical, sub_coupling,
            permutation_spots=list(spots),
            permutation_table=table,
            reuse_skeleton=self.share_clauses,
        )
        optimizer = OptimizingSolver(encoding.cnf, encoding.objective)
        session = optimizer.make_session()
        if self.control is not None:
            self.control.register(session.solver)
        return _FamilyState(
            encoding=encoding,
            optimizer=optimizer,
            session=session,
        )

    @staticmethod
    def _translate(
        local_mappings: Sequence[Tuple[int, ...]], subset: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        """Subset-relative physical indices back to device indices."""
        return [
            tuple(subset[physical] for physical in mapping)
            for mapping in local_mappings
        ]

    def _solve_family(
        self,
        state: _FamilyState,
        subset: Tuple[int, ...],
        time_limit: Optional[float],
        upper_bound: Optional[int],
        incumbent: Optional[Tuple[List[Tuple[int, ...]], int]] = None,
    ) -> SubsetOutcome:
        """Run the optimiser on the family's live session and record the outcome.

        *incumbent* is an optional ``(local mappings, objective)`` warm
        start: the schedule is translated into an ``x``-variable assignment
        that seeds the solver's phases and counts as the first feasible
        solution.  A schedule the encoding rejects (wrong shape, off-spot
        mapping change) is silently dropped — seeding is an optimisation,
        never a correctness requirement.
        """
        assert state.optimizer is not None and state.encoding is not None
        initial_model: Optional[Dict[int, bool]] = None
        initial_objective: Optional[int] = None
        if incumbent is not None:
            try:
                initial_model = state.encoding.assignment_from_schedule(
                    incumbent[0]
                )
                initial_objective = incumbent[1]
            except EncodingError:
                initial_model = None
                initial_objective = None
        outcome: OptimizationResult = state.optimizer.minimize(
            strategy=self.optimizer_strategy,
            time_limit=time_limit,
            conflict_limit=self.conflict_limit,
            upper_bound=upper_bound,
            session=state.session,
            initial_model=initial_model,
            initial_objective=initial_objective,
        )
        state.status = outcome.status
        state.bound_used = upper_bound
        if outcome.is_satisfiable:
            state.objective = outcome.objective
            state.local_mappings = state.encoding.extract_schedule(outcome.model)
            mappings = self._translate(state.local_mappings, subset)
        else:
            state.objective = None
            state.local_mappings = None
            mappings = None
        return SubsetOutcome(
            subset=tuple(subset),
            status=outcome.status,
            objective=outcome.objective if outcome.is_satisfiable else None,
            mappings=mappings,
            iterations=outcome.iterations,
            conflicts=outcome.conflicts,
            variables=state.encoding.num_variables,
            clauses=state.encoding.num_clauses,
            statistics=dict(outcome.statistics),
            core_labels=outcome.core_labels,
        )

    @staticmethod
    def proven_family_lower_bound(
        state: _FamilyState, outcome: SubsetOutcome
    ) -> Optional[float]:
        """Lower bound on the family's true optimum proven by this solve.

        * ``optimal`` — the optimum itself is known exactly.
        * ``unsat`` under bound ``b`` — nothing costs at most ``b``, so the
          optimum is at least ``b + 1`` (infinite when no bound was active:
          the instance is unsatisfiable outright).
        * core-guided runs additionally prove ``core_lower_bound`` from
          disjoint UNSAT cores, valid even when the descent did not finish
          (the core strategy never commits bounds, so its cores are
          consequences of the formula alone).
        """
        bound: Optional[float] = None
        if outcome.status == "optimal":
            bound = outcome.objective
        elif outcome.status == "unsat":
            bound = (
                float("inf") if state.bound_used is None
                else state.bound_used + 1
            )
        core_bound = outcome.statistics.get("core_lower_bound", 0)
        if core_bound and (bound is None or core_bound > bound):
            bound = core_bound
        return bound

    def _finish_family(
        self,
        context: SweepContext,
        plan: FamilyPlan,
        state: _FamilyState,
        outcome: SubsetOutcome,
    ) -> None:
        """Harvest shareable clauses and proven bounds, then free the solver.

        Must run while the family's session is still alive; conclusive
        (``optimal``/``unsat``) families drop their solver afterwards —
        they only ever serve mirrored outcomes from the recorded fields.
        """
        exported: List[Tuple[int, ...]] = []
        if (
            self.share_clauses
            and state.session is not None
            and state.encoding is not None
        ):
            exported = state.session.export_learned(
                max_size=SHARE_MAX_CLAUSE_SIZE,
                var_ok=state.encoding.is_shared_variable,
            )
        context.note_family(
            plan,
            lower_bound=self.proven_family_lower_bound(state, outcome),
            shared_vars=(
                _SharedVars.of(state.encoding)
                if state.encoding is not None else None
            ),
            exported=exported,
            schedule=(
                list(state.local_mappings)
                if state.local_mappings is not None else None
            ),
            schedule_objective=state.objective,
        )
        if outcome.status in ("optimal", "unsat"):
            # Conclusive families are never re-solved, only mirrored.
            state.release_solver()

    def _reuse_family_outcome(
        self,
        state: _FamilyState,
        subset: Tuple[int, ...],
        bound: Optional[int],
    ) -> Optional[SubsetOutcome]:
        """A mirrored outcome for *subset* when the family is already decided.

        Returns ``None`` when the family's last outcome was inconclusive
        (``"satisfiable"``/``"unknown"`` from an exhausted budget) — the
        caller then re-solves on the family's live session.  Bounds only
        tighten over a sweep, so a conclusive earlier outcome stays valid:
        an optimum above the current bound (and any earlier ``"unsat"``)
        reads as unsatisfiable-within-bound.
        """
        if state.status == "optimal":
            assert state.objective is not None and state.local_mappings is not None
            if bound is None or state.objective <= bound:
                return SubsetOutcome(
                    subset=tuple(subset),
                    status="optimal",
                    objective=state.objective,
                    mappings=self._translate(state.local_mappings, subset),
                    reused=True,
                )
            return SubsetOutcome(subset=tuple(subset), status="unsat", reused=True)
        if state.status == "unsat":
            return SubsetOutcome(subset=tuple(subset), status="unsat", reused=True)
        return None

    @staticmethod
    def mirror_outcome(
        outcome: SubsetOutcome, member: Sequence[int]
    ) -> SubsetOutcome:
        """Re-express a solved outcome for another subset of the same family.

        The two encodings are identical, so the status and objective carry
        over as-is; only the translation back to device indices differs.
        """
        mappings = None
        if outcome.mappings is not None:
            position = {qubit: i for i, qubit in enumerate(outcome.subset)}
            member = tuple(member)
            mappings = [
                tuple(member[position[physical]] for physical in mapping)
                for mapping in outcome.mappings
            ]
        return SubsetOutcome(
            subset=tuple(member),
            status=outcome.status,
            objective=outcome.objective,
            mappings=mappings,
            reused=True,
        )

    # ------------------------------------------------------------------
    # Per-subset solving (shared with the batch pipeline)
    # ------------------------------------------------------------------
    def solve_subset(
        self,
        gates: Sequence[Tuple[int, int]],
        num_logical: int,
        spots: Sequence[int],
        subset: Tuple[int, ...],
        time_limit: Optional[float] = None,
        upper_bound: Optional[int] = None,
        incumbent: Optional[Tuple[List[Tuple[int, ...]], int]] = None,
        artifacts=None,
    ) -> SubsetOutcome:
        """Solve the mapping instance restricted to one physical-qubit subset.

        Args:
            gates: CNOT sequence as ``(control, target)`` logical pairs.
            num_logical: Number of logical qubits of the circuit.
            spots: Permutation spots (from :meth:`cnot_instance`).
            subset: Device indices of the physical qubits to map onto.
            time_limit: Wall-clock budget for this instance.
            upper_bound: Inclusive objective bound *assumed* on the session
                before the first solve (heuristic seeding / incumbent
                tightening); a ``"unsat"`` outcome then only means "nothing
                at most this cheap in this subset".
            incumbent: Optional ``(subset-local mappings, objective)`` warm
                start — the parallel fan-out's cross-family model transfer,
                resolved by the parent from already-finished families.
            artifacts: Optional picklable artifact-cache handle (see
                :class:`repro.service.store.ArtifactCache`): the family's
                persisted clauses seed the fresh session, its persisted
                schedule competes with *incumbent*, and this solve's harvest
                is merged back after the run.  Hit-rate counters land in the
                outcome's ``statistics``.

        Returns:
            The :class:`SubsetOutcome` with mappings translated back to
            device indices.
        """
        sub_coupling = self.coupling.subgraph(subset)
        if not sub_coupling.is_connected():
            return SubsetOutcome(subset=tuple(subset), status="unsat")
        state = self._family_state(sub_coupling, gates, num_logical, spots)
        context: Optional[SweepContext] = None
        if artifacts is not None:
            context = SweepContext(
                gates=gates, num_logical=num_logical, spots=spots,
                artifacts=artifacts,
            )
            assert state.encoding is not None
            context.artifact_import_into(sub_coupling, state)
            transfer = context.artifact_incumbent(
                sub_coupling, state.encoding.permutation_table, bound=upper_bound
            )
            if transfer is not None and (
                incumbent is None or transfer[1] < incumbent[1]
            ):
                incumbent = transfer
                context.artifact_models_used += 1
        outcome = self._solve_family(
            state, tuple(subset), time_limit, upper_bound, incumbent=incumbent
        )
        if context is not None:
            # Harvest this family's clauses/bound/schedule into the shared
            # store — the cross-process counterpart of the sequential
            # sweep's end-of-run save (each worker writes its own family).
            plan = FamilyPlan(
                indices=[0],
                key=sub_coupling.canonical_key(),
                sub_coupling=sub_coupling,
                heuristic_lower_bound=0,
                connected=True,
            )
            self._finish_family(context, plan, state, outcome)
            context.save_artifacts()
            outcome.statistics.update(context.artifact_statistics())
            if context.artifact_notes:
                outcome.statistics["artifact_notes"] = list(
                    context.artifact_notes
                )
        return outcome

    # ------------------------------------------------------------------
    # Result assembly (shared with the batch pipeline)
    # ------------------------------------------------------------------
    @staticmethod
    def select_best_outcome(
        outcomes: Sequence[SubsetOutcome],
    ) -> Optional[SubsetOutcome]:
        """The first outcome (in the given order) with the lowest objective.

        Keeping the *first* of equally cheap outcomes makes the parallel
        subset fan-out deterministic and identical to the sequential loop,
        which only replaces the incumbent on a strict improvement.
        """
        best: Optional[SubsetOutcome] = None
        for outcome in outcomes:
            if not outcome.is_satisfiable:
                continue
            if best is None or outcome.objective < best.objective:
                best = outcome
        return best

    def build_mapping_result(
        self,
        circuit: QuantumCircuit,
        best: SubsetOutcome,
        outcomes: Sequence[SubsetOutcome],
        spots: Sequence[int],
        subsets_total: int,
        runtime_seconds: float,
        budget_exhausted: bool = False,
        upper_bound: Optional[int] = None,
        extra_statistics: Optional[Dict[str, object]] = None,
    ) -> MappingResult:
        """Assemble the :class:`MappingResult` from per-subset outcomes."""
        num_logical = circuit.num_qubits
        schedule = MappingSchedule(
            num_logical=num_logical,
            num_physical=self.coupling.num_qubits,
            mappings=best.mappings,
            initial_mapping=best.mappings[0],
        )
        # Minimality is only guaranteed for the unrestricted formulation over
        # all physical qubits, with the optimiser having proven (bounded)
        # optimality and the whole budget having sufficed.  A seeded upper
        # bound does not void the claim: a solution at or below the seed was
        # found, so the bounded minimum equals the true minimum.
        proven_minimal = (
            best.is_optimal
            and self.strategy.guarantees_minimality
            and not self.use_subsets
            and not budget_exhausted
        )
        session_keys = (
            "solve_calls",
            "assumption_solves",
            "bound_nodes_created",
            "bound_nodes_reused",
            "bound_clauses_added",
            "learned_clauses_retained",
        )
        # Strategy-level counters (unprefixed): descent progress, model
        # warm starts and core-guided bookkeeping, summed over the solved
        # instances.  ``core_lower_bound`` is NOT summable — each instance's
        # value bounds only its own sub-problem — so the winning instance's
        # bound is reported instead (below).
        strategy_keys = (
            "descent_iterations",
            "model_seeded",
            "cores_found",
            "core_literals_relaxed",
        )
        statistics = {
            "subsets_total": subsets_total,
            "subsets_tried": len(outcomes),
            "subsets_skipped": subsets_total - len(outcomes),
            "subsets_solved": sum(
                1 for o in outcomes if not o.reused and not o.pruned
            ),
            "subsets_pruned": sum(1 for o in outcomes if o.pruned),
            "family_reuses": sum(1 for o in outcomes if o.reused),
            "solver_conflicts": sum(o.conflicts for o in outcomes),
            "solver_iterations": sum(o.iterations for o in outcomes),
            "solver_propagations": sum(
                o.statistics.get("propagations", 0) for o in outcomes
            ),
            "encoding_variables": sum(o.variables for o in outcomes),
            "encoding_clauses": sum(o.clauses for o in outcomes),
            "budget_exhausted": budget_exhausted,
        }
        for key in session_keys:
            statistics[f"session_{key}"] = sum(
                o.statistics.get(key, 0) for o in outcomes
            )
        for key in strategy_keys:
            total = sum(o.statistics.get(key, 0) for o in outcomes)
            if total:
                statistics[key] = total
        core_lower_bound = best.statistics.get("core_lower_bound", 0)
        if core_lower_bound:
            statistics["core_lower_bound"] = core_lower_bound
        statistics["optimizer"] = self.optimizer_strategy
        # Backend provenance: which CDCL implementation (pure / compiled)
        # produced these counters.  Counters are bit-identical across
        # backends; wall-clock numbers are not, so perf records need this.
        statistics.update(solver_backend_provenance())
        if best.core_labels:
            statistics["final_core"] = list(best.core_labels)
        if upper_bound is not None:
            statistics["seeded_upper_bound"] = upper_bound
        if extra_statistics:
            statistics.update(extra_statistics)
        # Reconstruction needs SWAP sequences on the full device: the exact
        # table below 8 qubits, the polynomial routed synthesizer above.  A
        # routed reconstruction realises the schedule with upper-bound SWAP
        # sequences, so the result can no longer claim proven minimality.
        synthesizer = shared_synthesizer(self.coupling)
        if not synthesizer.optimal:
            statistics["routed_reconstruction"] = 1
        return build_result(
            circuit,
            schedule,
            self.coupling,
            engine="sat",
            strategy=self.strategy.name,
            objective=best.objective,
            optimal=proven_minimal and synthesizer.optimal,
            runtime_seconds=runtime_seconds,
            num_permutation_spots=len(spots),
            statistics=statistics,
            decompose_swaps=self.decompose_swaps,
            permutation_table=synthesizer,
        )

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: QuantumCircuit,
        upper_bound: Optional[int] = None,
        initial_model: Optional[Sequence[Tuple[int, ...]]] = None,
        initial_objective: Optional[int] = None,
        artifacts=None,
    ) -> MappingResult:
        """Map *circuit* to the architecture with minimal added cost.

        Args:
            circuit: The circuit to map.
            upper_bound: Optional inclusive bound on the objective, e.g. the
                added cost of a heuristic solution (portfolio seeding).  Only
                mappings at most this expensive are searched for; when none
                exists, :class:`SATMapperError` is raised even though the
                unbounded problem may be satisfiable.
            initial_model: Optional known-valid schedule (one device-indexed
                mapping per CNOT, e.g. from a cached
                :class:`~repro.exact.result.MappingResult`), used as the
                first incumbent: the solver's phases are seeded with it and
                the descent starts directly below *initial_objective* — a
                resubmission of an already-solved circuit then needs only
                the final optimality probe.  The schedule is validated
                against this mapper's coupling map and permutation spots
                first and silently dropped when it does not transfer; it is
                also ignored when :attr:`accepts_initial_model` is false
                (restricted search spaces).
            initial_objective: Added cost of *initial_model* (required with
                it).
            artifacts: Optional solve-artifact cache handle (see
                :class:`repro.service.store.ArtifactCache`).  Families
                warm-start from persisted clauses/bounds/schedules of
                structurally identical past jobs, and this run's harvest is
                merged back on completion.  Hit rates are reported under
                ``artifact_*`` statistics keys.  ``None`` (the default)
                solves cold — results never change either way, only the
                work needed to reach them.

        Raises:
            SATMapperError: If no valid mapping exists within the bound (or
                none was found within the time budget).
            ValueError: If the circuit does not fit on the device, or an
                initial model arrives without its objective.
        """
        start = time.monotonic()
        num_logical = circuit.num_qubits
        num_physical = self.coupling.num_qubits
        if num_logical > num_physical:
            raise ValueError(
                f"circuit has {num_logical} logical qubits but the device only "
                f"has {num_physical}"
            )
        if upper_bound is not None and upper_bound < 0:
            raise ValueError("upper_bound must be non-negative")
        if (initial_model is None) != (initial_objective is None):
            raise ValueError(
                "initial_model and initial_objective must be given together"
            )
        gates, spots = self.cnot_instance(circuit)

        incumbent: Optional[Tuple[List[Tuple[int, ...]], int]] = None
        if (
            initial_model is not None
            and self.accepts_initial_model
            and self.validate_schedule(circuit, list(initial_model))
        ):
            incumbent = ([tuple(m) for m in initial_model], initial_objective)

        if not gates:
            schedule = default_schedule(num_logical, self.coupling)
            return build_result(
                circuit, schedule, self.coupling,
                engine="sat", strategy=self.strategy.name,
                objective=0, optimal=True,
                runtime_seconds=time.monotonic() - start,
                num_permutation_spots=0,
                statistics={},
                decompose_swaps=self.decompose_swaps,
            )

        subsets = self.candidate_subsets(num_logical)
        plans = self.plan_families(subsets, gates)
        context = SweepContext(
            gates=gates,
            num_logical=num_logical,
            spots=spots,
            artifacts=artifacts if self.accepts_artifacts else None,
        )
        outcomes: List[SubsetOutcome] = []
        best: Optional[SubsetOutcome] = None
        bound = upper_bound
        budget_exhausted = False
        found_zero = False

        for plan in plans:
            if found_zero or budget_exhausted:
                break
            if not plan.connected:
                for index in plan.indices:
                    outcomes.append(
                        SubsetOutcome(subset=tuple(subsets[index]), status="unsat")
                    )
                continue
            remaining = self._remaining_time(start)
            if (remaining is not None and remaining <= 0) or self._cancelled():
                # Budget spent (or the job was cancelled): do not launch
                # further solver calls.  The best solution found so far (if
                # any) is returned as non-optimal.
                budget_exhausted = True
                break
            if self.prune_families and bound is not None:
                in_sweep = context.lower_bound_for(plan)
                proven = in_sweep
                persisted = context.artifact_lower_bound(plan.sub_coupling)
                if persisted is not None and persisted > proven:
                    proven = persisted
                if proven > bound:
                    if in_sweep <= bound:
                        # Only the persisted bound prunes this family — the
                        # in-sweep embedding bound alone would not have.
                        context.artifact_bounds_used += 1
                    # The family provably holds nothing at most `bound`:
                    # skip it — and all its members — without solving.  The
                    # bound may serve as an embedding source for later
                    # (sparser) families, so it is recorded.
                    context.families_pruned += 1
                    context.note_family(plan, lower_bound=proven)
                    for index in plan.indices:
                        outcomes.append(
                            SubsetOutcome(
                                subset=tuple(subsets[index]),
                                status="pruned",
                                pruned=True,
                                proven_lower_bound=proven,
                            )
                        )
                    continue
            state = self._family_state(plan.sub_coupling, gates, num_logical, spots)
            if self.share_clauses:
                context.import_into(plan, state)
            context.artifact_import_into(plan.sub_coupling, state)
            representative = tuple(subsets[plan.indices[0]])
            # The incumbent schedule is device-indexed, so it only seeds
            # the full-device instance (the only one that exists when
            # model seeding is allowed — see accepts_initial_model).
            seed = (
                incumbent
                if incumbent is not None
                and representative == tuple(range(num_physical))
                else None
            )
            if seed is None and self.share_clauses and state.encoding is not None:
                # Cross-family model transfer: replay the cheapest schedule
                # already found on an embeddable family as this family's
                # first incumbent (re-costed against these edge directions).
                # A transfer that lands above the sweep bound cannot serve
                # as an incumbent, but it is still a valid model of the hard
                # constraints — its x-assignment seeds the solver's phases
                # (a pure search hint), steering the bounded search into
                # known-feasible territory instead of a cold start.
                transfer = context.incumbent_for(
                    plan, gates, state.encoding.permutation_table, bound=None
                )
                if transfer is not None:
                    if bound is not None and transfer[1] > bound:
                        try:
                            state.session.seed_phases(
                                state.encoding.assignment_from_schedule(
                                    transfer[0]
                                )
                            )
                        except EncodingError:
                            pass
                    else:
                        seed = transfer
            if state.encoding is not None:
                # A persisted schedule from a structurally identical past job
                # competes with the in-sweep transfer: the cheaper one seeds.
                # Like the transfer, a persisted model above the sweep bound
                # still seeds the solver's phases (pure search hint).
                persisted_model = context.artifact_incumbent(
                    plan.sub_coupling, state.encoding.permutation_table,
                    bound=None,
                )
                if persisted_model is not None and (
                    seed is None or persisted_model[1] < seed[1]
                ):
                    if bound is not None and persisted_model[1] > bound:
                        try:
                            state.session.seed_phases(
                                state.encoding.assignment_from_schedule(
                                    persisted_model[0]
                                )
                            )
                            context.artifact_models_used += 1
                        except EncodingError:
                            pass
                    else:
                        seed = persisted_model
                        context.artifact_models_used += 1
            outcome = self._solve_family(
                state, representative, remaining, bound, incumbent=seed
            )
            self._finish_family(context, plan, state, outcome)
            outcomes.append(outcome)
            if outcome.is_satisfiable:
                if best is None or outcome.objective < best.objective:
                    best = outcome
                if best.objective == 0:
                    # A zero-added-cost mapping cannot be beaten by any
                    # other subset — stop the sweep early.
                    found_zero = True
                    continue
                # Tighten: later instances only interest us when strictly
                # cheaper than the incumbent (never above a seeded bound).
                incumbent_bound = best.objective - 1
                bound = (
                    incumbent_bound if bound is None
                    else min(bound, incumbent_bound)
                )
            # Mirror the outcome onto the family's other members (re-solving
            # on the live session only when an earlier attempt was
            # budget-limited and the bound has tightened since).
            for index in plan.indices[1:]:
                member = tuple(subsets[index])
                mirrored = self._reuse_family_outcome(state, member, bound)
                if mirrored is None:
                    remaining = self._remaining_time(start)
                    if (
                        remaining is not None and remaining <= 0
                    ) or self._cancelled():
                        budget_exhausted = True
                        break
                    mirrored = self._solve_family(state, member, remaining, bound)
                    self._finish_family(context, plan, state, mirrored)
                outcomes.append(mirrored)
                if not mirrored.is_satisfiable:
                    continue
                if best is None or mirrored.objective < best.objective:
                    best = mirrored
                if best.objective == 0:
                    found_zero = True
                    break
                incumbent_bound = best.objective - 1
                bound = (
                    incumbent_bound if bound is None
                    else min(bound, incumbent_bound)
                )

        # Persist this sweep's harvest before the no-solution check — proven
        # unsatisfiability (infinite bounds) is exactly what saves the next
        # structurally identical job the most work.
        context.save_artifacts()

        if best is None:
            raise SATMapperError.no_solution(budget_exhausted)

        result = self.build_mapping_result(
            circuit,
            best,
            outcomes,
            spots,
            subsets_total=len(subsets),
            runtime_seconds=time.monotonic() - start,
            budget_exhausted=budget_exhausted,
            upper_bound=upper_bound,
            extra_statistics={
                "families_total": len(plans),
                "families_pruned": context.families_pruned,
                "clauses_exported": context.clauses_exported,
                "clauses_imported": context.clauses_imported,
                "models_transferred": context.models_transferred,
                "clause_sharing": int(self.share_clauses),
                "family_pruning": int(self.prune_families),
                "artifact_seeding": int(context.artifacts is not None),
                **context.artifact_statistics(),
                **(
                    {"artifact_notes": list(context.artifact_notes)}
                    if context.artifact_notes else {}
                ),
            },
        )
        return result


__all__ = [
    "SATMapper",
    "SATMapperError",
    "SubsetOutcome",
    "FamilyPlan",
    "SweepContext",
    "SHARE_MAX_CLAUSE_SIZE",
]
