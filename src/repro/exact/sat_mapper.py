"""The paper's mapping method: symbolic formulation + reasoning engine.

:class:`SATMapper` builds the Boolean formulation of Section 3.2 (via
:mod:`repro.exact.encoding`), hands it to the SAT-based optimiser of
:mod:`repro.sat` and turns the minimal model into an architecture-compliant
circuit.  The performance improvements of Section 4 are available through

* ``use_subsets=True`` — map onto every connected subset of ``n`` physical
  qubits separately and keep the best result (Section 4.1),
* ``strategy=...`` — restrict the gates before which the mapping may change
  (Section 4.2).

The subset sweep is organised around two reuse layers:

* **Subset families** — two subsets whose induced sub-couplings re-index to
  the same directed edge set produce *identical* encodings, so they form one
  family that is encoded and solved once; the other members mirror the
  outcome (translated to their own device indices) without any solver call.
* **Solve sessions** — each family keeps one persistent
  :class:`~repro.sat.session.SolveSession`; objective bounds (the heuristic
  seed and the cross-subset incumbent) are *assumed* on the live solver, so
  learned clauses survive both the objective descent and any re-solve of the
  family under a tightened incumbent.

The subset loop is factored into :meth:`SATMapper.solve_subset` so that the
batch pipeline (:mod:`repro.pipeline.pipeline`) can fan the independent
family representatives out over a worker pool; both the sequential loop here
and the parallel one share :meth:`SATMapper.subset_family_groups`,
:meth:`SATMapper.mirror_outcome`, :meth:`SATMapper.select_best_outcome` and
:meth:`SATMapper.build_mapping_result`.  Per-architecture artefacts
(permutation tables, connected subsets) come from the process-wide caches in
:mod:`repro.arch.cache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.encoding import EncodingError, MappingEncoding, build_encoding
from repro.exact.reconstruction import build_result, default_schedule
from repro.exact.result import MappingResult, MappingSchedule, schedule_is_valid
from repro.exact.strategies import AllGatesStrategy, PermutationStrategy
from repro.arch.cache import shared_connected_subsets, shared_permutation_table
from repro.sat.optimize import (
    OptimizationResult,
    OptimizingSolver,
    resolve_optimizer_name,
)
from repro.sat.session import SolveSession


class SATMapperError(RuntimeError):
    """Raised when no valid mapping could be determined."""

    @classmethod
    def no_solution(cls, budget_exhausted: bool) -> "SATMapperError":
        """The error for a search that ended without any solution.

        Shared by the sequential subset loop and the parallel fan-out in
        :mod:`repro.pipeline.pipeline` so the two paths cannot drift apart.
        """
        if budget_exhausted:
            return cls("time budget exhausted before a first solution was found")
        return cls(
            "no valid mapping found (all subsets unsatisfiable within the "
            "objective bound, or the search was inconclusive)"
        )


@dataclass
class SubsetOutcome:
    """Result of solving one physical-qubit subset instance.

    Attributes:
        subset: Device indices of the physical qubits of this instance.
        status: Optimiser status (``"optimal"``, ``"satisfiable"``,
            ``"unsat"``, ``"unknown"``).
        objective: Best objective value found (``None`` when unsatisfiable).
        mappings: Per-CNOT logical-to-physical mappings, translated back to
            device indices (``None`` when unsatisfiable).
        iterations: Solver calls spent on this instance.
        conflicts: Solver conflicts spent on this instance.
        variables: CNF variables of the instance encoding.
        clauses: CNF clauses of the instance encoding.
        reused: True when the outcome was mirrored from another subset of
            the same family instead of being solved.
        statistics: Incremental-session counters of the solve (empty for
            mirrored outcomes).
        core_labels: Human-readable labels of the final UNSAT core of the
            optimiser run, when its strategy recorded one (empty for
            mirrored outcomes and strategies without assumption probes).
    """

    subset: Tuple[int, ...]
    status: str
    objective: Optional[int] = None
    mappings: Optional[List[Tuple[int, ...]]] = None
    iterations: int = 0
    conflicts: int = 0
    variables: int = 0
    clauses: int = 0
    reused: bool = False
    statistics: Dict[str, int] = field(default_factory=dict)
    core_labels: Tuple[str, ...] = ()

    @property
    def is_satisfiable(self) -> bool:
        """True when the instance yielded at least one model."""
        return self.status in ("optimal", "satisfiable")

    @property
    def is_optimal(self) -> bool:
        """True when the instance was solved to (bounded) optimality."""
        return self.status == "optimal"


@dataclass
class _FamilyState:
    """Live solving state of one subset family during a sweep.

    The encoding (and therefore the session) belongs to the *family*, not to
    a particular subset: outcomes carry subset-relative ("local") mappings
    here and are translated per member.
    """

    encoding: Optional[MappingEncoding]
    optimizer: Optional[OptimizingSolver]
    session: Optional[SolveSession]
    status: Optional[str] = None
    objective: Optional[int] = None
    local_mappings: Optional[List[Tuple[int, ...]]] = None
    bound_used: Optional[int] = None

    def release_solver(self) -> None:
        """Drop the live solver once the family is conclusively decided.

        A sweep can cover many families; keeping every CDCL solver (watch
        lists, learned clauses) alive until the end would grow memory with
        the family count, while a conclusive (``optimal``/``unsat``) family
        only ever serves mirrored outcomes from the recorded fields.
        """
        self.encoding = None
        self.optimizer = None
        self.session = None


class SATMapper:
    """Exact mapper using the paper's symbolic formulation and a SAT optimiser.

    Args:
        coupling: Target architecture.
        strategy: Permutation-restriction strategy (Section 4.2); defaults to
            permutations before every gate (the minimal formulation).
        use_subsets: Solve one instance per connected subset of ``n`` physical
            qubits instead of one instance over all ``m`` (Section 4.1).
        optimizer: Objective-search strategy from the optimizer registry
            (``"linear"``, ``"binary"``, ``"core"`` or any name registered
            via :func:`repro.sat.optimize.register_optimizer`); validated at
            construction time.
        optimizer_strategy: Backwards-compatible alias for *optimizer*
            (ignored when *optimizer* is given).
        time_limit: Optional wall-clock budget in seconds for the whole
            mapping call; when exhausted the best solution found so far is
            returned (not necessarily minimal) and the remaining subset
            instances are skipped.
        conflict_limit: Optional per-solver-call conflict budget.
        decompose_swaps: Emit SWAPs as their 7-gate decomposition (default).

    Example:
        >>> from repro.arch import ibm_qx4
        >>> from repro.circuit import QuantumCircuit
        >>> circuit = QuantumCircuit(3)
        >>> circuit.cx(0, 1).cx(1, 2)
        >>> result = SATMapper(ibm_qx4()).map(circuit)
        >>> result.added_cost
        0
    """

    def __init__(
        self,
        coupling: CouplingMap,
        strategy: Optional[PermutationStrategy] = None,
        use_subsets: bool = False,
        optimizer: Optional[str] = None,
        optimizer_strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        decompose_swaps: bool = True,
    ):
        self.coupling = coupling
        self.strategy = strategy if strategy is not None else AllGatesStrategy()
        self.use_subsets = use_subsets
        # Resolve (and thereby validate) the strategy name up front: a typo
        # should fail at construction, not after minutes of encoding work.
        self.optimizer_strategy = resolve_optimizer_name(
            optimizer if optimizer is not None else optimizer_strategy
        )
        self.time_limit = time_limit
        self.conflict_limit = conflict_limit
        self.decompose_swaps = decompose_swaps

    # ------------------------------------------------------------------
    # Instance preparation (shared with the batch pipeline)
    # ------------------------------------------------------------------
    @property
    def accepts_external_bound(self) -> bool:
        """Whether an externally derived upper bound is safe to assert.

        A bound taken from *any* valid mapping (a heuristic, a cached result
        on the same or a sub-architecture) is an upper bound on the **true**
        minimum.  Asserting it is only safe when this mapper's search space
        contains the true minimum — i.e. the unrestricted formulation over
        all physical qubits.  Restricted strategies and the subset sweep may
        have a higher restricted minimum, where an external bound could turn
        a solvable instance unsatisfiable.
        """
        return self.strategy.guarantees_minimality and not self.use_subsets

    @property
    def accepts_initial_model(self) -> bool:
        """Whether a cached schedule may seed the search as an incumbent model.

        Same condition as :attr:`accepts_external_bound` — the schedule's
        cost is asserted as an upper bound alongside the model, so both
        gates share one safety argument — plus the schedule must survive
        validation against this mapper's coupling map and permutation spots
        (see :meth:`map`).
        """
        return self.accepts_external_bound

    def validate_schedule(
        self, circuit: QuantumCircuit, mappings: Sequence[Tuple[int, ...]]
    ) -> bool:
        """Whether *mappings* is a valid schedule for *circuit* on this device.

        See :func:`repro.exact.result.schedule_is_valid` (shared with the
        model-seeding bound providers).
        """
        return schedule_is_valid(circuit, mappings, self.coupling)

    def candidate_subsets(self, num_logical: int) -> List[Tuple[int, ...]]:
        """Physical-qubit subsets to try (Section 4.1)."""
        num_physical = self.coupling.num_qubits
        if not self.use_subsets or num_logical >= num_physical:
            return [tuple(range(num_physical))]
        return shared_connected_subsets(self.coupling, num_logical)

    def subset_family_groups(
        self, subsets: Sequence[Tuple[int, ...]]
    ) -> List[List[int]]:
        """Group subset indices by induced-subgraph structure.

        Two subsets fall into one family when their re-indexed sub-couplings
        have the same canonical key — their encodings are then identical, so
        one solve covers the whole family.  Groups are ordered by their first
        member and each group is ascending, which keeps the representative
        (the first member) aligned with the sequential sweep order.
        """
        groups: Dict[Tuple, List[int]] = {}
        order: List[Tuple] = []
        for index, subset in enumerate(subsets):
            key = self.coupling.subgraph(subset).canonical_key()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(index)
        return [groups[key] for key in order]

    def cnot_instance(
        self, circuit: QuantumCircuit
    ) -> Tuple[List[Tuple[int, int]], List[int]]:
        """The CNOT pair sequence of *circuit* and its permutation spots."""
        cnot_gates = circuit.cnot_gates()
        gates = [(gate.control, gate.target) for gate in cnot_gates]
        spots = self.strategy.spots(cnot_gates, self.coupling) if gates else []
        return gates, spots

    def _remaining_time(self, start: float) -> Optional[float]:
        """Seconds left of the overall budget; <= 0 means the budget is spent."""
        if self.time_limit is None:
            return None
        return self.time_limit - (time.monotonic() - start)

    # ------------------------------------------------------------------
    # Per-family solving
    # ------------------------------------------------------------------
    def _family_state(
        self,
        sub_coupling: CouplingMap,
        gates: Sequence[Tuple[int, int]],
        num_logical: int,
        spots: Sequence[int],
    ) -> _FamilyState:
        """Encode one subset family and open its persistent session."""
        table = shared_permutation_table(sub_coupling)
        encoding = build_encoding(
            list(gates), num_logical, sub_coupling,
            permutation_spots=list(spots),
            permutation_table=table,
        )
        optimizer = OptimizingSolver(encoding.cnf, encoding.objective)
        return _FamilyState(
            encoding=encoding,
            optimizer=optimizer,
            session=optimizer.make_session(),
        )

    @staticmethod
    def _translate(
        local_mappings: Sequence[Tuple[int, ...]], subset: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        """Subset-relative physical indices back to device indices."""
        return [
            tuple(subset[physical] for physical in mapping)
            for mapping in local_mappings
        ]

    def _solve_family(
        self,
        state: _FamilyState,
        subset: Tuple[int, ...],
        time_limit: Optional[float],
        upper_bound: Optional[int],
        incumbent: Optional[Tuple[List[Tuple[int, ...]], int]] = None,
    ) -> SubsetOutcome:
        """Run the optimiser on the family's live session and record the outcome.

        *incumbent* is an optional ``(local mappings, objective)`` warm
        start: the schedule is translated into an ``x``-variable assignment
        that seeds the solver's phases and counts as the first feasible
        solution.  A schedule the encoding rejects (wrong shape, off-spot
        mapping change) is silently dropped — seeding is an optimisation,
        never a correctness requirement.
        """
        assert state.optimizer is not None and state.encoding is not None
        initial_model: Optional[Dict[int, bool]] = None
        initial_objective: Optional[int] = None
        if incumbent is not None:
            try:
                initial_model = state.encoding.assignment_from_schedule(
                    incumbent[0]
                )
                initial_objective = incumbent[1]
            except EncodingError:
                initial_model = None
                initial_objective = None
        outcome: OptimizationResult = state.optimizer.minimize(
            strategy=self.optimizer_strategy,
            time_limit=time_limit,
            conflict_limit=self.conflict_limit,
            upper_bound=upper_bound,
            session=state.session,
            initial_model=initial_model,
            initial_objective=initial_objective,
        )
        state.status = outcome.status
        state.bound_used = upper_bound
        if outcome.is_satisfiable:
            state.objective = outcome.objective
            state.local_mappings = state.encoding.extract_schedule(outcome.model)
            mappings = self._translate(state.local_mappings, subset)
        else:
            state.objective = None
            state.local_mappings = None
            mappings = None
        result = SubsetOutcome(
            subset=tuple(subset),
            status=outcome.status,
            objective=outcome.objective if outcome.is_satisfiable else None,
            mappings=mappings,
            iterations=outcome.iterations,
            conflicts=outcome.conflicts,
            variables=state.encoding.num_variables,
            clauses=state.encoding.num_clauses,
            statistics=dict(outcome.statistics),
            core_labels=outcome.core_labels,
        )
        if outcome.status in ("optimal", "unsat"):
            # Conclusive families are never re-solved, only mirrored.
            state.release_solver()
        return result

    def _reuse_family_outcome(
        self,
        state: _FamilyState,
        subset: Tuple[int, ...],
        bound: Optional[int],
    ) -> Optional[SubsetOutcome]:
        """A mirrored outcome for *subset* when the family is already decided.

        Returns ``None`` when the family's last outcome was inconclusive
        (``"satisfiable"``/``"unknown"`` from an exhausted budget) — the
        caller then re-solves on the family's live session.  Bounds only
        tighten over a sweep, so a conclusive earlier outcome stays valid:
        an optimum above the current bound (and any earlier ``"unsat"``)
        reads as unsatisfiable-within-bound.
        """
        if state.status == "optimal":
            assert state.objective is not None and state.local_mappings is not None
            if bound is None or state.objective <= bound:
                return SubsetOutcome(
                    subset=tuple(subset),
                    status="optimal",
                    objective=state.objective,
                    mappings=self._translate(state.local_mappings, subset),
                    reused=True,
                )
            return SubsetOutcome(subset=tuple(subset), status="unsat", reused=True)
        if state.status == "unsat":
            return SubsetOutcome(subset=tuple(subset), status="unsat", reused=True)
        return None

    @staticmethod
    def mirror_outcome(
        outcome: SubsetOutcome, member: Sequence[int]
    ) -> SubsetOutcome:
        """Re-express a solved outcome for another subset of the same family.

        The two encodings are identical, so the status and objective carry
        over as-is; only the translation back to device indices differs.
        """
        mappings = None
        if outcome.mappings is not None:
            position = {qubit: i for i, qubit in enumerate(outcome.subset)}
            member = tuple(member)
            mappings = [
                tuple(member[position[physical]] for physical in mapping)
                for mapping in outcome.mappings
            ]
        return SubsetOutcome(
            subset=tuple(member),
            status=outcome.status,
            objective=outcome.objective,
            mappings=mappings,
            reused=True,
        )

    # ------------------------------------------------------------------
    # Per-subset solving (shared with the batch pipeline)
    # ------------------------------------------------------------------
    def solve_subset(
        self,
        gates: Sequence[Tuple[int, int]],
        num_logical: int,
        spots: Sequence[int],
        subset: Tuple[int, ...],
        time_limit: Optional[float] = None,
        upper_bound: Optional[int] = None,
    ) -> SubsetOutcome:
        """Solve the mapping instance restricted to one physical-qubit subset.

        Args:
            gates: CNOT sequence as ``(control, target)`` logical pairs.
            num_logical: Number of logical qubits of the circuit.
            spots: Permutation spots (from :meth:`cnot_instance`).
            subset: Device indices of the physical qubits to map onto.
            time_limit: Wall-clock budget for this instance.
            upper_bound: Inclusive objective bound *assumed* on the session
                before the first solve (heuristic seeding / incumbent
                tightening); a ``"unsat"`` outcome then only means "nothing
                at most this cheap in this subset".

        Returns:
            The :class:`SubsetOutcome` with mappings translated back to
            device indices.
        """
        sub_coupling = self.coupling.subgraph(subset)
        if not sub_coupling.is_connected():
            return SubsetOutcome(subset=tuple(subset), status="unsat")
        state = self._family_state(sub_coupling, gates, num_logical, spots)
        return self._solve_family(state, tuple(subset), time_limit, upper_bound)

    # ------------------------------------------------------------------
    # Result assembly (shared with the batch pipeline)
    # ------------------------------------------------------------------
    @staticmethod
    def select_best_outcome(
        outcomes: Sequence[SubsetOutcome],
    ) -> Optional[SubsetOutcome]:
        """The first outcome (in the given order) with the lowest objective.

        Keeping the *first* of equally cheap outcomes makes the parallel
        subset fan-out deterministic and identical to the sequential loop,
        which only replaces the incumbent on a strict improvement.
        """
        best: Optional[SubsetOutcome] = None
        for outcome in outcomes:
            if not outcome.is_satisfiable:
                continue
            if best is None or outcome.objective < best.objective:
                best = outcome
        return best

    def build_mapping_result(
        self,
        circuit: QuantumCircuit,
        best: SubsetOutcome,
        outcomes: Sequence[SubsetOutcome],
        spots: Sequence[int],
        subsets_total: int,
        runtime_seconds: float,
        budget_exhausted: bool = False,
        upper_bound: Optional[int] = None,
    ) -> MappingResult:
        """Assemble the :class:`MappingResult` from per-subset outcomes."""
        num_logical = circuit.num_qubits
        schedule = MappingSchedule(
            num_logical=num_logical,
            num_physical=self.coupling.num_qubits,
            mappings=best.mappings,
            initial_mapping=best.mappings[0],
        )
        # Minimality is only guaranteed for the unrestricted formulation over
        # all physical qubits, with the optimiser having proven (bounded)
        # optimality and the whole budget having sufficed.  A seeded upper
        # bound does not void the claim: a solution at or below the seed was
        # found, so the bounded minimum equals the true minimum.
        proven_minimal = (
            best.is_optimal
            and self.strategy.guarantees_minimality
            and not self.use_subsets
            and not budget_exhausted
        )
        session_keys = (
            "solve_calls",
            "assumption_solves",
            "bound_nodes_created",
            "bound_nodes_reused",
            "bound_clauses_added",
            "learned_clauses_retained",
        )
        # Strategy-level counters (unprefixed): descent progress, model
        # warm starts and core-guided bookkeeping, summed over the solved
        # instances.  ``core_lower_bound`` is NOT summable — each instance's
        # value bounds only its own sub-problem — so the winning instance's
        # bound is reported instead (below).
        strategy_keys = (
            "descent_iterations",
            "model_seeded",
            "cores_found",
            "core_literals_relaxed",
        )
        statistics = {
            "subsets_total": subsets_total,
            "subsets_tried": len(outcomes),
            "subsets_skipped": subsets_total - len(outcomes),
            "subsets_solved": sum(1 for o in outcomes if not o.reused),
            "family_reuses": sum(1 for o in outcomes if o.reused),
            "solver_conflicts": sum(o.conflicts for o in outcomes),
            "solver_iterations": sum(o.iterations for o in outcomes),
            "encoding_variables": sum(o.variables for o in outcomes),
            "encoding_clauses": sum(o.clauses for o in outcomes),
            "budget_exhausted": budget_exhausted,
        }
        for key in session_keys:
            statistics[f"session_{key}"] = sum(
                o.statistics.get(key, 0) for o in outcomes
            )
        for key in strategy_keys:
            total = sum(o.statistics.get(key, 0) for o in outcomes)
            if total:
                statistics[key] = total
        core_lower_bound = best.statistics.get("core_lower_bound", 0)
        if core_lower_bound:
            statistics["core_lower_bound"] = core_lower_bound
        statistics["optimizer"] = self.optimizer_strategy
        if best.core_labels:
            statistics["final_core"] = list(best.core_labels)
        if upper_bound is not None:
            statistics["seeded_upper_bound"] = upper_bound
        # Reconstruction needs SWAP sequences on the full device; reuse the
        # process-wide table when the device is small enough to enumerate
        # (build_result's lazy fallback applies the same size guard, and only
        # when a swap sequence is actually required).
        table = (
            shared_permutation_table(self.coupling)
            if self.coupling.num_qubits <= 8 else None
        )
        return build_result(
            circuit,
            schedule,
            self.coupling,
            engine="sat",
            strategy=self.strategy.name,
            objective=best.objective,
            optimal=proven_minimal,
            runtime_seconds=runtime_seconds,
            num_permutation_spots=len(spots),
            statistics=statistics,
            decompose_swaps=self.decompose_swaps,
            permutation_table=table,
        )

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: QuantumCircuit,
        upper_bound: Optional[int] = None,
        initial_model: Optional[Sequence[Tuple[int, ...]]] = None,
        initial_objective: Optional[int] = None,
    ) -> MappingResult:
        """Map *circuit* to the architecture with minimal added cost.

        Args:
            circuit: The circuit to map.
            upper_bound: Optional inclusive bound on the objective, e.g. the
                added cost of a heuristic solution (portfolio seeding).  Only
                mappings at most this expensive are searched for; when none
                exists, :class:`SATMapperError` is raised even though the
                unbounded problem may be satisfiable.
            initial_model: Optional known-valid schedule (one device-indexed
                mapping per CNOT, e.g. from a cached
                :class:`~repro.exact.result.MappingResult`), used as the
                first incumbent: the solver's phases are seeded with it and
                the descent starts directly below *initial_objective* — a
                resubmission of an already-solved circuit then needs only
                the final optimality probe.  The schedule is validated
                against this mapper's coupling map and permutation spots
                first and silently dropped when it does not transfer; it is
                also ignored when :attr:`accepts_initial_model` is false
                (restricted search spaces).
            initial_objective: Added cost of *initial_model* (required with
                it).

        Raises:
            SATMapperError: If no valid mapping exists within the bound (or
                none was found within the time budget).
            ValueError: If the circuit does not fit on the device, or an
                initial model arrives without its objective.
        """
        start = time.monotonic()
        num_logical = circuit.num_qubits
        num_physical = self.coupling.num_qubits
        if num_logical > num_physical:
            raise ValueError(
                f"circuit has {num_logical} logical qubits but the device only "
                f"has {num_physical}"
            )
        if upper_bound is not None and upper_bound < 0:
            raise ValueError("upper_bound must be non-negative")
        if (initial_model is None) != (initial_objective is None):
            raise ValueError(
                "initial_model and initial_objective must be given together"
            )
        gates, spots = self.cnot_instance(circuit)

        incumbent: Optional[Tuple[List[Tuple[int, ...]], int]] = None
        if (
            initial_model is not None
            and self.accepts_initial_model
            and self.validate_schedule(circuit, list(initial_model))
        ):
            incumbent = ([tuple(m) for m in initial_model], initial_objective)

        if not gates:
            schedule = default_schedule(num_logical, self.coupling)
            return build_result(
                circuit, schedule, self.coupling,
                engine="sat", strategy=self.strategy.name,
                objective=0, optimal=True,
                runtime_seconds=time.monotonic() - start,
                num_permutation_spots=0,
                statistics={},
                decompose_swaps=self.decompose_swaps,
            )

        subsets = self.candidate_subsets(num_logical)
        outcomes: List[SubsetOutcome] = []
        families: Dict[Tuple, _FamilyState] = {}
        best: Optional[SubsetOutcome] = None
        bound = upper_bound
        budget_exhausted = False

        for subset in subsets:
            remaining = self._remaining_time(start)
            if remaining is not None and remaining <= 0:
                # Budget spent: do not launch further solver calls.  The best
                # solution found so far (if any) is returned as non-optimal.
                budget_exhausted = True
                break
            sub_coupling = self.coupling.subgraph(subset)
            if not sub_coupling.is_connected():
                outcomes.append(SubsetOutcome(subset=tuple(subset), status="unsat"))
                continue
            key = sub_coupling.canonical_key()
            state = families.get(key)
            if state is None:
                state = self._family_state(sub_coupling, gates, num_logical, spots)
                families[key] = state
                # The incumbent schedule is device-indexed, so it only seeds
                # the full-device instance (the only one that exists when
                # model seeding is allowed — see accepts_initial_model).
                seed = (
                    incumbent
                    if incumbent is not None
                    and tuple(subset) == tuple(range(num_physical))
                    else None
                )
                outcome = self._solve_family(
                    state, tuple(subset), remaining, bound, incumbent=seed
                )
            else:
                outcome = self._reuse_family_outcome(state, tuple(subset), bound)
                if outcome is None:
                    # Earlier attempt was budget-limited: re-minimise on the
                    # family's live session (learned clauses retained) under
                    # the current incumbent bound.
                    outcome = self._solve_family(
                        state, tuple(subset), remaining, bound
                    )
            outcomes.append(outcome)
            if not outcome.is_satisfiable:
                continue
            if best is None or outcome.objective < best.objective:
                best = outcome
            if best.objective == 0:
                # A zero-added-cost mapping cannot be beaten by any other
                # subset — stop the loop early.
                break
            # Tighten: later subsets only interest us when strictly cheaper
            # than the incumbent (and never above a seeded upper bound).
            incumbent_bound = best.objective - 1
            bound = incumbent_bound if bound is None else min(bound, incumbent_bound)

        if best is None:
            raise SATMapperError.no_solution(budget_exhausted)

        result = self.build_mapping_result(
            circuit,
            best,
            outcomes,
            spots,
            subsets_total=len(subsets),
            runtime_seconds=time.monotonic() - start,
            budget_exhausted=budget_exhausted,
            upper_bound=upper_bound,
        )
        return result


__all__ = ["SATMapper", "SATMapperError", "SubsetOutcome"]
