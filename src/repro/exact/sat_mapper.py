"""The paper's mapping method: symbolic formulation + reasoning engine.

:class:`SATMapper` builds the Boolean formulation of Section 3.2 (via
:mod:`repro.exact.encoding`), hands it to the SAT-based optimiser of
:mod:`repro.sat` and turns the minimal model into an architecture-compliant
circuit.  The performance improvements of Section 4 are available through

* ``use_subsets=True`` — map onto every connected subset of ``n`` physical
  qubits separately and keep the best result (Section 4.1),
* ``strategy=...`` — restrict the gates before which the mapping may change
  (Section 4.2).

The subset loop is factored into :meth:`SATMapper.solve_subset` so that the
batch pipeline (:mod:`repro.pipeline.pipeline`) can fan the independent
subset instances out over a worker pool; both the sequential loop here and
the parallel one share :meth:`SATMapper.select_best_outcome` and
:meth:`SATMapper.build_mapping_result`.  Per-architecture artefacts
(permutation tables, connected subsets) come from the process-wide caches in
:mod:`repro.arch.cache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.encoding import build_encoding
from repro.exact.reconstruction import build_result, default_schedule
from repro.exact.result import MappingResult, MappingSchedule
from repro.exact.strategies import AllGatesStrategy, PermutationStrategy
from repro.arch.cache import shared_connected_subsets, shared_permutation_table
from repro.sat.optimize import OptimizationResult, OptimizingSolver


class SATMapperError(RuntimeError):
    """Raised when no valid mapping could be determined."""

    @classmethod
    def no_solution(cls, budget_exhausted: bool) -> "SATMapperError":
        """The error for a search that ended without any solution.

        Shared by the sequential subset loop and the parallel fan-out in
        :mod:`repro.pipeline.pipeline` so the two paths cannot drift apart.
        """
        if budget_exhausted:
            return cls("time budget exhausted before a first solution was found")
        return cls(
            "no valid mapping found (all subsets unsatisfiable within the "
            "objective bound, or the search was inconclusive)"
        )


@dataclass
class SubsetOutcome:
    """Result of solving one physical-qubit subset instance.

    Attributes:
        subset: Device indices of the physical qubits of this instance.
        status: Optimiser status (``"optimal"``, ``"satisfiable"``,
            ``"unsat"``, ``"unknown"``).
        objective: Best objective value found (``None`` when unsatisfiable).
        mappings: Per-CNOT logical-to-physical mappings, translated back to
            device indices (``None`` when unsatisfiable).
        iterations: Solver calls spent on this instance.
        conflicts: Solver conflicts spent on this instance.
        variables: CNF variables of the instance encoding.
        clauses: CNF clauses of the instance encoding.
    """

    subset: Tuple[int, ...]
    status: str
    objective: Optional[int] = None
    mappings: Optional[List[Tuple[int, ...]]] = None
    iterations: int = 0
    conflicts: int = 0
    variables: int = 0
    clauses: int = 0

    @property
    def is_satisfiable(self) -> bool:
        """True when the instance yielded at least one model."""
        return self.status in ("optimal", "satisfiable")

    @property
    def is_optimal(self) -> bool:
        """True when the instance was solved to (bounded) optimality."""
        return self.status == "optimal"


class SATMapper:
    """Exact mapper using the paper's symbolic formulation and a SAT optimiser.

    Args:
        coupling: Target architecture.
        strategy: Permutation-restriction strategy (Section 4.2); defaults to
            permutations before every gate (the minimal formulation).
        use_subsets: Solve one instance per connected subset of ``n`` physical
            qubits instead of one instance over all ``m`` (Section 4.1).
        optimizer_strategy: ``"linear"`` or ``"binary"`` objective search
            (see :class:`~repro.sat.optimize.OptimizingSolver`).
        time_limit: Optional wall-clock budget in seconds for the whole
            mapping call; when exhausted the best solution found so far is
            returned (not necessarily minimal) and the remaining subset
            instances are skipped.
        conflict_limit: Optional per-solver-call conflict budget.
        decompose_swaps: Emit SWAPs as their 7-gate decomposition (default).

    Example:
        >>> from repro.arch import ibm_qx4
        >>> from repro.circuit import QuantumCircuit
        >>> circuit = QuantumCircuit(3)
        >>> circuit.cx(0, 1).cx(1, 2)
        >>> result = SATMapper(ibm_qx4()).map(circuit)
        >>> result.added_cost
        0
    """

    def __init__(
        self,
        coupling: CouplingMap,
        strategy: Optional[PermutationStrategy] = None,
        use_subsets: bool = False,
        optimizer_strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        decompose_swaps: bool = True,
    ):
        self.coupling = coupling
        self.strategy = strategy if strategy is not None else AllGatesStrategy()
        self.use_subsets = use_subsets
        self.optimizer_strategy = optimizer_strategy
        self.time_limit = time_limit
        self.conflict_limit = conflict_limit
        self.decompose_swaps = decompose_swaps

    # ------------------------------------------------------------------
    # Instance preparation (shared with the batch pipeline)
    # ------------------------------------------------------------------
    def candidate_subsets(self, num_logical: int) -> List[Tuple[int, ...]]:
        """Physical-qubit subsets to try (Section 4.1)."""
        num_physical = self.coupling.num_qubits
        if not self.use_subsets or num_logical >= num_physical:
            return [tuple(range(num_physical))]
        return shared_connected_subsets(self.coupling, num_logical)

    def cnot_instance(
        self, circuit: QuantumCircuit
    ) -> Tuple[List[Tuple[int, int]], List[int]]:
        """The CNOT pair sequence of *circuit* and its permutation spots."""
        cnot_gates = circuit.cnot_gates()
        gates = [(gate.control, gate.target) for gate in cnot_gates]
        spots = self.strategy.spots(cnot_gates, self.coupling) if gates else []
        return gates, spots

    def _remaining_time(self, start: float) -> Optional[float]:
        """Seconds left of the overall budget; <= 0 means the budget is spent."""
        if self.time_limit is None:
            return None
        return self.time_limit - (time.monotonic() - start)

    # ------------------------------------------------------------------
    # Per-subset solving
    # ------------------------------------------------------------------
    def solve_subset(
        self,
        gates: Sequence[Tuple[int, int]],
        num_logical: int,
        spots: Sequence[int],
        subset: Tuple[int, ...],
        time_limit: Optional[float] = None,
        upper_bound: Optional[int] = None,
    ) -> SubsetOutcome:
        """Solve the mapping instance restricted to one physical-qubit subset.

        Args:
            gates: CNOT sequence as ``(control, target)`` logical pairs.
            num_logical: Number of logical qubits of the circuit.
            spots: Permutation spots (from :meth:`cnot_instance`).
            subset: Device indices of the physical qubits to map onto.
            time_limit: Wall-clock budget for this instance.
            upper_bound: Inclusive objective bound asserted before the first
                solve (heuristic seeding / incumbent tightening); a
                ``"unsat"`` outcome then only means "nothing at most this
                cheap in this subset".

        Returns:
            The :class:`SubsetOutcome` with mappings translated back to
            device indices.
        """
        sub_coupling = self.coupling.subgraph(subset)
        if not sub_coupling.is_connected():
            return SubsetOutcome(subset=tuple(subset), status="unsat")
        table = shared_permutation_table(sub_coupling)
        encoding = build_encoding(
            list(gates), num_logical, sub_coupling,
            permutation_spots=list(spots),
            permutation_table=table,
        )
        optimizer = OptimizingSolver(encoding.cnf, encoding.objective)
        outcome: OptimizationResult = optimizer.minimize(
            strategy=self.optimizer_strategy,
            time_limit=time_limit,
            conflict_limit=self.conflict_limit,
            upper_bound=upper_bound,
        )
        if not outcome.is_satisfiable:
            return SubsetOutcome(
                subset=tuple(subset),
                status=outcome.status,
                iterations=outcome.iterations,
                conflicts=outcome.conflicts,
                variables=encoding.num_variables,
                clauses=encoding.num_clauses,
            )
        local_mappings = encoding.extract_schedule(outcome.model)
        # Translate subset-relative physical indices back to device indices.
        translated = [
            tuple(subset[physical] for physical in mapping)
            for mapping in local_mappings
        ]
        return SubsetOutcome(
            subset=tuple(subset),
            status=outcome.status,
            objective=outcome.objective if outcome.objective is not None else 0,
            mappings=translated,
            iterations=outcome.iterations,
            conflicts=outcome.conflicts,
            variables=encoding.num_variables,
            clauses=encoding.num_clauses,
        )

    # ------------------------------------------------------------------
    # Result assembly (shared with the batch pipeline)
    # ------------------------------------------------------------------
    @staticmethod
    def select_best_outcome(
        outcomes: Sequence[SubsetOutcome],
    ) -> Optional[SubsetOutcome]:
        """The first outcome (in the given order) with the lowest objective.

        Keeping the *first* of equally cheap outcomes makes the parallel
        subset fan-out deterministic and identical to the sequential loop,
        which only replaces the incumbent on a strict improvement.
        """
        best: Optional[SubsetOutcome] = None
        for outcome in outcomes:
            if not outcome.is_satisfiable:
                continue
            if best is None or outcome.objective < best.objective:
                best = outcome
        return best

    def build_mapping_result(
        self,
        circuit: QuantumCircuit,
        best: SubsetOutcome,
        outcomes: Sequence[SubsetOutcome],
        spots: Sequence[int],
        subsets_total: int,
        runtime_seconds: float,
        budget_exhausted: bool = False,
        upper_bound: Optional[int] = None,
    ) -> MappingResult:
        """Assemble the :class:`MappingResult` from per-subset outcomes."""
        num_logical = circuit.num_qubits
        schedule = MappingSchedule(
            num_logical=num_logical,
            num_physical=self.coupling.num_qubits,
            mappings=best.mappings,
            initial_mapping=best.mappings[0],
        )
        # Minimality is only guaranteed for the unrestricted formulation over
        # all physical qubits, with the optimiser having proven (bounded)
        # optimality and the whole budget having sufficed.  A seeded upper
        # bound does not void the claim: a solution at or below the seed was
        # found, so the bounded minimum equals the true minimum.
        proven_minimal = (
            best.is_optimal
            and self.strategy.guarantees_minimality
            and not self.use_subsets
            and not budget_exhausted
        )
        statistics = {
            "subsets_total": subsets_total,
            "subsets_tried": len(outcomes),
            "subsets_skipped": subsets_total - len(outcomes),
            "solver_conflicts": sum(o.conflicts for o in outcomes),
            "solver_iterations": sum(o.iterations for o in outcomes),
            "encoding_variables": sum(o.variables for o in outcomes),
            "encoding_clauses": sum(o.clauses for o in outcomes),
            "budget_exhausted": budget_exhausted,
        }
        if upper_bound is not None:
            statistics["seeded_upper_bound"] = upper_bound
        # Reconstruction needs SWAP sequences on the full device; reuse the
        # process-wide table when the device is small enough to enumerate
        # (build_result's lazy fallback applies the same size guard, and only
        # when a swap sequence is actually required).
        table = (
            shared_permutation_table(self.coupling)
            if self.coupling.num_qubits <= 8 else None
        )
        return build_result(
            circuit,
            schedule,
            self.coupling,
            engine="sat",
            strategy=self.strategy.name,
            objective=best.objective,
            optimal=proven_minimal,
            runtime_seconds=runtime_seconds,
            num_permutation_spots=len(spots),
            statistics=statistics,
            decompose_swaps=self.decompose_swaps,
            permutation_table=table,
        )

    # ------------------------------------------------------------------
    def map(
        self, circuit: QuantumCircuit, upper_bound: Optional[int] = None
    ) -> MappingResult:
        """Map *circuit* to the architecture with minimal added cost.

        Args:
            circuit: The circuit to map.
            upper_bound: Optional inclusive bound on the objective, e.g. the
                added cost of a heuristic solution (portfolio seeding).  Only
                mappings at most this expensive are searched for; when none
                exists, :class:`SATMapperError` is raised even though the
                unbounded problem may be satisfiable.

        Raises:
            SATMapperError: If no valid mapping exists within the bound (or
                none was found within the time budget).
            ValueError: If the circuit does not fit on the device.
        """
        start = time.monotonic()
        num_logical = circuit.num_qubits
        num_physical = self.coupling.num_qubits
        if num_logical > num_physical:
            raise ValueError(
                f"circuit has {num_logical} logical qubits but the device only "
                f"has {num_physical}"
            )
        if upper_bound is not None and upper_bound < 0:
            raise ValueError("upper_bound must be non-negative")
        gates, spots = self.cnot_instance(circuit)

        if not gates:
            schedule = default_schedule(num_logical, self.coupling)
            return build_result(
                circuit, schedule, self.coupling,
                engine="sat", strategy=self.strategy.name,
                objective=0, optimal=True,
                runtime_seconds=time.monotonic() - start,
                num_permutation_spots=0,
                statistics={},
                decompose_swaps=self.decompose_swaps,
            )

        subsets = self.candidate_subsets(num_logical)
        outcomes: List[SubsetOutcome] = []
        best: Optional[SubsetOutcome] = None
        bound = upper_bound
        budget_exhausted = False

        for subset in subsets:
            remaining = self._remaining_time(start)
            if remaining is not None and remaining <= 0:
                # Budget spent: do not launch further solver calls.  The best
                # solution found so far (if any) is returned as non-optimal.
                budget_exhausted = True
                break
            outcome = self.solve_subset(
                gates, num_logical, spots, subset,
                time_limit=remaining,
                upper_bound=bound,
            )
            outcomes.append(outcome)
            if not outcome.is_satisfiable:
                continue
            if best is None or outcome.objective < best.objective:
                best = outcome
            if best.objective == 0:
                # A zero-added-cost mapping cannot be beaten by any other
                # subset — stop the loop early.
                break
            # Tighten: later subsets only interest us when strictly cheaper
            # than the incumbent (and never above a seeded upper bound).
            incumbent_bound = best.objective - 1
            bound = incumbent_bound if bound is None else min(bound, incumbent_bound)

        if best is None:
            raise SATMapperError.no_solution(budget_exhausted)

        result = self.build_mapping_result(
            circuit,
            best,
            outcomes,
            spots,
            subsets_total=len(subsets),
            runtime_seconds=time.monotonic() - start,
            budget_exhausted=budget_exhausted,
            upper_bound=upper_bound,
        )
        return result


__all__ = ["SATMapper", "SATMapperError", "SubsetOutcome"]
