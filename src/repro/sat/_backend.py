"""Solver backend selection (``REPRO_SOLVER_BACKEND=auto|pure|compiled``).

The CDCL core (:mod:`repro.sat._solver_core`) runs either interpreted (the
*pure* backend, always available) or as a native extension compiled from the
identical source (the *compiled* backend, ``repro.sat._solver_core_c``,
built by ``setup.py`` when Cython or mypyc is installed — see the README's
"Solver internals" section).  Because both backends execute the same code,
they produce identical models and identical ``conflicts`` / ``decisions`` /
``propagations`` counters; the differential tests assert this.

Selection happens once, at first import of :mod:`repro.sat.solver`:

``auto`` (default)
    Use the compiled extension when present, otherwise fall back to pure
    silently (the provenance note still records that no extension was
    found).
``pure``
    Always use the interpreted core, even when the extension is built.
``compiled``
    Use the extension; when it is missing or is not actually a native
    module, fall back to pure with an explicit provenance note (mapping
    keeps working — results are identical either way).

Any other value falls back to ``auto`` with a warning rather than breaking
imports.  :func:`backend_provenance` exposes the outcome; the SAT mapper
copies it into its result statistics and the perf benchmarks stamp it into
``BENCH_sweep.json`` entries so perf history stays attributable.
"""

from __future__ import annotations

import importlib
import os
import warnings
from types import ModuleType
from typing import Dict, Optional, Tuple

_ENV_VAR = "REPRO_SOLVER_BACKEND"
_VALID = ("auto", "pure", "compiled")
_COMPILED_MODULE = "repro.sat._solver_core_c"
_NATIVE_SUFFIXES = (".so", ".pyd", ".dylib")


class SolverBackend:
    """The resolved solver backend: name, the module, and how we got here."""

    __slots__ = ("name", "requested", "note", "module")

    def __init__(
        self,
        name: str,
        requested: str,
        note: Optional[str],
        module: ModuleType,
    ):
        self.name = name
        self.requested = requested
        self.note = note
        self.module = module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SolverBackend(name={self.name!r}, requested={self.requested!r})"


def _load_compiled() -> Tuple[Optional[ModuleType], Optional[str]]:
    """Import the compiled core; returns ``(module, why_not)``."""
    try:
        module = importlib.import_module(_COMPILED_MODULE)
    except ImportError:
        return None, f"compiled backend not built ({_COMPILED_MODULE} missing)"
    path = getattr(module, "__file__", "") or ""
    if not path.endswith(_NATIVE_SUFFIXES):
        # A stray interpreted copy (e.g. the build-time source shadowing a
        # missing extension) would behave identically but would not be
        # "compiled"; refuse it so provenance stays truthful.
        return None, (
            f"{_COMPILED_MODULE} is not a native extension "
            f"(found {path or 'no file'}); run the optional build first"
        )
    return module, None


def requested_backend() -> str:
    """The backend named by ``REPRO_SOLVER_BACKEND`` (default ``auto``)."""
    raw = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if raw not in _VALID:
        warnings.warn(
            f"{_ENV_VAR}={raw!r} is not one of {'/'.join(_VALID)}; "
            "treating it as 'auto'",
            stacklevel=2,
        )
        return "auto"
    return raw


def select_backend(requested: Optional[str] = None) -> SolverBackend:
    """Resolve *requested* (default: the environment) to a usable backend."""
    if requested is None:
        requested = requested_backend()
    elif requested not in _VALID:
        raise ValueError(
            f"unknown solver backend {requested!r} (expected one of {_VALID})"
        )
    note: Optional[str] = None
    if requested in ("auto", "compiled"):
        module, why_not = _load_compiled()
        if module is not None:
            return SolverBackend("compiled", requested, None, module)
        if requested == "compiled":
            note = f"{_ENV_VAR}=compiled requested but {why_not}; using pure"
        else:
            note = why_not
    pure = importlib.import_module("repro.sat._solver_core")
    return SolverBackend("pure", requested, note, pure)


def backend_module(name: str) -> Optional[ModuleType]:
    """The core module of backend *name*, or ``None`` when unavailable.

    Used by the differential tests to pit both backends against each other
    regardless of what ``REPRO_SOLVER_BACKEND`` selected for the process.
    """
    if name == "pure":
        return importlib.import_module("repro.sat._solver_core")
    if name == "compiled":
        module, _ = _load_compiled()
        return module
    raise ValueError(f"unknown solver backend {name!r}")


def available_backends() -> Tuple[str, ...]:
    """Names of the backends importable right now (pure is always there)."""
    names = ["pure"]
    if _load_compiled()[0] is not None:
        names.append("compiled")
    return tuple(names)


_ACTIVE: Optional[SolverBackend] = None


def active_backend() -> SolverBackend:
    """The process-wide backend, resolved once on first use."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = select_backend()
    return _ACTIVE


def backend_provenance() -> Dict[str, str]:
    """Provenance of the active backend for statistics and bench records.

    Always contains ``solver_backend`` (``pure`` or ``compiled``) and
    ``solver_backend_requested``; contains ``solver_backend_note`` when the
    selection fell back or has something worth recording (e.g. ``compiled``
    was requested but the extension is absent).
    """
    backend = active_backend()
    provenance = {
        "solver_backend": backend.name,
        "solver_backend_requested": backend.requested,
    }
    if backend.note:
        provenance["solver_backend_note"] = backend.note
    return provenance


__all__ = [
    "SolverBackend",
    "active_backend",
    "available_backends",
    "backend_module",
    "backend_provenance",
    "requested_backend",
    "select_backend",
]
