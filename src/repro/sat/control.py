"""Cooperative cancellation tokens for long-running solves.

A :class:`SolveControl` is the bridge between the asynchronous service
layer and the synchronous solver stack: the service holds one token per
job, every :class:`~repro.sat.solver.CDCLSolver` the job's mapping work
creates registers itself on the token, and a single :meth:`cancel` call
interrupts them all at their next conflict boundary.  The token also
carries the job's absolute deadline so deeply nested code can ask how much
budget is left without threading a start timestamp everywhere.

Thread-safety: ``register`` runs in worker threads while ``cancel`` runs on
the event-loop thread, so the solver list is guarded by a lock.  The
solvers' own ``interrupt()`` is a single attribute write and needs none.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional


class SolveControl:
    """Shared cancellation/deadline token for one mapping job.

    Attributes:
        deadline: Optional absolute ``time.monotonic()`` timestamp after
            which the work should stop (informational; enforcement is the
            owner's job).
    """

    def __init__(self, deadline: Optional[float] = None):
        self.deadline = deadline
        self._cancelled = False
        self._lock = threading.Lock()
        # Strong references: compiled solver classes are not reliably
        # weakref-able.  The owner calls release() when the job reaches a
        # terminal state, so solver arenas never outlive their job's run.
        self._solvers: List = []

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def register(self, solver) -> None:
        """Attach *solver* so a later :meth:`cancel` interrupts it.

        A solver registered after cancellation is interrupted immediately —
        the race between "cancel arrives" and "one more family solver is
        being built" must not leave an uninterruptible search running.
        """
        with self._lock:
            if self._cancelled:
                solver.interrupt()
                return
            self._solvers.append(solver)

    def cancel(self) -> None:
        """Interrupt every registered solver and mark the token cancelled."""
        with self._lock:
            self._cancelled = True
            solvers = list(self._solvers)
        for solver in solvers:
            solver.interrupt()

    def release(self) -> None:
        """Drop the solver references (the job is terminal; free the arenas)."""
        with self._lock:
            self._solvers.clear()

    def remaining(self) -> Optional[float]:
        """Seconds until :attr:`deadline` (``None`` when no deadline is set)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0


__all__ = ["SolveControl"]
