"""Cardinality constraint encodings.

Constraint (1) of the paper requires that each logical qubit is mapped to
exactly one physical qubit and that each physical qubit carries at most one
logical qubit.  These are "exactly one" / "at most one" constraints over the
``x`` variables; this module provides the standard encodings:

* pairwise at-most-one (quadratic, no auxiliary variables),
* sequential (ladder) at-most-one (linear, one auxiliary variable per literal),
* sequential-counter at-most-k.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sat.cnf import CNF, Literal


def at_most_one_pairwise(cnf: CNF, literals: Sequence[Literal]) -> None:
    """Pairwise encoding of ``at most one of literals``."""
    literals = list(literals)
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            cnf.add_clause([-literals[i], -literals[j]])


def at_most_one_sequential(cnf: CNF, literals: Sequence[Literal],
                           prefix: str = "amo") -> None:
    """Ladder (sequential) encoding of ``at most one of literals``.

    Uses ``len(literals) - 1`` auxiliary variables and ``3n - 4`` clauses,
    which scales better than the pairwise encoding for long literal lists.
    """
    literals = list(literals)
    count = len(literals)
    if count <= 1:
        return
    if count <= 4:
        at_most_one_pairwise(cnf, literals)
        return
    registers = [cnf.new_var(f"{prefix}_s{i}") for i in range(count - 1)]
    # literal_i -> register_i
    cnf.add_clause([-literals[0], registers[0]])
    for i in range(1, count - 1):
        cnf.add_clause([-literals[i], registers[i]])
        cnf.add_clause([-registers[i - 1], registers[i]])
        cnf.add_clause([-literals[i], -registers[i - 1]])
    cnf.add_clause([-literals[count - 1], -registers[count - 2]])


def exactly_one(cnf: CNF, literals: Sequence[Literal],
                encoding: str = "pairwise", prefix: str = "eo") -> None:
    """Assert that exactly one of *literals* is true.

    Args:
        cnf: Formula to extend.
        literals: The candidate literals.
        encoding: ``"pairwise"`` or ``"sequential"`` for the at-most-one part.
        prefix: Name prefix for auxiliary variables.
    """
    literals = list(literals)
    if not literals:
        raise ValueError("exactly_one over an empty literal list is unsatisfiable")
    cnf.add_clause(literals)
    if encoding == "pairwise":
        at_most_one_pairwise(cnf, literals)
    elif encoding == "sequential":
        at_most_one_sequential(cnf, literals, prefix=prefix)
    else:
        raise ValueError(f"unknown at-most-one encoding {encoding!r}")


def at_most_k_sequential(cnf: CNF, literals: Sequence[Literal], bound: int,
                         prefix: str = "amk") -> None:
    """Sequential-counter encoding of ``sum(literals) <= bound``.

    Introduces a register of *bound* counter bits per position (Sinz 2005).

    Args:
        cnf: Formula to extend.
        literals: Unit-weight terms of the sum.
        bound: Upper bound ``k``; must be non-negative.
        prefix: Name prefix for auxiliary variables.
    """
    literals = list(literals)
    if bound < 0:
        raise ValueError("bound must be non-negative")
    if bound == 0:
        for literal in literals:
            cnf.add_clause([-literal])
        return
    count = len(literals)
    if count <= bound:
        return
    # registers[i][j] is true when at least j+1 of the first i+1 literals are true.
    registers: List[List[int]] = [
        [cnf.new_var(f"{prefix}_r{i}_{j}") for j in range(bound)] for i in range(count)
    ]
    cnf.add_clause([-literals[0], registers[0][0]])
    for j in range(1, bound):
        cnf.add_clause([-registers[0][j]])
    for i in range(1, count):
        cnf.add_clause([-literals[i], registers[i][0]])
        cnf.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, bound):
            cnf.add_clause([-literals[i], -registers[i - 1][j - 1], registers[i][j]])
            cnf.add_clause([-registers[i - 1][j], registers[i][j]])
        cnf.add_clause([-literals[i], -registers[i - 1][bound - 1]])
    return


__all__ = [
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "exactly_one",
    "at_most_k_sequential",
]
