"""A small reference DPLL solver.

This solver exists purely for validation: it is slow but simple enough to be
obviously correct, and the test suite cross-checks the CDCL solver against it
(and against brute-force enumeration) on randomly generated formulas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sat.cnf import CNF
from repro.sat.solver import SolverResult


class DPLLSolver:
    """Recursive DPLL with unit propagation and pure-literal elimination."""

    def __init__(self, cnf: Optional[CNF] = None):
        self._clauses: List[List[int]] = []
        self._num_vars = 0
        self._model: Dict[int, bool] = {}
        if cnf is not None:
            self.add_cnf(cnf)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add one clause (DIMACS literals)."""
        clause = list(dict.fromkeys(literals))
        if any(-lit in clause for lit in clause):
            return
        self._clauses.append(clause)
        for literal in clause:
            self._num_vars = max(self._num_vars, abs(literal))

    def add_cnf(self, cnf: CNF) -> None:
        """Add every clause of *cnf*."""
        self._num_vars = max(self._num_vars, cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(list(clause.literals))

    # ------------------------------------------------------------------
    def solve(self) -> SolverResult:
        """Decide satisfiability and store a model if one exists."""
        assignment: Dict[int, bool] = {}
        result = self._search(self._clauses, assignment)
        if result is None:
            return SolverResult.UNSAT
        self._model = result
        return SolverResult.SAT

    def model(self) -> Dict[int, bool]:
        """Model of the last successful ``solve()`` call (unassigned -> False)."""
        return {
            var: self._model.get(var, False) for var in range(1, self._num_vars + 1)
        }

    # ------------------------------------------------------------------
    def _simplify(self, clauses: List[List[int]], literal: int) -> Optional[List[List[int]]]:
        """Assign *literal* true and simplify; None signals a conflict."""
        result: List[List[int]] = []
        for clause in clauses:
            if literal in clause:
                continue
            if -literal in clause:
                reduced = [l for l in clause if l != -literal]
                if not reduced:
                    return None
                result.append(reduced)
            else:
                result.append(clause)
        return result

    def _search(self, clauses: List[List[int]],
                assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        clauses = [list(c) for c in clauses]
        assignment = dict(assignment)
        # Unit propagation.
        changed = True
        while changed:
            changed = False
            for clause in clauses:
                if len(clause) == 1:
                    literal = clause[0]
                    assignment[abs(literal)] = literal > 0
                    simplified = self._simplify(clauses, literal)
                    if simplified is None:
                        return None
                    clauses = simplified
                    changed = True
                    break
        if not clauses:
            return assignment
        # Pure literal elimination.
        polarity: Dict[int, set] = {}
        for clause in clauses:
            for literal in clause:
                polarity.setdefault(abs(literal), set()).add(literal > 0)
        for var, signs in polarity.items():
            if len(signs) == 1:
                literal = var if True in signs else -var
                assignment[var] = literal > 0
                simplified = self._simplify(clauses, literal)
                if simplified is None:
                    return None
                return self._search(simplified, assignment)
        # Branch on the first unassigned variable appearing in the clauses.
        literal = clauses[0][0]
        for choice in (literal, -literal):
            simplified = self._simplify(clauses, choice)
            if simplified is None:
                continue
            branch_assignment = dict(assignment)
            branch_assignment[abs(choice)] = choice > 0
            result = self._search(simplified, branch_assignment)
            if result is not None:
                return result
        return None


__all__ = ["DPLLSolver"]
