"""Variables, literals, clauses and CNF formulas.

Literals use the DIMACS convention: a positive integer ``v`` denotes the
variable ``v`` asserted true, ``-v`` denotes it asserted false.  Variable
indices start at 1.  The :class:`VariablePool` hands out fresh variable
indices and remembers optional human-readable names, which makes debugging
the mapping encodings much easier.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

Literal = int


class CNFError(ValueError):
    """Raised on malformed clauses or formulas."""


class VariablePool:
    """Allocates SAT variable indices and tracks their names.

    Example:
        >>> pool = VariablePool()
        >>> x = pool.new_var("x")
        >>> y = pool.new_var("y")
        >>> (x, y)
        (1, 2)
        >>> pool.name(2)
        'y'
    """

    def __init__(self) -> None:
        self._next = 1
        self._names: Dict[int, str] = {}

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        return self._next - 1

    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        var = self._next
        self._next += 1
        if name is not None:
            self._names[var] = name
        return var

    def new_vars(self, count: int, prefix: str = "v") -> List[int]:
        """Allocate *count* fresh variables named ``prefix_0 ... prefix_{count-1}``."""
        return [self.new_var(f"{prefix}_{i}") for i in range(count)]

    def name(self, var: int) -> str:
        """The name of *var* (falls back to ``v<index>``)."""
        return self._names.get(abs(var), f"v{abs(var)}")

    def fork(self) -> "VariablePool":
        """An independent copy of this pool (same allocations and names).

        Used to instantiate a cached encoding skeleton: the copy continues
        allocating from where the template stopped, without the template
        ever observing the new variables.
        """
        clone = VariablePool()
        clone._next = self._next
        clone._names = dict(self._names)
        return clone

    def append_block(self, count: int, names: Mapping[int, str]) -> None:
        """Allocate *count* variables at once with pre-computed names.

        The block-substitution fast path of
        :func:`repro.exact.encoding.build_encoding` re-bases a cached block
        of variables onto this pool; *names* must already use the final
        (shifted) indices, all within the newly allocated range.
        """
        if count < 0:
            raise CNFError("cannot append a negative variable block")
        start = self._next
        self._next += count
        for var, name in names.items():
            if not start <= var < self._next:
                raise CNFError(
                    f"block name for variable {var} outside the appended "
                    f"range [{start}, {self._next - 1}]"
                )
            self._names[var] = name

    def describe_literal(self, literal: Literal) -> str:
        """Human-readable form of a literal, e.g. ``!x`` for ``-1``."""
        prefix = "!" if literal < 0 else ""
        return prefix + self.name(abs(literal))


class Clause:
    """A disjunction of literals."""

    __slots__ = ("literals",)

    def __init__(self, literals: Iterable[Literal]):
        lits = tuple(literals)
        for literal in lits:
            if literal == 0:
                raise CNFError("0 is not a valid literal")
        self.literals = lits

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self.literals == other.literals

    def __hash__(self) -> int:
        return hash(self.literals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clause({list(self.literals)})"

    def variables(self) -> Tuple[int, ...]:
        """The (positive) variable indices appearing in the clause."""
        return tuple(abs(literal) for literal in self.literals)

    def is_tautology(self) -> bool:
        """True when the clause contains a literal and its negation."""
        seen = set(self.literals)
        return any(-literal in seen for literal in self.literals)

    def satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate the clause under a (possibly partial) assignment.

        Unassigned variables count as not satisfying the clause.
        """
        for literal in self.literals:
            value = assignment.get(abs(literal))
            if value is None:
                continue
            if (literal > 0) == value:
                return True
        return False


class CNF:
    """A conjunction of clauses together with its variable pool."""

    def __init__(self, pool: Optional[VariablePool] = None):
        self.pool = pool if pool is not None else VariablePool()
        self.clauses: List[Clause] = []

    @property
    def num_vars(self) -> int:
        """Number of variables allocated in the pool."""
        return self.pool.num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses added so far."""
        return len(self.clauses)

    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable through the pool."""
        return self.pool.new_var(name)

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add one clause given as an iterable of literals."""
        clause = Clause(literals)
        if len(clause) == 0:
            raise CNFError("cannot add an empty clause (formula would be trivially UNSAT)")
        self.clauses.append(clause)

    def add_clauses(self, clause_list: Iterable[Iterable[Literal]]) -> None:
        """Add several clauses at once."""
        for literals in clause_list:
            self.add_clause(literals)

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate the whole formula under a total assignment."""
        return all(clause.satisfied_by(assignment) for clause in self.clauses)

    def to_dimacs(self) -> str:
        """Serialise the formula in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause.literals) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF string into a formula."""
        cnf = cls()
        declared_vars = 0
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise CNFError(f"malformed problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            literals = [int(token) for token in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            if literals:
                cnf.add_clause(literals)
        while cnf.pool.num_vars < declared_vars:
            cnf.pool.new_var()
        for clause in cnf.clauses:
            for var in clause.variables():
                while cnf.pool.num_vars < var:
                    cnf.pool.new_var()
        return cnf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNF(num_vars={self.num_vars}, num_clauses={self.num_clauses})"


__all__ = ["Literal", "Clause", "CNF", "VariablePool", "CNFError"]
