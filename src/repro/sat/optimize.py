"""Minimisation of a weighted linear objective over a CNF formula.

This implements the "extended interpretation" of the satisfiability problem
from Definition 3 of the paper: besides a satisfying assignment of the hard
constraints, an assignment minimising ``F = sum(w_i * literal_i)`` is sought.

Two search strategies are provided:

* ``"linear"`` (default) — solve once, read off the objective value of the
  model, then repeatedly assert ``F <= best - 1`` on the *same* incremental
  solver until the instance becomes unsatisfiable.  The last model found is
  optimal.  This reuses learned clauses across iterations.
* ``"binary"`` — bisect the objective range with a fresh solver per probe.

Both return an :class:`OptimizationResult`; when a time or conflict budget is
exhausted the best model found so far is returned with ``is_optimal=False``
(this mirrors the paper's "close-to-minimal" discussion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Literal
from repro.sat.pb import encode_pb_leq, evaluate_pb
from repro.sat.solver import CDCLSolver, SolverResult


@dataclass(frozen=True)
class ObjectiveTerm:
    """One weighted term ``weight * [literal is true]`` of the objective."""

    weight: int
    literal: Literal

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("objective weights must be non-negative")
        if self.literal == 0:
            raise ValueError("0 is not a valid literal")


@dataclass
class OptimizationResult:
    """Outcome of an optimisation run.

    Attributes:
        status: ``"optimal"``, ``"satisfiable"`` (feasible but optimality not
            proven within the budget), ``"unsat"`` or ``"unknown"``.
        model: Best model found (empty when none was found).
        objective: Objective value of :attr:`model` (``None`` when no model).
        iterations: Number of solver calls performed.
        conflicts: Total number of conflicts across all solver calls.
        elapsed_seconds: Wall-clock time spent.
    """

    status: str
    model: Dict[int, bool] = field(default_factory=dict)
    objective: Optional[int] = None
    iterations: int = 0
    conflicts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def is_optimal(self) -> bool:
        """True when the returned model is provably minimal."""
        return self.status == "optimal"

    @property
    def is_satisfiable(self) -> bool:
        """True when at least one model was found."""
        return self.status in ("optimal", "satisfiable")


class OptimizingSolver:
    """Minimises a weighted objective subject to a CNF formula.

    Args:
        cnf: The hard constraints.  The formula's variable pool is reused for
            the auxiliary variables of the objective-bound encodings.
        objective: The terms of the objective function ``F``.

    Example:
        >>> cnf = CNF()
        >>> a, b = cnf.new_var("a"), cnf.new_var("b")
        >>> cnf.add_clause([a, b])
        >>> opt = OptimizingSolver(cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)])
        >>> result = opt.minimize()
        >>> result.objective
        3
    """

    def __init__(self, cnf: CNF, objective: Sequence[ObjectiveTerm]):
        self.cnf = cnf
        self.objective = list(objective)

    # ------------------------------------------------------------------
    def _objective_terms(self) -> List[Tuple[int, Literal]]:
        return [(term.weight, term.literal) for term in self.objective]

    def _objective_value(self, model: Dict[int, bool]) -> int:
        return evaluate_pb(self._objective_terms(), model)

    # ------------------------------------------------------------------
    def minimize(
        self,
        strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        upper_bound: Optional[int] = None,
    ) -> OptimizationResult:
        """Find a model of minimal objective value.

        Args:
            strategy: ``"linear"`` (incremental descent) or ``"binary"``
                (bisection with fresh solvers).
            time_limit: Overall wall-clock budget in seconds.
            conflict_limit: Per-solver-call conflict budget.
            upper_bound: Known inclusive bound on the objective (for example
                from a heuristic solution).  The constraint ``F <= upper_bound``
                is asserted *before the first solve*, so the search starts from
                the seeded bound instead of descending from an arbitrary first
                model.  A result with status ``"unsat"`` then means "no model
                with objective at most *upper_bound*" — the unseeded instance
                may still be satisfiable.

        Returns:
            The :class:`OptimizationResult`; its objective never exceeds
            *upper_bound* when one was given.
        """
        if upper_bound is not None and upper_bound < 0:
            raise ValueError("upper_bound must be non-negative")
        if strategy == "linear":
            return self._minimize_linear(time_limit, conflict_limit, upper_bound)
        if strategy == "binary":
            return self._minimize_binary(time_limit, conflict_limit, upper_bound)
        raise ValueError(f"unknown optimisation strategy {strategy!r}")

    # ------------------------------------------------------------------
    def _remaining(self, start: float, time_limit: Optional[float]) -> Optional[float]:
        if time_limit is None:
            return None
        return max(0.001, time_limit - (time.monotonic() - start))

    def _bounded_copy(self, bound: Optional[int], prefix: str) -> CNF:
        """A working copy of the hard constraints, with ``F <= bound`` when given.

        Bound encodings are search state, not part of the caller's formula:
        working on a copy keeps repeated ``minimize`` calls on the same
        instance independent.  The variable pool is shared so auxiliary
        variables stay unique across copies.
        """
        cnf = CNF(self.cnf.pool)
        cnf.clauses = list(self.cnf.clauses)
        if bound is not None:
            encode_pb_leq(cnf, self._objective_terms(), bound, prefix=prefix)
        return cnf

    def _minimize_linear(
        self,
        time_limit: Optional[float],
        conflict_limit: Optional[int],
        upper_bound: Optional[int] = None,
    ) -> OptimizationResult:
        start = time.monotonic()
        cnf = self._bounded_copy(upper_bound, prefix="seed")
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        iterations = 0
        best_model: Dict[int, bool] = {}
        best_value: Optional[int] = None

        while True:
            iterations += 1
            outcome = solver.solve(
                conflict_limit=conflict_limit,
                time_limit=self._remaining(start, time_limit),
            )
            elapsed = time.monotonic() - start
            if outcome is SolverResult.UNKNOWN:
                status = "satisfiable" if best_value is not None else "unknown"
                return OptimizationResult(
                    status=status,
                    model=best_model,
                    objective=best_value,
                    iterations=iterations,
                    conflicts=solver.statistics["conflicts"],
                    elapsed_seconds=elapsed,
                )
            if outcome is SolverResult.UNSAT:
                if best_value is None:
                    return OptimizationResult(
                        status="unsat",
                        iterations=iterations,
                        conflicts=solver.statistics["conflicts"],
                        elapsed_seconds=elapsed,
                    )
                return OptimizationResult(
                    status="optimal",
                    model=best_model,
                    objective=best_value,
                    iterations=iterations,
                    conflicts=solver.statistics["conflicts"],
                    elapsed_seconds=elapsed,
                )
            model = solver.model()
            value = self._objective_value(model)
            if best_value is None or value < best_value:
                best_value = value
                best_model = model
            if best_value == 0:
                return OptimizationResult(
                    status="optimal",
                    model=best_model,
                    objective=0,
                    iterations=iterations,
                    conflicts=solver.statistics["conflicts"],
                    elapsed_seconds=time.monotonic() - start,
                )
            # Tighten: require an objective strictly below the incumbent.
            before = cnf.num_clauses
            encode_pb_leq(
                cnf,
                self._objective_terms(),
                best_value - 1,
                prefix=f"bound{iterations}",
            )
            for clause in cnf.clauses[before:]:
                solver.add_clause(clause.literals)

    def _minimize_binary(
        self,
        time_limit: Optional[float],
        conflict_limit: Optional[int],
        upper_bound: Optional[int] = None,
    ) -> OptimizationResult:
        start = time.monotonic()
        iterations = 0
        total_conflicts = 0

        # Initial feasibility check, seeded with the upper bound when given
        # (this also caps ``high`` of the bisection at the seed).
        solver = CDCLSolver()
        solver.add_cnf(self._bounded_copy(upper_bound, prefix="seed"))
        iterations += 1
        outcome = solver.solve(
            conflict_limit=conflict_limit,
            time_limit=self._remaining(start, time_limit),
        )
        total_conflicts += solver.statistics["conflicts"]
        if outcome is SolverResult.UNKNOWN:
            return OptimizationResult(
                status="unknown",
                iterations=iterations,
                conflicts=total_conflicts,
                elapsed_seconds=time.monotonic() - start,
            )
        if outcome is SolverResult.UNSAT:
            return OptimizationResult(
                status="unsat",
                iterations=iterations,
                conflicts=total_conflicts,
                elapsed_seconds=time.monotonic() - start,
            )
        best_model = solver.model()
        best_value = self._objective_value(best_model)

        low = 0
        high = best_value
        proven_optimal = True
        while low < high:
            middle = (low + high) // 2
            probe = CDCLSolver()
            probe.add_cnf(self._bounded_copy(middle, prefix=f"bin{iterations}"))
            iterations += 1
            outcome = probe.solve(
                conflict_limit=conflict_limit,
                time_limit=self._remaining(start, time_limit),
            )
            total_conflicts += probe.statistics["conflicts"]
            if outcome is SolverResult.UNKNOWN:
                proven_optimal = False
                break
            if outcome is SolverResult.SAT:
                model = probe.model()
                value = self._objective_value(model)
                best_model = model
                best_value = value
                high = value
            else:
                low = middle + 1
        status = "optimal" if proven_optimal else "satisfiable"
        return OptimizationResult(
            status=status,
            model=best_model,
            objective=best_value,
            iterations=iterations,
            conflicts=total_conflicts,
            elapsed_seconds=time.monotonic() - start,
        )


__all__ = ["ObjectiveTerm", "OptimizationResult", "OptimizingSolver"]
