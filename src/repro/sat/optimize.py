"""Minimisation of a weighted linear objective over a CNF formula.

This implements the "extended interpretation" of the satisfiability problem
from Definition 3 of the paper: besides a satisfying assignment of the hard
constraints, an assignment minimising ``F = sum(w_i * literal_i)`` is sought.

The *search strategy* — how objective bounds are probed — is pluggable.
Strategies are registered by name in an :class:`OptimizerRegistry`
(mirroring the mapper backend registry in :mod:`repro.pipeline.registry`)
and all run on one persistent :class:`~repro.sat.session.SolveSession`, so
learned clauses, variable activities and saved phases carry over from probe
to probe:

* ``"linear"`` (default) — solve once, read off the objective value of the
  model, then repeatedly commit ``F <= best - 1`` until the instance becomes
  unsatisfiable.  The last model found is optimal.
* ``"binary"`` — bisect the objective range; every probe is an assumption
  on the same solver (an UNSAT probe does not poison later, looser probes).
* ``"core"`` — MaxSAT-style core-guided descent: assume every objective
  term off, extract an UNSAT core over those selectors from each failure,
  relax exactly the literals in the core, and raise the *proven lower
  bound* by the core's cheapest weight.  Disjoint cores often close most of
  the objective gap in a handful of oracle calls; the remaining interval is
  finished by bisection over the shared bound ladder.

Third-party strategies can join at runtime::

    from repro.sat.optimize import OptimizerStrategy, register_optimizer

    @register_optimizer("annealed", aliases=("sa",))
    class AnnealedDescent(OptimizerStrategy):
        name = "annealed"
        description = "my custom descent"
        def minimize(self, task):
            ...

All strategies return an :class:`OptimizationResult`; when a time or
conflict budget is exhausted the best model found so far is returned with
``is_optimal=False`` (this mirrors the paper's "close-to-minimal"
discussion).  A known feasible assignment can be handed in as an initial
incumbent (``minimize(initial_model=..., initial_objective=...)``): it
seeds the solver's phases and counts as the first feasible solution, so a
proven-optimal re-solve needs only the final UNSAT probe.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Literal
from repro.sat.cores import core_from_session
from repro.sat.pb import evaluate_pb
from repro.sat.session import SolveSession
from repro.sat.solver import SolverResult


@dataclass(frozen=True)
class ObjectiveTerm:
    """One weighted term ``weight * [literal is true]`` of the objective."""

    weight: int
    literal: Literal

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("objective weights must be non-negative")
        if self.literal == 0:
            raise ValueError("0 is not a valid literal")


@dataclass
class OptimizationResult:
    """Outcome of an optimisation run.

    Attributes:
        status: ``"optimal"``, ``"satisfiable"`` (feasible but optimality not
            proven within the budget), ``"unsat"`` or ``"unknown"``.
        model: Best model found (empty when none was found).
        objective: Objective value of :attr:`model` (``None`` when no model).
        iterations: Number of solver calls performed.
        conflicts: Total number of conflicts across all solver calls.
        elapsed_seconds: Wall-clock time spent.
        statistics: Incremental-session counters for this run (bound-ladder
            node reuse, assumption solves, learned-clause retention,
            ``propagations``, ``fresh_solver``) plus strategy counters:
            ``descent_iterations``
            (solver calls that produced a model), ``model_seeded`` (an
            initial incumbent was used), and for the core-guided strategy
            ``cores_found`` / ``core_literals_relaxed`` /
            ``core_lower_bound`` (the lower bound proven by cores alone).
        final_core: Assumption literals of the last UNSAT probe (empty when
            the strategy never solved under assumptions, e.g. pure
            committed-bound linear descent).
        core_labels: Human-readable labels for :attr:`final_core`.
    """

    status: str
    model: Dict[int, bool] = field(default_factory=dict)
    objective: Optional[int] = None
    iterations: int = 0
    conflicts: int = 0
    elapsed_seconds: float = 0.0
    statistics: Dict[str, int] = field(default_factory=dict)
    final_core: Tuple[int, ...] = ()
    core_labels: Tuple[str, ...] = ()

    @property
    def is_optimal(self) -> bool:
        """True when the returned model is provably minimal."""
        return self.status == "optimal"

    @property
    def is_satisfiable(self) -> bool:
        """True when at least one model was found."""
        return self.status in ("optimal", "satisfiable")


class _SessionRun:
    """Bookkeeping for one ``minimize`` call on a (possibly reused) session."""

    def __init__(self, session: SolveSession, fresh: bool):
        self.session = session
        self.fresh = fresh
        self._start_conflicts = session.conflicts
        self._start_propagations = session.propagations
        self._start_stats = dict(session.statistics)

    @property
    def conflicts(self) -> int:
        return self.session.conflicts - self._start_conflicts

    @property
    def propagations(self) -> int:
        return self.session.propagations - self._start_propagations

    def statistics(self) -> Dict[str, int]:
        stats = {
            key: self.session.statistics[key] - self._start_stats.get(key, 0)
            for key in self.session.statistics
        }
        stats["propagations"] = self.propagations
        stats["learned_clauses_retained"] = self.session.learned_clauses
        stats["fresh_solver"] = int(self.fresh)
        return stats


@dataclass
class DescentTask:
    """Everything a strategy needs for one ``minimize`` call.

    The task owns the per-run bookkeeping: strategies report through
    :meth:`result` (which stamps conflicts, wall time and session counters)
    and accumulate strategy-specific counters in :attr:`counters`.
    """

    run: _SessionRun
    objective_value: Callable[[Dict[int, bool]], int]
    time_limit: Optional[float] = None
    conflict_limit: Optional[int] = None
    upper_bound: Optional[int] = None
    incumbent_model: Optional[Dict[int, bool]] = None
    incumbent_objective: Optional[int] = None
    start: float = field(default_factory=time.monotonic)
    counters: Dict[str, int] = field(default_factory=dict)
    final_core: Tuple[int, ...] = ()
    core_labels: Tuple[str, ...] = ()

    @property
    def session(self) -> SolveSession:
        return self.run.session

    def remaining(self) -> Optional[float]:
        """Seconds left of the overall budget (clamped positive)."""
        if self.time_limit is None:
            return None
        return max(0.001, self.time_limit - (time.monotonic() - self.start))

    #: Label cap for recorded cores (see ``core_from_session(max_labels=)``).
    MAX_CORE_LABELS = 12

    def record_core(self) -> None:
        """Capture the session's last UNSAT core (with labels) if any."""
        core = core_from_session(self.session, max_labels=self.MAX_CORE_LABELS)
        if not core.is_empty:
            self.final_core = core.literals
            self.core_labels = core.labels

    def result(
        self,
        status: str,
        model: Optional[Dict[int, bool]] = None,
        objective: Optional[int] = None,
        iterations: int = 0,
    ) -> OptimizationResult:
        statistics = self.run.statistics()
        statistics.update(self.counters)
        return OptimizationResult(
            status=status,
            model=model if model is not None else {},
            objective=objective,
            iterations=iterations,
            conflicts=self.run.conflicts,
            elapsed_seconds=time.monotonic() - self.start,
            statistics=statistics,
            final_core=self.final_core,
            core_labels=self.core_labels,
        )


class OptimizerStrategy(ABC):
    """Base class of objective-descent strategies.

    A strategy decides which bounds (or assumption sets) to probe in which
    order; the shared :class:`~repro.sat.session.SolveSession` machinery —
    the incremental solver and the BDD-style bound ladder — is common to
    all of them.
    """

    #: Registry name (canonical, lower-case).
    name: str = "base"

    #: One-line human-readable description (shown by ``--list-optimizers``).
    description: str = ""

    @abstractmethod
    def minimize(self, task: DescentTask) -> OptimizationResult:
        """Run the descent described by *task* and return its result."""


OptimizerFactory = Callable[[], OptimizerStrategy]


class OptimizerRegistry:
    """Name-indexed collection of optimizer-strategy factories.

    Mirrors :class:`repro.pipeline.registry.MapperRegistry`: factories are
    registered under a canonical name plus optional aliases, and a default
    module-level instance backs the convenience functions.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, OptimizerFactory] = {}
        self._aliases: Dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: Optional[OptimizerFactory] = None,
        *,
        aliases: Sequence[str] = (),
        overwrite: bool = False,
    ):
        """Register *factory* under *name* (usable as a decorator).

        Raises:
            ValueError: When a name is already taken and *overwrite* is off.
        """
        if factory is None:
            def decorator(func: OptimizerFactory) -> OptimizerFactory:
                self.register(name, func, aliases=aliases, overwrite=overwrite)
                return func
            return decorator

        key = name.lower()
        taken = [
            candidate
            for candidate in (key, *[alias.lower() for alias in aliases])
            if not overwrite and (candidate in self._factories or candidate in self._aliases)
        ]
        if taken:
            raise ValueError(f"optimizer name(s) already registered: {taken}")
        self._factories[key] = factory
        self._aliases.pop(key, None)
        for alias in aliases:
            self._aliases[alias.lower()] = key
        return factory

    def resolve(self, name: str) -> str:
        """Canonical name for *name* (which may be an alias).

        Raises:
            KeyError: When the name is unknown.
        """
        key = name.lower()
        key = self._aliases.get(key, key)
        if key not in self._factories:
            raise KeyError(
                f"unknown optimizer strategy {name!r}; available: {self.names()}"
            )
        return key

    def create(self, name: str) -> OptimizerStrategy:
        """Instantiate the strategy registered under *name*."""
        return self._factories[self.resolve(name)]()

    def names(self) -> List[str]:
        """Sorted canonical strategy names (aliases excluded)."""
        return sorted(self._factories)

    def descriptions(self) -> Dict[str, str]:
        """Canonical name -> one-line description, for listings."""
        return {name: self._factories[name]().description for name in self.names()}

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except KeyError:
            return False
        return True


#: The default registry used by the module-level convenience functions.
OPTIMIZERS = OptimizerRegistry()


def register_optimizer(
    name: str,
    factory: Optional[OptimizerFactory] = None,
    *,
    aliases: Sequence[str] = (),
    overwrite: bool = False,
):
    """Register a strategy in the default registry (see :meth:`OptimizerRegistry.register`)."""
    return OPTIMIZERS.register(name, factory, aliases=aliases, overwrite=overwrite)


def available_optimizers() -> List[str]:
    """Canonical strategy names registered in the default registry."""
    return OPTIMIZERS.names()


def optimizer_descriptions() -> Dict[str, str]:
    """Canonical strategy name -> one-line description."""
    return OPTIMIZERS.descriptions()


def resolve_optimizer_name(name: str) -> str:
    """Canonical name for *name* in the default registry.

    Raises:
        ValueError: When the name is unknown (with the available names in
            the message, so CLI layers can surface it directly).
    """
    try:
        return OPTIMIZERS.resolve(name)
    except KeyError as error:
        raise ValueError(error.args[0]) from None


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------
@register_optimizer("linear", aliases=("descent",))
class LinearDescent(OptimizerStrategy):
    """Monotone descent with permanently committed bounds."""

    name = "linear"
    description = (
        "monotone descent: find a model, commit F <= best-1, repeat until "
        "UNSAT (bounds propagate at level 0; fastest per probe)"
    )

    def minimize(self, task: DescentTask) -> OptimizationResult:
        session = task.session
        iterations = 0
        best_model: Dict[int, bool] = {}
        best_value: Optional[int] = None
        bound = task.upper_bound
        task.counters.setdefault("descent_iterations", 0)

        if task.incumbent_objective is not None:
            best_model = dict(task.incumbent_model or {})
            best_value = task.incumbent_objective
            if best_value == 0:
                return task.result("optimal", best_model, 0, iterations)
            bound = best_value - 1 if bound is None else min(bound, best_value - 1)

        while True:
            iterations += 1
            # The descent only ever tightens, so bounds are committed as
            # permanent unit clauses: they propagate at level 0 (as strongly
            # as a re-encoded formula) while the ladder is still shared.
            outcome = session.solve_with_bound(
                bound,
                conflict_limit=task.conflict_limit,
                time_limit=task.remaining(),
                commit=True,
            )
            if outcome is SolverResult.UNKNOWN:
                status = "satisfiable" if best_value is not None else "unknown"
                return task.result(status, best_model, best_value, iterations)
            if outcome is SolverResult.UNSAT:
                task.record_core()
                if best_value is None:
                    return task.result("unsat", iterations=iterations)
                return task.result("optimal", best_model, best_value, iterations)
            model = session.model()
            value = task.objective_value(model)
            task.counters["descent_iterations"] += 1
            if best_value is None or value < best_value:
                best_value = value
                best_model = model
            if best_value == 0:
                return task.result("optimal", best_model, 0, iterations)
            # Tighten: require an objective strictly below the incumbent.
            bound = best_value - 1


@register_optimizer("binary", aliases=("bisect", "bisection"))
class BinaryDescent(OptimizerStrategy):
    """Bisection of the objective range with assumed bounds."""

    name = "binary"
    description = (
        "bisection: halve the [0, incumbent] objective range with assumed "
        "bound selectors (fewest probes when the first model is far off)"
    )

    def minimize(self, task: DescentTask) -> OptimizationResult:
        session = task.session
        iterations = 0
        task.counters.setdefault("descent_iterations", 0)

        if task.incumbent_objective is not None:
            best_model = dict(task.incumbent_model or {})
            best_value = task.incumbent_objective
            if best_value == 0:
                return task.result("optimal", best_model, 0, iterations)
        else:
            # Initial feasibility check, seeded with the upper bound when
            # given (this also caps ``high`` of the bisection at the seed).
            iterations = 1
            outcome = session.solve_with_bound(
                task.upper_bound,
                conflict_limit=task.conflict_limit,
                time_limit=task.remaining(),
            )
            if outcome is SolverResult.UNKNOWN:
                return task.result("unknown", iterations=iterations)
            if outcome is SolverResult.UNSAT:
                task.record_core()
                return task.result("unsat", iterations=iterations)
            best_model = session.model()
            best_value = task.objective_value(best_model)
            task.counters["descent_iterations"] += 1

        low = 0
        high = best_value
        proven_optimal = True
        while low < high:
            middle = (low + high) // 2
            iterations += 1
            outcome = session.solve_with_bound(
                middle,
                conflict_limit=task.conflict_limit,
                time_limit=task.remaining(),
            )
            if outcome is SolverResult.UNKNOWN:
                proven_optimal = False
                break
            if outcome is SolverResult.SAT:
                model = session.model()
                value = task.objective_value(model)
                task.counters["descent_iterations"] += 1
                best_model = model
                best_value = value
                high = value
            else:
                task.record_core()
                low = middle + 1
        status = "optimal" if proven_optimal else "satisfiable"
        return task.result(status, best_model, best_value, iterations)


@register_optimizer("core", aliases=("core-guided", "core_guided", "maxsat"))
class CoreGuidedDescent(OptimizerStrategy):
    """MaxSAT-style descent driven by UNSAT cores over objective selectors."""

    name = "core"
    description = (
        "core-guided: assume all objective terms off, relax exactly the "
        "literals of each UNSAT core (lower bound rises by whole cores), "
        "then bisect the remaining [lower, incumbent] gap"
    )

    def minimize(self, task: DescentTask) -> OptimizationResult:
        session = task.session
        iterations = 0
        task.counters.setdefault("descent_iterations", 0)
        best_model: Dict[int, bool] = dict(task.incumbent_model or {})
        best_value = task.incumbent_objective

        # Merge duplicate selector literals (the same literal may appear in
        # several terms): assuming it off suppresses their combined weight,
        # so a core containing it is worth at least that combined minimum.
        selectors: Dict[int, int] = {}
        for weight, selector in session.term_selectors():
            selectors[selector] = selectors.get(selector, 0) + weight

        lower = 0
        cores_found = 0
        literals_relaxed = 0

        def stamp_counters() -> None:
            task.counters["cores_found"] = cores_found
            task.counters["core_literals_relaxed"] = literals_relaxed
            task.counters["core_lower_bound"] = lower

        # ------------------------------------------------------------------
        # Phase 1: disjoint-core lower bounding.  Assume every remaining
        # term off; every UNSAT answer yields a core over those selectors,
        # the core's literals are relaxed (removed from the assumption set)
        # and the proven lower bound rises by the core's cheapest weight.
        # ------------------------------------------------------------------
        while True:
            if best_value is not None and lower >= best_value:
                # The incumbent meets the proven lower bound: optimal
                # without ever probing the bound ladder.
                stamp_counters()
                return task.result("optimal", best_model, best_value, iterations)
            if task.upper_bound is not None and lower > task.upper_bound:
                # The cores prove every model costs more than the seeded
                # bound: unsatisfiable-within-bound, no descent needed.
                stamp_counters()
                return task.result("unsat", iterations=iterations)
            if not selectors:
                break
            iterations += 1
            outcome = session.solve_with_assumptions(
                list(selectors),
                conflict_limit=task.conflict_limit,
                time_limit=task.remaining(),
            )
            if outcome is SolverResult.UNKNOWN:
                stamp_counters()
                status = "satisfiable" if best_value is not None else "unknown"
                return task.result(status, best_model, best_value, iterations)
            if outcome is SolverResult.SAT:
                model = session.model()
                value = task.objective_value(model)
                task.counters["descent_iterations"] += 1
                if best_value is None or value < best_value:
                    best_model, best_value = model, value
                break
            core = session.last_core()
            task.record_core()
            if not core:
                # Hard constraints alone are inconsistent.
                stamp_counters()
                return task.result("unsat", iterations=iterations)
            lower += min(selectors[literal] for literal in core)
            cores_found += 1
            literals_relaxed += len(core)
            for literal in core:
                selectors.pop(literal, None)

        # ------------------------------------------------------------------
        # Phase 2: close the [lower, incumbent] gap by bisection on the
        # shared bound ladder (assumed selectors, same live session).
        # ------------------------------------------------------------------
        if best_value is None:
            # Every selector was relaxed without ever reaching SAT (only
            # possible with merged duplicate selectors); fall back to one
            # plain bounded solve for the first model.
            iterations += 1
            outcome = session.solve_with_bound(
                task.upper_bound,
                conflict_limit=task.conflict_limit,
                time_limit=task.remaining(),
            )
            if outcome is SolverResult.UNKNOWN:
                stamp_counters()
                return task.result("unknown", iterations=iterations)
            if outcome is SolverResult.UNSAT:
                task.record_core()
                stamp_counters()
                return task.result("unsat", iterations=iterations)
            best_model = session.model()
            best_value = task.objective_value(best_model)
            task.counters["descent_iterations"] += 1

        if task.upper_bound is not None and best_value > task.upper_bound:
            # The phase-1 model overshot the seeded bound; fetch one at or
            # below it (or prove there is none within the bound).
            iterations += 1
            outcome = session.solve_with_bound(
                task.upper_bound,
                conflict_limit=task.conflict_limit,
                time_limit=task.remaining(),
            )
            if outcome is SolverResult.UNKNOWN:
                stamp_counters()
                return task.result("satisfiable", best_model, best_value, iterations)
            if outcome is SolverResult.UNSAT:
                task.record_core()
                stamp_counters()
                return task.result("unsat", iterations=iterations)
            best_model = session.model()
            best_value = task.objective_value(best_model)
            task.counters["descent_iterations"] += 1

        low, high = lower, best_value
        proven_optimal = True
        while low < high:
            middle = (low + high) // 2
            iterations += 1
            outcome = session.solve_with_bound(
                middle,
                conflict_limit=task.conflict_limit,
                time_limit=task.remaining(),
            )
            if outcome is SolverResult.UNKNOWN:
                proven_optimal = False
                break
            if outcome is SolverResult.SAT:
                model = session.model()
                value = task.objective_value(model)
                task.counters["descent_iterations"] += 1
                best_model, best_value = model, value
                high = value
            else:
                task.record_core()
                low = middle + 1
        stamp_counters()
        status = "optimal" if proven_optimal else "satisfiable"
        return task.result(status, best_model, best_value, iterations)


class OptimizingSolver:
    """Minimises a weighted objective subject to a CNF formula.

    Args:
        cnf: The hard constraints.  The formula's variable pool is reused for
            the auxiliary variables of the objective-bound encodings.
        objective: The terms of the objective function ``F``.

    Example:
        >>> cnf = CNF()
        >>> a, b = cnf.new_var("a"), cnf.new_var("b")
        >>> cnf.add_clause([a, b])
        >>> opt = OptimizingSolver(cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)])
        >>> result = opt.minimize()
        >>> result.objective
        3
    """

    def __init__(self, cnf: CNF, objective: Sequence[ObjectiveTerm]):
        self.cnf = cnf
        self.objective = list(objective)

    # ------------------------------------------------------------------
    def _objective_terms(self) -> List[Tuple[int, Literal]]:
        return [(term.weight, term.literal) for term in self.objective]

    def _objective_value(self, model: Dict[int, bool]) -> int:
        return evaluate_pb(self._objective_terms(), model)

    def make_session(self) -> SolveSession:
        """A fresh persistent solving session for this instance.

        Sessions may be handed back to :meth:`minimize` (``session=...``) to
        keep learned clauses and bound encodings alive across calls — for
        example when the same instance is re-minimised under a tightened
        incumbent bound.
        """
        return SolveSession(self.cnf, self._objective_terms())

    # ------------------------------------------------------------------
    def minimize(
        self,
        strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        upper_bound: Optional[int] = None,
        session: Optional[SolveSession] = None,
        initial_model: Optional[Dict[int, bool]] = None,
        initial_objective: Optional[int] = None,
    ) -> OptimizationResult:
        """Find a model of minimal objective value.

        Args:
            strategy: Registry name of the descent strategy (``"linear"``,
                ``"binary"``, ``"core"`` or anything registered via
                :func:`register_optimizer`); all run on one incremental
                session.
            time_limit: Overall wall-clock budget in seconds.
            conflict_limit: Per-solver-call conflict budget.
            upper_bound: Known inclusive bound on the objective (for example
                from a heuristic solution).  The bound constrains the very
                first solve, so the search starts from the seeded bound
                instead of descending from an arbitrary first model.  A
                result with status ``"unsat"`` then means "no model with
                objective at most *upper_bound*" — the unseeded instance may
                still be satisfiable.
            session: A live session from :meth:`make_session` to solve on;
                learned clauses and bound encodings from earlier ``minimize``
                calls on it are reused.  A fresh session is built (and
                discarded) when omitted, which keeps repeated calls on the
                same instance fully independent.
            initial_model: A known feasible (possibly partial) assignment,
                used as the first incumbent: it seeds the solver's phases
                and counts as the first feasible solution, so the descent
                starts directly below its value.  Must be accompanied by
                *initial_objective* (partial assignments cannot be
                re-evaluated safely).  Ignored when it is worse than
                *upper_bound*.
            initial_objective: Objective value of *initial_model*.

        Returns:
            The :class:`OptimizationResult`; its objective never exceeds
            *upper_bound* when one was given.

        Raises:
            ValueError: On a negative bound, an unknown strategy name, or an
                initial model without its objective value (and vice versa).
        """
        if upper_bound is not None and upper_bound < 0:
            raise ValueError("upper_bound must be non-negative")
        if (initial_model is None) != (initial_objective is None):
            raise ValueError(
                "initial_model and initial_objective must be given together"
            )
        if initial_objective is not None and initial_objective < 0:
            raise ValueError("initial_objective must be non-negative")
        try:
            descent = OPTIMIZERS.create(strategy)
        except KeyError:
            raise ValueError(
                f"unknown optimisation strategy {strategy!r}; "
                f"available: {available_optimizers()}"
            ) from None
        run = _SessionRun(
            session if session is not None else self.make_session(),
            fresh=session is None,
        )
        incumbent_model: Optional[Dict[int, bool]] = None
        incumbent_objective: Optional[int] = None
        if initial_model is not None:
            if upper_bound is None or initial_objective <= upper_bound:
                incumbent_model = dict(initial_model)
                incumbent_objective = initial_objective
                run.session.seed_phases(initial_model)
        task = DescentTask(
            run=run,
            objective_value=self._objective_value,
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            upper_bound=upper_bound,
            incumbent_model=incumbent_model,
            incumbent_objective=incumbent_objective,
        )
        if incumbent_objective is not None:
            task.counters["model_seeded"] = 1
        return descent.minimize(task)


__all__ = [
    "ObjectiveTerm",
    "OptimizationResult",
    "OptimizingSolver",
    "OptimizerStrategy",
    "OptimizerRegistry",
    "OPTIMIZERS",
    "DescentTask",
    "register_optimizer",
    "available_optimizers",
    "optimizer_descriptions",
    "resolve_optimizer_name",
]
