"""Minimisation of a weighted linear objective over a CNF formula.

This implements the "extended interpretation" of the satisfiability problem
from Definition 3 of the paper: besides a satisfying assignment of the hard
constraints, an assignment minimising ``F = sum(w_i * literal_i)`` is sought.

Both search strategies run on one persistent
:class:`~repro.sat.session.SolveSession` — a single incremental solver on
which objective bounds are *assumed* rather than re-encoded, so learned
clauses, variable activities and saved phases carry over from probe to
probe:

* ``"linear"`` (default) — solve once, read off the objective value of the
  model, then repeatedly assume ``F <= best - 1`` until the instance becomes
  unsatisfiable under the assumption.  The last model found is optimal.
* ``"binary"`` — bisect the objective range; every probe is an assumption
  on the same solver (an UNSAT probe does not poison later, looser probes).

Both return an :class:`OptimizationResult`; when a time or conflict budget is
exhausted the best model found so far is returned with ``is_optimal=False``
(this mirrors the paper's "close-to-minimal" discussion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Literal
from repro.sat.pb import evaluate_pb
from repro.sat.session import SolveSession
from repro.sat.solver import SolverResult


@dataclass(frozen=True)
class ObjectiveTerm:
    """One weighted term ``weight * [literal is true]`` of the objective."""

    weight: int
    literal: Literal

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("objective weights must be non-negative")
        if self.literal == 0:
            raise ValueError("0 is not a valid literal")


@dataclass
class OptimizationResult:
    """Outcome of an optimisation run.

    Attributes:
        status: ``"optimal"``, ``"satisfiable"`` (feasible but optimality not
            proven within the budget), ``"unsat"`` or ``"unknown"``.
        model: Best model found (empty when none was found).
        objective: Objective value of :attr:`model` (``None`` when no model).
        iterations: Number of solver calls performed.
        conflicts: Total number of conflicts across all solver calls.
        elapsed_seconds: Wall-clock time spent.
        statistics: Incremental-session counters for this run: bound-ladder
            nodes created/reused, bound clauses added, assumption solves,
            learned clauses retained on the live solver afterwards, and
            whether a fresh solver had to be built (``fresh_solver``).
    """

    status: str
    model: Dict[int, bool] = field(default_factory=dict)
    objective: Optional[int] = None
    iterations: int = 0
    conflicts: int = 0
    elapsed_seconds: float = 0.0
    statistics: Dict[str, int] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        """True when the returned model is provably minimal."""
        return self.status == "optimal"

    @property
    def is_satisfiable(self) -> bool:
        """True when at least one model was found."""
        return self.status in ("optimal", "satisfiable")


class _SessionRun:
    """Bookkeeping for one ``minimize`` call on a (possibly reused) session."""

    def __init__(self, session: SolveSession, fresh: bool):
        self.session = session
        self.fresh = fresh
        self._start_conflicts = session.conflicts
        self._start_stats = dict(session.statistics)

    @property
    def conflicts(self) -> int:
        return self.session.conflicts - self._start_conflicts

    def statistics(self) -> Dict[str, int]:
        stats = {
            key: self.session.statistics[key] - self._start_stats.get(key, 0)
            for key in self.session.statistics
        }
        stats["learned_clauses_retained"] = self.session.learned_clauses
        stats["fresh_solver"] = int(self.fresh)
        return stats


class OptimizingSolver:
    """Minimises a weighted objective subject to a CNF formula.

    Args:
        cnf: The hard constraints.  The formula's variable pool is reused for
            the auxiliary variables of the objective-bound encodings.
        objective: The terms of the objective function ``F``.

    Example:
        >>> cnf = CNF()
        >>> a, b = cnf.new_var("a"), cnf.new_var("b")
        >>> cnf.add_clause([a, b])
        >>> opt = OptimizingSolver(cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)])
        >>> result = opt.minimize()
        >>> result.objective
        3
    """

    def __init__(self, cnf: CNF, objective: Sequence[ObjectiveTerm]):
        self.cnf = cnf
        self.objective = list(objective)

    # ------------------------------------------------------------------
    def _objective_terms(self) -> List[Tuple[int, Literal]]:
        return [(term.weight, term.literal) for term in self.objective]

    def _objective_value(self, model: Dict[int, bool]) -> int:
        return evaluate_pb(self._objective_terms(), model)

    def make_session(self) -> SolveSession:
        """A fresh persistent solving session for this instance.

        Sessions may be handed back to :meth:`minimize` (``session=...``) to
        keep learned clauses and bound encodings alive across calls — for
        example when the same instance is re-minimised under a tightened
        incumbent bound.
        """
        return SolveSession(self.cnf, self._objective_terms())

    # ------------------------------------------------------------------
    def minimize(
        self,
        strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        upper_bound: Optional[int] = None,
        session: Optional[SolveSession] = None,
    ) -> OptimizationResult:
        """Find a model of minimal objective value.

        Args:
            strategy: ``"linear"`` (incremental descent) or ``"binary"``
                (bisection); both run on one incremental session.
            time_limit: Overall wall-clock budget in seconds.
            conflict_limit: Per-solver-call conflict budget.
            upper_bound: Known inclusive bound on the objective (for example
                from a heuristic solution).  The bound is *assumed* for the
                very first solve, so the search starts from the seeded bound
                instead of descending from an arbitrary first model.  A
                result with status ``"unsat"`` then means "no model with
                objective at most *upper_bound*" — the unseeded instance may
                still be satisfiable.
            session: A live session from :meth:`make_session` to solve on;
                learned clauses and bound encodings from earlier ``minimize``
                calls on it are reused.  A fresh session is built (and
                discarded) when omitted, which keeps repeated calls on the
                same instance fully independent.

        Returns:
            The :class:`OptimizationResult`; its objective never exceeds
            *upper_bound* when one was given.
        """
        if upper_bound is not None and upper_bound < 0:
            raise ValueError("upper_bound must be non-negative")
        run = _SessionRun(
            session if session is not None else self.make_session(),
            fresh=session is None,
        )
        if strategy == "linear":
            return self._minimize_linear(run, time_limit, conflict_limit, upper_bound)
        if strategy == "binary":
            return self._minimize_binary(run, time_limit, conflict_limit, upper_bound)
        raise ValueError(f"unknown optimisation strategy {strategy!r}")

    # ------------------------------------------------------------------
    def _remaining(self, start: float, time_limit: Optional[float]) -> Optional[float]:
        if time_limit is None:
            return None
        return max(0.001, time_limit - (time.monotonic() - start))

    def _result(
        self,
        run: _SessionRun,
        start: float,
        status: str,
        model: Optional[Dict[int, bool]] = None,
        objective: Optional[int] = None,
        iterations: int = 0,
    ) -> OptimizationResult:
        return OptimizationResult(
            status=status,
            model=model if model is not None else {},
            objective=objective,
            iterations=iterations,
            conflicts=run.conflicts,
            elapsed_seconds=time.monotonic() - start,
            statistics=run.statistics(),
        )

    def _minimize_linear(
        self,
        run: _SessionRun,
        time_limit: Optional[float],
        conflict_limit: Optional[int],
        upper_bound: Optional[int] = None,
    ) -> OptimizationResult:
        start = time.monotonic()
        session = run.session
        iterations = 0
        best_model: Dict[int, bool] = {}
        best_value: Optional[int] = None
        bound = upper_bound

        while True:
            iterations += 1
            # The descent only ever tightens, so bounds are committed as
            # permanent unit clauses: they propagate at level 0 (as strongly
            # as a re-encoded formula) while the ladder is still shared.
            outcome = session.solve_with_bound(
                bound,
                conflict_limit=conflict_limit,
                time_limit=self._remaining(start, time_limit),
                commit=True,
            )
            if outcome is SolverResult.UNKNOWN:
                status = "satisfiable" if best_value is not None else "unknown"
                return self._result(
                    run, start, status, best_model, best_value, iterations
                )
            if outcome is SolverResult.UNSAT:
                if best_value is None:
                    return self._result(run, start, "unsat", iterations=iterations)
                return self._result(
                    run, start, "optimal", best_model, best_value, iterations
                )
            model = session.model()
            value = self._objective_value(model)
            if best_value is None or value < best_value:
                best_value = value
                best_model = model
            if best_value == 0:
                return self._result(
                    run, start, "optimal", best_model, 0, iterations
                )
            # Tighten: require an objective strictly below the incumbent.
            bound = best_value - 1

    def _minimize_binary(
        self,
        run: _SessionRun,
        time_limit: Optional[float],
        conflict_limit: Optional[int],
        upper_bound: Optional[int] = None,
    ) -> OptimizationResult:
        start = time.monotonic()
        session = run.session
        iterations = 1

        # Initial feasibility check, seeded with the upper bound when given
        # (this also caps ``high`` of the bisection at the seed).
        outcome = session.solve_with_bound(
            upper_bound,
            conflict_limit=conflict_limit,
            time_limit=self._remaining(start, time_limit),
        )
        if outcome is SolverResult.UNKNOWN:
            return self._result(run, start, "unknown", iterations=iterations)
        if outcome is SolverResult.UNSAT:
            return self._result(run, start, "unsat", iterations=iterations)
        best_model = session.model()
        best_value = self._objective_value(best_model)

        low = 0
        high = best_value
        proven_optimal = True
        while low < high:
            middle = (low + high) // 2
            iterations += 1
            outcome = session.solve_with_bound(
                middle,
                conflict_limit=conflict_limit,
                time_limit=self._remaining(start, time_limit),
            )
            if outcome is SolverResult.UNKNOWN:
                proven_optimal = False
                break
            if outcome is SolverResult.SAT:
                model = session.model()
                value = self._objective_value(model)
                best_model = model
                best_value = value
                high = value
            else:
                low = middle + 1
        status = "optimal" if proven_optimal else "satisfiable"
        return self._result(run, start, status, best_model, best_value, iterations)


__all__ = ["ObjectiveTerm", "OptimizationResult", "OptimizingSolver"]
