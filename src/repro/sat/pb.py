"""Pseudo-Boolean constraints: ``sum(w_i * literal_i) <= bound``.

The objective function of the paper (Eq. 5) is a weighted sum of the ``y``
and ``z`` variables.  To minimise it with a plain SAT solver we repeatedly
assert upper bounds on the objective; each bound is a pseudo-Boolean
"less-or-equal" constraint, encoded here with a memoised BDD-style expansion
(each node states "the weighted sum of the remaining terms is at most b").
The encoding is polynomial in ``len(terms) * bound`` and produces only
implication clauses, which propagate well.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Literal


class PBError(ValueError):
    """Raised on malformed pseudo-Boolean constraints."""


def encode_pb_leq(
    cnf: CNF,
    terms: Sequence[Tuple[int, Literal]],
    bound: int,
    prefix: str = "pb",
) -> None:
    """Assert ``sum(weight_i * [literal_i is true]) <= bound``.

    Args:
        cnf: Formula to extend.
        terms: Sequence of ``(weight, literal)`` pairs; weights must be
            non-negative integers.  Zero-weight terms are ignored.
        bound: Non-negative upper bound.
        prefix: Name prefix for auxiliary variables.

    Raises:
        PBError: On negative weights or a negative bound.
    """
    if bound < 0:
        raise PBError("bound must be non-negative")
    filtered: List[Tuple[int, Literal]] = []
    for weight, literal in terms:
        if weight < 0:
            raise PBError("weights must be non-negative")
        if weight == 0:
            continue
        filtered.append((int(weight), literal))
    # Sort heaviest first: the BDD stays smaller and propagates earlier.
    filtered.sort(key=lambda item: -item[0])

    total = sum(weight for weight, _ in filtered)
    if total <= bound:
        return
    # Terms whose weight alone exceeds the bound must be false.
    remaining: List[Tuple[int, Literal]] = []
    for weight, literal in filtered:
        if weight > bound:
            cnf.add_clause([-literal])
        else:
            remaining.append((weight, literal))
    if not remaining:
        return

    suffix_totals = [0] * (len(remaining) + 1)
    for index in range(len(remaining) - 1, -1, -1):
        suffix_totals[index] = suffix_totals[index + 1] + remaining[index][0]

    # node(index, budget) is a literal meaning "the weighted sum of
    # remaining[index:] is at most budget".  TRUE and FALSE leaves are
    # represented by None markers in the cache with special handling.
    cache: Dict[Tuple[int, int], Optional[int]] = {}

    def build(index: int, budget: int) -> Optional[int]:
        """Return a literal for node(index, budget); None means trivially true."""
        if budget < 0:
            raise PBError("internal error: negative budget reached a build call")
        if suffix_totals[index] <= budget:
            return None  # trivially satisfiable: no constraint needed
        key = (index, budget)
        if key in cache:
            return cache[key]
        weight, literal = remaining[index]
        node = cnf.new_var(f"{prefix}_n{index}_{budget}")
        cache[key] = node
        # Case literal false: remaining budget unchanged.
        low = build(index + 1, budget)
        if low is not None:
            cnf.add_clause([-node, literal, low])
        # Case literal true: budget shrinks by weight.
        if weight > budget:
            cnf.add_clause([-node, -literal])
        else:
            high = build(index + 1, budget - weight)
            if high is not None:
                cnf.add_clause([-node, -literal, high])
        return node

    root = build(0, bound)
    if root is not None:
        cnf.add_clause([root])


def evaluate_pb(terms: Sequence[Tuple[int, Literal]], model: Dict[int, bool]) -> int:
    """Evaluate ``sum(weight_i * [literal_i is true])`` under *model*."""
    total = 0
    for weight, literal in terms:
        value = model.get(abs(literal), False)
        if literal < 0:
            value = not value
        if value:
            total += weight
    return total


__all__ = ["encode_pb_leq", "evaluate_pb", "PBError"]
