"""The CDCL solver core: flat clause arena, watched literals, VSIDS heap.

This module is the implementation behind :class:`repro.sat.solver.CDCLSolver`.
It exists in two interchangeable forms: imported directly (the *pure* Python
backend) or compiled to a native extension (the *compiled* backend, built as
``repro.sat._solver_core_c`` by ``setup.py`` when Cython or mypyc is
available).  Both forms execute the identical source, so models and the
``conflicts`` / ``decisions`` / ``propagations`` counters are bit-for-bit
identical between backends — the differential tests and the perf-smoke pins
enforce this.

Data layout (the "flat clause arena")
-------------------------------------

Clauses are not objects.  All clause data lives in one flat ``list[int]``,
``_arena``; a *clause reference* (cref) is the arena offset of the clause's
first literal, preceded by a two-int header::

    _arena[cref - 2]   number of literals
    _arena[cref - 1]   learned sequence id (-1 for problem clauses)
    _arena[cref + k]   literal k (DIMACS convention)

The hottest loop (:meth:`CDCLSolver._propagate`) therefore touches only flat
``list`` indexing — no attribute lookups, no per-clause Python objects, and
watch lists are plain ``list[int]`` of crefs compacted in place instead of
being reallocated per propagated literal.  Watched literals always sit at
positions 0 and 1; while a clause is the *reason* of an assignment the
implied literal sits at position 0 (the invariant conflict analysis relies
on).  Learned-clause activities live in a side dict keyed by cref (touched
only during conflict analysis, never during propagation).  Deleting learned
clauses leaves garbage in the arena; when more than half the arena is
garbage it is compacted and every cref (watch lists, reasons on the trail,
clause lists, activities) is remapped.

Branching (the "VSIDS order heap")
----------------------------------

``_pick_branch_variable`` used to scan all variables linearly on every
decision.  It now pops from an *indexed binary max-heap* ordered by
``(activity, -var)`` — exactly the argmax the linear scan computed, so the
decision sequence is unchanged.  Assigned variables are removed lazily (pop
and discard), unassigned variables re-enter the heap during backtracking,
and activity bumps sift in place.  Because a VSIDS rescale multiplies every
activity by the same constant, it can only *collapse* unequal activities
into ties (never reorder), so the heap is rebuilt after each rescale to keep
the tie-break-by-variable order exact.  ``benchmarks/micro_solver.py
branching`` replays a recorded churn profile against the rejected designs
(linear scan, lazy ``heapq``) to justify this one.

The public API and the search behaviour (first-UIP learning, phase saving,
Luby restarts, assumption handling, export/import seq boundaries, learned
clause reduction) are documented on :mod:`repro.sat.solver`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import faults
from repro.sat._result import SolverResult
from repro.sat.cnf import CNF, Literal


class CDCLSolver:
    """Conflict-driven clause-learning SAT solver (flat-arena core).

    Example:
        >>> solver = CDCLSolver()
        >>> solver.add_clause([1, 2])
        >>> solver.add_clause([-1, 2])
        >>> solver.solve()
        <SolverResult.SAT: 'sat'>
        >>> solver.model()[2]
        True
    """

    def __init__(self, cnf: Optional[CNF] = None):
        self._num_vars = 0
        # Indexed by variable (1-based): None / True / False.
        self._assign: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        # Reason cref per variable; 0 = decision / assumption / no reason.
        self._reason: List[int] = [0]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        # Flat clause storage; see the module docstring for the layout.
        self._arena: List[int] = []
        self._arena_waste = 0
        self._clauses: List[int] = []
        self._learned: List[int] = []
        self._cla_act: Dict[int, float] = {}
        # Watch lists indexed by encoded literal (2v for +v, 2v+1 for -v),
        # holding crefs of clauses watching the literal's negation.
        self._watches: List[List[int]] = [[], []]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagation_head = 0
        # VSIDS order heap: _heap holds variables, _heap_pos maps a variable
        # to its heap index (-1 when absent).  Invariant: every unassigned
        # variable is in the heap (assigned ones may linger and are skipped).
        self._heap: List[int] = []
        self._heap_pos: List[int] = [-1]
        # Scratch for conflict analysis (persistent to avoid per-conflict
        # allocation; always all-zero between calls).
        self._seen = bytearray(1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._unsat = False
        self._pending_units: List[int] = []
        self._last_core: Tuple[int, ...] = ()
        self._learned_seq = 0
        self._export_boundary: Optional[int] = None
        # Learned unit clauses (seq, literal): implied by the formula alone,
        # the strongest clauses to share, but they live on the trail rather
        # than in self._learned, so they are recorded separately.
        self._learned_units: List[Tuple[int, int]] = []
        self._import_keys: set = set()
        self._interrupt_requested = False
        self.statistics: Dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned_deleted": 0,
            "clauses_imported": 0,
            "import_duplicates": 0,
        }
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def _ensure_var(self, var: int) -> None:
        """Grow every per-variable array to cover *var* (batched).

        Encodings allocate thousands of variables at once (``add_cnf``
        ensures the pool's maximum up front), so growth happens in one
        ``extend`` per array instead of one append per variable.
        """
        num = self._num_vars
        if var <= num:
            return
        grow = var - num
        self._num_vars = var
        self._assign.extend([None] * grow)
        self._level.extend([0] * grow)
        self._reason.extend([0] * grow)
        self._activity.extend([0.0] * grow)
        self._phase.extend([False] * grow)
        self._seen.extend(b"\x00" * grow)
        watches = self._watches
        for _ in range(2 * grow):
            watches.append([])
        # New variables go straight to the bottom of the heap: their
        # activity (0.0) is minimal and their index exceeds every variable
        # already present, so the (activity, -var) heap property holds
        # without sifting.
        heap = self._heap
        self._heap_pos.extend(range(len(heap), len(heap) + grow))
        heap.extend(range(num + 1, var + 1))

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause (DIMACS literals).  May be called between solves."""
        unique: List[int] = []
        seen = set()
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if literal in seen:
                continue
            if -literal in seen:
                return  # tautology, nothing to add
            seen.add(literal)
            unique.append(literal)
            self._ensure_var(abs(literal))
        if not unique:
            self._unsat = True
            return
        if len(unique) == 1:
            self._pending_units.append(unique[0])
            return
        cref = self._new_clause(unique, -1)
        self._clauses.append(cref)
        self._attach(cref)

    def add_cnf(self, cnf: CNF) -> None:
        """Add every clause of *cnf*."""
        self._ensure_var(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    @property
    def num_vars(self) -> int:
        """Highest variable index seen so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learned) clauses."""
        return len(self._clauses)

    @property
    def num_learned(self) -> int:
        """Number of learned clauses currently kept (persist across solves)."""
        return len(self._learned)

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    def _new_clause(self, literals: List[int], seq: int) -> int:
        """Append a clause to the arena; returns its cref."""
        arena = self._arena
        arena.append(len(literals))
        arena.append(seq)
        cref = len(arena)
        arena.extend(literals)
        return cref

    @staticmethod
    def _enc(literal: int) -> int:
        """Encode a DIMACS literal as a watch-list index."""
        var = abs(literal)
        return 2 * var if literal > 0 else 2 * var + 1

    def _value(self, literal: int) -> Optional[bool]:
        value = self._assign[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _attach(self, cref: int) -> None:
        arena = self._arena
        watches = self._watches
        first = arena[cref]
        second = arena[cref + 1]
        # Inlined _enc(-first) / _enc(-second).
        watches[2 * first + 1 if first > 0 else -2 * first].append(cref)
        watches[2 * second + 1 if second > 0 else -2 * second].append(cref)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: int, reason: int) -> bool:
        """Assign *literal* true.  Returns False when it contradicts the trail."""
        current = self._value(literal)
        if current is not None:
            return current
        var = abs(literal)
        self._assign[var] = literal > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = literal > 0
        self._trail.append(literal)
        return True

    # ------------------------------------------------------------------
    # VSIDS order heap
    # ------------------------------------------------------------------
    # Max-heap ordered by (activity, -var): a sits above b when its activity
    # is strictly larger, or equal with the smaller variable index — the
    # exact argmax the old linear scan computed, so decisions are unchanged.
    def _heap_sift_up(self, idx: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        act = self._activity
        var = heap[idx]
        a = act[var]
        while idx > 0:
            parent = (idx - 1) >> 1
            pvar = heap[parent]
            pa = act[pvar]
            if a > pa or (a == pa and var < pvar):
                heap[idx] = pvar
                pos[pvar] = idx
                idx = parent
            else:
                break
        heap[idx] = var
        pos[var] = idx

    def _heap_sift_down(self, idx: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        act = self._activity
        size = len(heap)
        var = heap[idx]
        a = act[var]
        while True:
            child = 2 * idx + 1
            if child >= size:
                break
            cvar = heap[child]
            ca = act[cvar]
            right = child + 1
            if right < size:
                rvar = heap[right]
                ra = act[rvar]
                if ra > ca or (ra == ca and rvar < cvar):
                    child = right
                    cvar = rvar
                    ca = ra
            if ca > a or (ca == a and cvar < var):
                heap[idx] = cvar
                pos[cvar] = idx
                idx = child
            else:
                break
        heap[idx] = var
        pos[var] = idx

    def _heap_insert(self, var: int) -> None:
        heap = self._heap
        self._heap_pos[var] = len(heap)
        heap.append(var)
        self._heap_sift_up(len(heap) - 1)

    def _heap_pop(self) -> int:
        heap = self._heap
        pos = self._heap_pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._heap_sift_down(0)
        return top

    def _heap_rebuild(self) -> None:
        """Re-heapify after a rescale changed every activity at once."""
        for idx in range(len(self._heap) // 2 - 1, -1, -1):
            self._heap_sift_down(idx)

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        act = self._activity
        value = act[var] + self._var_inc
        act[var] = value
        if value > 1e100:
            for v in range(1, self._num_vars + 1):
                act[v] *= 1e-100
            self._var_inc *= 1e-100
            # The uniform rescale may collapse distinct activities into
            # ties; rebuild so the tie-break-by-variable order stays exact.
            self._heap_rebuild()
        else:
            idx = self._heap_pos[var]
            if idx >= 0:
                self._heap_sift_up(idx)

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, cref: int) -> None:
        act = self._cla_act
        value = act[cref] + self._cla_inc
        act[cref] = value
        if value > 1e20:
            for learned in self._learned:
                act[learned] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._cla_decay

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """First-UIP conflict analysis (MiniSat style).

        Returns:
            The learned clause with the asserting literal first, and the
            decision level to backjump to.
        """
        arena = self._arena
        level = self._level
        trail = self._trail
        reasons = self._reason
        seen = self._seen
        learned: List[int] = [0]  # placeholder for the asserting literal
        to_clear: List[int] = []
        path_count = 0
        popped_literal = 0
        reason = conflict
        index = len(trail) - 1
        current_level = len(self._trail_lim)

        while True:
            if arena[reason - 1] >= 0:  # learned clause
                self._bump_clause(reason)
            # Skip the implied literal (position 0) for reason clauses; the
            # conflict clause (first iteration) is scanned in full.
            start = reason if popped_literal == 0 else reason + 1
            end = reason + arena[reason - 2]
            for offset in range(start, end):
                clause_literal = arena[offset]
                var = clause_literal if clause_literal > 0 else -clause_literal
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._bump_var(var)
                    if level[var] >= current_level:
                        path_count += 1
                    else:
                        learned.append(clause_literal)
            # Select the next current-level literal to resolve on.
            while True:
                literal = trail[index]
                if seen[literal if literal > 0 else -literal]:
                    break
                index -= 1
            popped_literal = trail[index]
            index -= 1
            var = popped_literal if popped_literal > 0 else -popped_literal
            seen[var] = 0
            reason = reasons[var]
            path_count -= 1
            if path_count == 0:
                break
        learned[0] = -popped_literal
        for var in to_clear:
            seen[var] = 0

        # Backjump level: highest level among the non-asserting literals.
        backjump = 0
        for literal in learned[1:]:
            var_level = level[literal if literal > 0 else -literal]
            if var_level > backjump:
                backjump = var_level
        return learned, backjump

    def _analyze_final(self, failed: int) -> Tuple[int, ...]:
        """Assumptions responsible for falsifying the assumption *failed*.

        MiniSat's ``analyzeFinal``: walk the trail backwards from the point
        where ``-failed`` ended up assigned and resolve every implied literal
        with its reason clause; pseudo-decisions (the earlier assumptions)
        that remain are the ones the conflict actually depends on.  Only
        assumption levels exist when this runs — the free search never
        starts before all assumptions are established.

        Returns:
            The failing subset of the assumption literals, *failed* included.
        """
        core = [failed]
        if not self._trail_lim:
            # -failed is forced at level 0: the formula alone refutes it.
            return tuple(core)
        arena = self._arena
        seen = {abs(failed)}
        for literal in reversed(self._trail[self._trail_lim[0]:]):
            var = abs(literal)
            if var not in seen:
                continue
            seen.discard(var)
            reason = self._reason[var]
            if reason == 0:
                # A pseudo-decision, i.e. one of the earlier assumptions.
                core.append(literal)
            else:
                # The implied literal sits at position 0; resolve on the rest.
                end = reason + arena[reason - 2]
                for offset in range(reason + 1, end):
                    clause_literal = arena[offset]
                    if self._level[abs(clause_literal)] > 0:
                        seen.add(abs(clause_literal))
        return tuple(core)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        trail = self._trail
        assign = self._assign
        reasons = self._reason
        pos = self._heap_pos
        for literal in reversed(trail[target:]):
            var = literal if literal > 0 else -literal
            assign[var] = None
            reasons[var] = 0
            # Popped decision variables must re-enter the order heap the
            # moment they are unassigned (propagated variables were never
            # removed and are skipped).
            if pos[var] < 0:
                self._heap_insert(var)
        del trail[target:]
        del self._trail_lim[level:]
        self._propagation_head = len(trail)

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> int:
        """Propagate all enqueued assignments.

        Returns the cref of a conflicting clause, or 0 when the assignment
        propagated without conflict.  This is the solver's hottest loop (the
        large majority of the wall clock on the mapping encodings): it works
        exclusively on flat int lists — the clause arena, in-place-compacted
        watch lists of crefs — with the enqueue inlined, so no Python object
        or attribute traffic survives in the loop body.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        arena = self._arena
        level = self._level
        reasons = self._reason
        phase = self._phase
        current_level = len(self._trail_lim)
        head = self._propagation_head
        propagations = 0
        conflict = 0
        while head < len(trail):
            literal = trail[head]
            head += 1
            propagations += 1
            neg_literal = -literal
            # Inlined _enc(literal).
            watchers = watches[2 * literal if literal > 0 else -2 * literal + 1]
            read = 0
            write = 0
            num_watchers = len(watchers)
            while read < num_watchers:
                cref = watchers[read]
                read += 1
                # Make sure the falsified watched literal sits at position 1.
                first = arena[cref]
                if first == neg_literal:
                    first = arena[cref + 1]
                    arena[cref] = first
                    arena[cref + 1] = neg_literal
                # Inlined _value(first) is True: clause already satisfied.
                value = assign[first] if first > 0 else assign[-first]
                if value is not None and (value if first > 0 else not value):
                    watchers[write] = cref
                    write += 1
                    continue
                # Look for a new literal to watch.
                end = cref + arena[cref - 2]
                offset = cref + 2
                found = False
                while offset < end:
                    other = arena[offset]
                    other_value = assign[other] if other > 0 else assign[-other]
                    if other_value is None or (
                        other_value if other > 0 else not other_value
                    ):
                        arena[cref + 1] = other
                        arena[offset] = neg_literal
                        # Inlined _enc(-other).
                        watches[
                            2 * other + 1 if other > 0 else -2 * other
                        ].append(cref)
                        found = True
                        break
                    offset += 1
                if found:
                    continue
                # Clause is unit or conflicting; keep watching the false
                # literal.
                watchers[write] = cref
                write += 1
                if value is not None:
                    # first is False: conflicting clause.  Keep the not yet
                    # visited watchers and stop.
                    while read < num_watchers:
                        watchers[write] = watchers[read]
                        write += 1
                        read += 1
                    conflict = cref
                    break
                # Unit clause: inlined _enqueue(first, cref) — first is
                # known unassigned here.
                if first > 0:
                    assign[first] = True
                    level[first] = current_level
                    reasons[first] = cref
                    phase[first] = True
                else:
                    var = -first
                    assign[var] = False
                    level[var] = current_level
                    reasons[var] = cref
                    phase[var] = False
                trail.append(first)
            del watchers[write:]
            if conflict:
                self._propagation_head = len(trail)
                self.statistics["propagations"] += propagations
                return conflict
        self._propagation_head = head
        self.statistics["propagations"] += propagations
        return 0

    # ------------------------------------------------------------------
    # Decisions and restarts
    # ------------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        # Pop the (activity, -var) maximum; assigned variables are removed
        # lazily — they re-enter the heap when backtracking unassigns them.
        assign = self._assign
        heap = self._heap
        while heap:
            var = self._heap_pop()
            if assign[var] is None:
                return var
        return None

    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ... (1-based index)."""
        i = max(1, index)
        while True:
            k = i.bit_length()
            if i == (1 << k) - 1:
                return 1 << (k - 1)
            i = i - (1 << (k - 1)) + 1

    def _reduce_learned(self) -> None:
        """Delete the less active half of the long learned clauses."""
        learned = self._learned
        if len(learned) < 2000:
            return
        arena = self._arena
        reasons = self._reason
        locked = set()
        for literal in self._trail:
            reason = reasons[literal if literal > 0 else -literal]
            if reason:
                locked.add(reason)
        act = self._cla_act
        learned.sort(key=act.__getitem__)
        keep: List[int] = []
        to_delete = set()
        half = len(learned) // 2
        waste = 0
        for position, cref in enumerate(learned):
            if position < half and arena[cref - 2] > 2 and cref not in locked:
                to_delete.add(cref)
                waste += arena[cref - 2] + 2
                self.statistics["learned_deleted"] += 1
            else:
                keep.append(cref)
        if not to_delete:
            return
        self._learned = keep
        for cref in to_delete:
            del act[cref]
        watches = self._watches
        for index, watch_list in enumerate(watches):
            watches[index] = [
                cref for cref in watch_list if cref not in to_delete
            ]
        self._arena_waste += waste
        if self._arena_waste > 4096 and self._arena_waste * 2 > len(arena):
            self._compact_arena()

    def _compact_arena(self) -> None:
        """Copy live clauses into a fresh arena, remapping every cref.

        Triggered when deleted learned clauses have turned more than half
        the arena into garbage.  Crefs appear in the clause lists, the watch
        lists, the reasons of trail literals and the activity table — all are
        rewritten; cref values carry no meaning beyond identity, so the
        search is unaffected.
        """
        old = self._arena
        fresh: List[int] = []
        remap: Dict[int, int] = {}
        for refs in (self._clauses, self._learned):
            for index, cref in enumerate(refs):
                size = old[cref - 2]
                fresh.append(size)
                fresh.append(old[cref - 1])
                new_cref = len(fresh)
                fresh.extend(old[cref:cref + size])
                remap[cref] = new_cref
                refs[index] = new_cref
        self._arena = fresh
        self._arena_waste = 0
        watches = self._watches
        for index, watch_list in enumerate(watches):
            watches[index] = [remap[cref] for cref in watch_list]
        reasons = self._reason
        for literal in self._trail:
            var = literal if literal > 0 else -literal
            reason = reasons[var]
            if reason:
                reasons[var] = remap[reason]
        self._cla_act = {
            remap[cref]: activity for cref, activity in self._cla_act.items()
        }

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        assumptions: Optional[Iterable[int]] = None,
    ) -> SolverResult:
        """Run the CDCL search.

        Args:
            conflict_limit: Abort with :attr:`SolverResult.UNKNOWN` after this
                many conflicts (``None`` = unlimited).
            time_limit: Abort with :attr:`SolverResult.UNKNOWN` after this many
                seconds (``None`` = unlimited).
            assumptions: Literals assumed true for this call only.  They are
                enqueued as pseudo-decisions before the free search, so a
                :attr:`SolverResult.SAT` model satisfies all of them, and an
                :attr:`SolverResult.UNSAT` answer means "unsatisfiable under
                these assumptions" — the solver stays usable and a later call
                without (or with other) assumptions is unaffected.

        Returns:
            :attr:`SolverResult.SAT`, :attr:`SolverResult.UNSAT` or
            :attr:`SolverResult.UNKNOWN`.
        """
        if self._interrupt_requested:
            # Interrupted between calls (a cancelled job whose descent loop
            # is still issuing probes): answer UNKNOWN without searching.
            self._last_core = ()
            return SolverResult.UNKNOWN
        assumption_list: List[int] = []
        if assumptions is not None:
            for literal in assumptions:
                if literal == 0:
                    raise ValueError("0 is not a valid literal")
                assumption_list.append(literal)
                self._ensure_var(abs(literal))
        # An empty core is the default: it stays empty on SAT/UNKNOWN and on
        # UNSAT answers that hold regardless of the assumptions.
        self._last_core = ()
        if self._unsat:
            return SolverResult.UNSAT
        start_time = time.monotonic()
        self._backtrack(0)
        # Re-propagate the whole level-0 trail so that clauses added since the
        # previous call are taken into account.
        self._propagation_head = 0
        while self._pending_units:
            literal = self._pending_units.pop()
            self._ensure_var(abs(literal))
            if not self._enqueue(literal, 0):
                self._unsat = True
                return SolverResult.UNSAT
        if self._propagate():
            self._unsat = True
            return SolverResult.UNSAT

        total_conflicts = 0
        restart_count = 0
        restart_limit = 100 * self._luby(restart_count + 1)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict:
                self.statistics["conflicts"] += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._unsat = True
                    return SolverResult.UNSAT
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                seq = self._learned_seq
                self._learned_seq += 1
                if len(learned) == 1:
                    self._learned_units.append((seq, learned[0]))
                    self._enqueue(learned[0], 0)
                else:
                    cref = self._new_clause(learned, seq)
                    self._learned.append(cref)
                    self._cla_act[cref] = 0.0
                    self._attach(cref)
                    self._bump_clause(cref)
                    self._enqueue(learned[0], cref)
                self._decay_var_activity()
                self._decay_clause_activity()
                if conflict_limit is not None and total_conflicts >= conflict_limit:
                    return SolverResult.UNKNOWN
                if time_limit is not None and time.monotonic() - start_time > time_limit:
                    return SolverResult.UNKNOWN
                if self._interrupt_requested:
                    return SolverResult.UNKNOWN
                if faults.ARMED:
                    faults.fire("solver.step")
                if total_conflicts % 1024 == 0:
                    self._reduce_learned()
            else:
                if conflicts_since_restart >= restart_limit:
                    restart_count += 1
                    self.statistics["restarts"] += 1
                    restart_limit = 100 * self._luby(restart_count + 1)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                    continue
                # Re-establish assumptions (MiniSat style): assumption i is
                # the decision of level i+1, so backjumps and restarts that
                # pop assumption levels simply re-enter them here.
                level = len(self._trail_lim)
                if level < len(assumption_list):
                    literal = assumption_list[level]
                    value = self._value(literal)
                    if value is False:
                        # The formula together with the earlier assumptions
                        # forces the negation: UNSAT under assumptions only,
                        # so the solver itself stays usable.  Extract the
                        # failing assumption subset before unwinding.
                        self._last_core = self._analyze_final(literal)
                        self._backtrack(0)
                        return SolverResult.UNSAT
                    self._trail_lim.append(len(self._trail))
                    if value is None:
                        self._enqueue(literal, 0)
                    # Already-true assumptions still consume one (empty)
                    # decision level to keep the level/index alignment.
                    continue
                variable = self._pick_branch_variable()
                if variable is None:
                    return SolverResult.SAT
                self.statistics["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                literal = variable if self._phase[variable] else -variable
                self._enqueue(literal, 0)

    # ------------------------------------------------------------------
    # Cooperative interruption
    # ------------------------------------------------------------------
    def interrupt(self) -> None:
        """Request that the running (or next) ``solve()`` stop cooperatively.

        Safe to call from another thread: the flag is a single attribute
        write, checked at every conflict boundary, so a running search
        answers :attr:`SolverResult.UNKNOWN` within one conflict of the
        request.  The flag is sticky — later ``solve()`` calls also return
        UNKNOWN immediately until :meth:`clear_interrupt` — which is what
        stops an optimiser's descent loop instead of just one probe.  The
        solver state stays fully usable; nothing about the formula or the
        learned clauses is affected.
        """
        self._interrupt_requested = True

    def clear_interrupt(self) -> None:
        """Re-arm the solver after :meth:`interrupt` (new job, same session)."""
        self._interrupt_requested = False

    @property
    def interrupted(self) -> bool:
        """Whether an interrupt request is pending."""
        return self._interrupt_requested

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------
    def model(self) -> Dict[int, bool]:
        """Return the satisfying assignment found by the last ``solve()`` call.

        Unconstrained variables default to False.
        """
        return {
            var: bool(self._assign[var]) if self._assign[var] is not None else False
            for var in range(1, self._num_vars + 1)
        }

    def value(self, literal: int) -> bool:
        """Truth value of *literal* in the current model."""
        value = self._value(literal)
        return bool(value) if value is not None else literal < 0

    # ------------------------------------------------------------------
    # Cores and warm starts
    # ------------------------------------------------------------------
    def last_core(self) -> Tuple[int, ...]:
        """The failing assumption subset of the last ``solve()`` call.

        Non-empty only when the last call returned
        :attr:`SolverResult.UNSAT` *because of its assumptions*: the tuple
        is then a subset of the assumption literals passed in, and solving
        with just that subset assumed is still unsatisfiable.  Empty after
        SAT and UNKNOWN answers, and after UNSAT answers that hold
        regardless of the assumptions (the formula alone is inconsistent).
        """
        return self._last_core

    def seed_phases(self, assignment: Mapping[int, bool]) -> None:
        """Install *assignment* as the saved phases (a model warm start).

        Phase saving only steers which polarity a decision variable is tried
        first, so seeding never affects correctness — but when *assignment*
        is (close to) a model of the formula, the next search tends to walk
        straight into it instead of rediscovering it conflict by conflict.
        """
        for var, value in assignment.items():
            if var <= 0:
                raise ValueError("variables must be positive")
            self._ensure_var(var)
            self._phase[var] = bool(value)

    # ------------------------------------------------------------------
    # Learned-clause export / import (cross-instance clause sharing)
    # ------------------------------------------------------------------
    def freeze_exports(self) -> None:
        """Stop exporting clauses learned from this point on.

        Call this when a permanent clause is added that is *not* implied by
        the original formula (for example a committed objective bound):
        clauses learned afterwards may depend on it, so they are no longer
        consequences of the formula alone and must not be exported into
        other instances.  The earliest freeze wins; clauses learned before
        it stay exportable forever.
        """
        if self._export_boundary is None:
            self._export_boundary = self._learned_seq

    def export_learned(
        self,
        max_size: Optional[int] = None,
        var_ok: Optional[Callable[[int], bool]] = None,
    ) -> List[Tuple[int, ...]]:
        """Learned clauses implied by the formula alone, oldest first.

        Only clauses learned before the :meth:`freeze_exports` boundary are
        returned (all of them when no freeze happened).  Learned *units* are
        included — they are the strongest facts the search produced.

        Args:
            max_size: Skip clauses with more literals than this (short
                clauses prune the most per literal; ``None`` = no filter).
            var_ok: Predicate over variable indices; a clause is exported
                only when every variable it mentions passes (used to
                restrict the export to layers shared with the import
                target; ``None`` = no filter).

        Returns:
            Clause literal tuples, ordered by learning sequence.
        """
        boundary = self._export_boundary
        arena = self._arena
        exported: List[Tuple[int, Tuple[int, ...]]] = []
        for seq, literal in self._learned_units:
            if boundary is not None and seq >= boundary:
                continue
            if var_ok is not None and not var_ok(abs(literal)):
                continue
            exported.append((seq, (literal,)))
        for cref in self._learned:
            seq = arena[cref - 1]
            if boundary is not None and seq >= boundary:
                continue
            size = arena[cref - 2]
            if max_size is not None and size > max_size:
                continue
            literals = tuple(arena[cref:cref + size])
            if var_ok is not None and not all(var_ok(abs(l)) for l in literals):
                continue
            exported.append((seq, literals))
        exported.sort(key=lambda item: item[0])
        return [literals for _, literals in exported]

    def import_clauses(self, clauses: Iterable[Sequence[int]]) -> int:
        """Add externally learned clauses (deduplicated) as learned clauses.

        The caller is responsible for every clause being *implied* by this
        solver's formula — imports must never change the set of models (see
        :func:`repro.exact.sweep.clause_is_implied` for the debug check).
        Duplicates — within the batch and across earlier imports — are
        skipped, as are tautologies.

        Returns:
            The number of clauses actually added.
        """
        added = 0
        for literals in clauses:
            unique: List[int] = []
            seen: set = set()
            tautology = False
            for literal in literals:
                if literal == 0:
                    raise ValueError("0 is not a valid literal")
                if literal in seen:
                    continue
                if -literal in seen:
                    tautology = True
                    break
                seen.add(literal)
                unique.append(literal)
            if tautology or not unique:
                continue
            key = frozenset(unique)
            if key in self._import_keys:
                self.statistics["import_duplicates"] += 1
                continue
            self._import_keys.add(key)
            for literal in unique:
                self._ensure_var(abs(literal))
            if len(unique) == 1:
                self._pending_units.append(unique[0])
            else:
                cref = self._new_clause(unique, self._learned_seq)
                self._learned_seq += 1
                self._learned.append(cref)
                self._cla_act[cref] = 0.0
                self._attach(cref)
            added += 1
            self.statistics["clauses_imported"] += 1
        return added


__all__ = ["CDCLSolver", "SolverResult"]
