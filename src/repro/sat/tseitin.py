"""Tseitin transformation of Boolean circuits into CNF.

The symbolic formulation of the mapping problem (Section 3.2 of the paper)
uses conjunctions, disjunctions, equivalences and implications over the
``x``, ``y`` and ``z`` variables.  The :class:`TseitinEncoder` introduces one
fresh variable per sub-expression so that the whole constraint system stays in
CNF with only a linear blow-up.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sat.cnf import CNF, Literal


class TseitinEncoder:
    """Adds definitional clauses for composite Boolean expressions to a CNF.

    Every ``encode_*`` method returns a literal that is constrained to be
    logically equivalent to the encoded expression.  ``add_*`` methods assert
    an expression directly (no output literal).
    """

    def __init__(self, cnf: CNF):
        self.cnf = cnf

    # ------------------------------------------------------------------
    # Definitional encodings (return a literal equivalent to the expression)
    # ------------------------------------------------------------------
    def encode_and(self, literals: Sequence[Literal], name: Optional[str] = None) -> Literal:
        """Return a literal ``g`` with ``g <-> AND(literals)``."""
        literals = list(literals)
        if not literals:
            true_var = self.cnf.new_var(name or "const_true")
            self.cnf.add_clause([true_var])
            return true_var
        if len(literals) == 1:
            return literals[0]
        gate = self.cnf.new_var(name or "and")
        for literal in literals:
            self.cnf.add_clause([-gate, literal])
        self.cnf.add_clause([gate] + [-literal for literal in literals])
        return gate

    def encode_or(self, literals: Sequence[Literal], name: Optional[str] = None) -> Literal:
        """Return a literal ``g`` with ``g <-> OR(literals)``."""
        literals = list(literals)
        if not literals:
            false_var = self.cnf.new_var(name or "const_false")
            self.cnf.add_clause([-false_var])
            return false_var
        if len(literals) == 1:
            return literals[0]
        gate = self.cnf.new_var(name or "or")
        for literal in literals:
            self.cnf.add_clause([gate, -literal])
        self.cnf.add_clause([-gate] + list(literals))
        return gate

    def encode_xor(self, lhs: Literal, rhs: Literal, name: Optional[str] = None) -> Literal:
        """Return a literal ``g`` with ``g <-> (lhs XOR rhs)``."""
        gate = self.cnf.new_var(name or "xor")
        self.cnf.add_clause([-gate, lhs, rhs])
        self.cnf.add_clause([-gate, -lhs, -rhs])
        self.cnf.add_clause([gate, -lhs, rhs])
        self.cnf.add_clause([gate, lhs, -rhs])
        return gate

    def encode_iff(self, lhs: Literal, rhs: Literal, name: Optional[str] = None) -> Literal:
        """Return a literal ``g`` with ``g <-> (lhs <-> rhs)``."""
        gate = self.cnf.new_var(name or "iff")
        self.cnf.add_clause([-gate, -lhs, rhs])
        self.cnf.add_clause([-gate, lhs, -rhs])
        self.cnf.add_clause([gate, lhs, rhs])
        self.cnf.add_clause([gate, -lhs, -rhs])
        return gate

    def encode_implies(self, lhs: Literal, rhs: Literal, name: Optional[str] = None) -> Literal:
        """Return a literal ``g`` with ``g <-> (lhs -> rhs)``."""
        return self.encode_or([-lhs, rhs], name=name or "implies")

    # ------------------------------------------------------------------
    # Assertions (no output literal)
    # ------------------------------------------------------------------
    def add_implication(self, antecedent: Literal, consequent: Literal) -> None:
        """Assert ``antecedent -> consequent``."""
        self.cnf.add_clause([-antecedent, consequent])

    def add_iff(self, lhs: Literal, rhs: Literal) -> None:
        """Assert ``lhs <-> rhs``."""
        self.cnf.add_clause([-lhs, rhs])
        self.cnf.add_clause([lhs, -rhs])

    def add_iff_and(self, gate: Literal, literals: Iterable[Literal]) -> None:
        """Assert ``gate <-> AND(literals)``."""
        literals = list(literals)
        for literal in literals:
            self.cnf.add_clause([-gate, literal])
        self.cnf.add_clause([gate] + [-literal for literal in literals])

    def add_iff_or(self, gate: Literal, literals: Iterable[Literal]) -> None:
        """Assert ``gate <-> OR(literals)``."""
        literals = list(literals)
        for literal in literals:
            self.cnf.add_clause([gate, -literal])
        self.cnf.add_clause([-gate] + literals)

    def add_implied_by_and(self, gate: Literal, literals: Iterable[Literal]) -> None:
        """Assert ``AND(literals) -> gate`` (the "left-handed implication")."""
        self.cnf.add_clause([gate] + [-literal for literal in literals])

    def add_at_least_one(self, literals: Iterable[Literal]) -> None:
        """Assert ``OR(literals)``."""
        self.cnf.add_clause(list(literals))


__all__ = ["TseitinEncoder"]
