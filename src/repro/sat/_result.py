"""The solver outcome enum, shared by every solver backend.

``SolverResult`` lives in its own (never compiled) module so that the pure
and the compiled solver backends hand out the *same* enum instances: code
all over the repository compares results with ``is`` / ``==`` against
``SolverResult.SAT`` imported from :mod:`repro.sat.solver`, which must keep
working no matter which backend produced the value.
"""

from __future__ import annotations

import enum


class SolverResult(enum.Enum):
    """Outcome of a ``solve()`` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


__all__ = ["SolverResult"]
