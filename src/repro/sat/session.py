"""Persistent, assumption-based solving sessions for objective descent.

A :class:`SolveSession` owns one live :class:`~repro.sat.solver.CDCLSolver`
loaded with a CNF formula and minimises a weighted objective over it by
*assuming* objective bounds instead of cloning the formula:

* The constraint ``F <= b`` is encoded once as a BDD-style ladder of
  definitional implication clauses (the same shape as
  :func:`repro.sat.pb.encode_pb_leq`), except that no unit clause asserts
  the root.  The root literal is handed to the solver as an **assumption**,
  so the bound holds for one ``solve`` call and evaporates afterwards —
  bounds can tighten (objective descent) or move in both directions
  (bisection) on the same solver.
* Ladder nodes are cached per session and shared between bounds: tightening
  from ``b`` to ``b - 1`` only adds the nodes that differ, everything
  reachable from both roots is reused.
* Learned clauses, variable activities and saved phases all survive across
  calls because the solver itself survives; nothing learned while a bound
  was assumed has to be thrown away (the assumption enters conflict
  analysis as a pseudo-decision, never as an antecedent).
* Arbitrary extra assumptions can ride along
  (:meth:`SolveSession.solve_with_assumptions`), and after an UNSAT answer
  the failing assumption subset is available as an **UNSAT core**
  (:meth:`SolveSession.last_core`) — this is what the core-guided
  optimizer strategy and the ``--explain`` CLI flag are built on.

This is the repository's replacement for the old ``_bounded_copy`` pattern
in :mod:`repro.sat.optimize`, which re-encoded (and for the binary strategy
re-solved from scratch) the whole instance for every bound probe.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Literal
from repro.sat.pb import evaluate_pb
from repro.sat.solver import CDCLSolver, SolverResult


class SolveSession:
    """One incremental solver plus a reusable objective-bound ladder.

    Args:
        cnf: Hard constraints; loaded into a fresh solver.  The formula's
            variable pool is used for the ladder's auxiliary variables (the
            formula object itself is never mutated).
        objective: ``(weight, literal)`` terms of the objective ``F``.

    Example:
        >>> session = SolveSession(cnf, [(3, a), (5, b)])
        >>> session.solve_with_bound(4)
        <SolverResult.SAT: 'sat'>
        >>> session.objective_value(session.model())
        3
        >>> session.solve_with_bound(2)  # same solver, tighter assumed bound
        <SolverResult.UNSAT: 'unsat'>
        >>> session.solve_with_bound(4)  # not poisoned; bound 4 still works
        <SolverResult.SAT: 'sat'>
    """

    def __init__(self, cnf: CNF, objective: Sequence[Tuple[int, Literal]]):
        self._pool = cnf.pool
        # Variables at or below this index belong to the formula itself;
        # everything above is session-local (bound-ladder nodes) and never
        # crosses session boundaries via export_learned().
        self._formula_var_limit = cnf.num_vars
        self.solver = CDCLSolver()
        self.solver.add_cnf(cnf)
        self._terms: List[Tuple[int, Literal]] = []
        for weight, literal in objective:
            if weight < 0:
                raise ValueError("objective weights must be non-negative")
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            self._terms.append((int(weight), literal))
        # Heaviest first: the ladder stays small and propagates early.
        # Zero-weight terms never influence the bound and are skipped.
        ladder = [term for term in self._terms if term[0] > 0]
        ladder.sort(key=lambda term: -term[0])
        self._ladder_terms = ladder
        suffix = [0] * (len(ladder) + 1)
        for index in range(len(ladder) - 1, -1, -1):
            suffix[index] = suffix[index + 1] + ladder[index][0]
        self._suffix_totals = suffix
        self._nodes: Dict[Tuple[int, int], int] = {}
        self._node_info: Dict[int, Tuple[int, int]] = {}
        self._term_by_var: Dict[int, Tuple[int, Literal]] = {
            abs(literal): (weight, literal) for weight, literal in ladder
        }
        self._committed_bound: Optional[int] = None
        self.statistics: Dict[str, int] = {
            "solve_calls": 0,
            "assumption_solves": 0,
            "committed_bounds": 0,
            "bound_nodes_created": 0,
            "bound_nodes_reused": 0,
            "bound_clauses_added": 0,
            "phase_seeds": 0,
            "clauses_exported": 0,
            "clauses_imported": 0,
            "import_clauses_dropped": 0,
        }

    # ------------------------------------------------------------------
    def interrupt(self) -> None:
        """Cooperatively stop the session's solver (see ``CDCLSolver.interrupt``).

        Safe from another thread; the running (and every later) solve call
        answers UNKNOWN until :meth:`clear_interrupt`, which is what makes
        an optimiser descent loop on this session terminate promptly.
        """
        self.solver.interrupt()

    def clear_interrupt(self) -> None:
        """Re-arm the session's solver after :meth:`interrupt`."""
        self.solver.clear_interrupt()

    @property
    def interrupted(self) -> bool:
        """Whether an interrupt request is pending on the session's solver."""
        return self.solver.interrupted

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> int:
        """Sum of all positive objective weights (the trivial upper bound)."""
        return self._suffix_totals[0] if self._suffix_totals else 0

    @property
    def conflicts(self) -> int:
        """Cumulative solver conflicts over the session's lifetime."""
        return self.solver.statistics["conflicts"]

    @property
    def propagations(self) -> int:
        """Cumulative unit propagations over the session's lifetime."""
        return self.solver.statistics["propagations"]

    @property
    def learned_clauses(self) -> int:
        """Learned clauses currently retained by the live solver."""
        return self.solver.num_learned

    @property
    def committed_bound(self) -> Optional[int]:
        """The tightest permanently committed bound (``None`` when none)."""
        return self._committed_bound

    @property
    def positive_terms(self) -> List[Tuple[int, Literal]]:
        """The positive-weight objective terms, heaviest first (a copy)."""
        return list(self._ladder_terms)

    def term_selectors(self) -> List[Tuple[int, Literal]]:
        """``(weight, -literal)`` per positive-weight term.

        Assuming ``-literal`` forces the term to contribute nothing to the
        objective; these are the assumption literals the core-guided
        strategy hands to :meth:`solve_with_assumptions`.
        """
        return [(weight, -literal) for weight, literal in self._ladder_terms]

    # ------------------------------------------------------------------
    def _add(self, literals: List[int]) -> None:
        self.solver.add_clause(literals)
        self.statistics["bound_clauses_added"] += 1

    def _build(self, index: int, budget: int) -> Optional[int]:
        """Ladder node literal for "sum of terms[index:] <= budget".

        Returns ``None`` when the node is trivially true.  Nodes are cached
        for the session's lifetime, so overlapping bounds share clauses.

        The construction walks an explicit stack instead of recursing: the
        natural recursion is one frame per objective term, which overflows
        the interpreter's recursion limit on instances with thousands of
        terms.  The walk visits nodes in exactly the recursive order (node
        created, low subtree, low clause, high subtree, high clause), so
        variable numbering, clause order and the bound-node statistics are
        identical to the recursive formulation.
        """
        if self._suffix_totals[index] <= budget:
            return None
        cached = self._nodes.get((index, budget))
        if cached is not None:
            self.statistics["bound_nodes_reused"] += 1
            return cached
        # Stack frames: (index, budget, phase) with phase 0 = create the
        # node and descend into the low child, 1 = emit the low clause and
        # descend into the high child, 2 = emit the high clause.
        stack: List[Tuple[int, int, int]] = [(index, budget, 0)]
        while stack:
            idx, bgt, phase = stack.pop()
            if phase == 0:
                if self._suffix_totals[idx] <= bgt:
                    continue  # trivially true: no node, no clause
                if (idx, bgt) in self._nodes:
                    self.statistics["bound_nodes_reused"] += 1
                    continue
                node = self._pool.new_var(f"bound_n{idx}_{bgt}")
                self._nodes[(idx, bgt)] = node
                self._node_info[node] = (idx, bgt)
                self.statistics["bound_nodes_created"] += 1
                stack.append((idx, bgt, 1))
                # Literal false: the budget is unchanged for the rest.
                stack.append((idx + 1, bgt, 0))
            elif phase == 1:
                node = self._nodes[(idx, bgt)]
                weight, literal = self._ladder_terms[idx]
                low = self._nodes.get((idx + 1, bgt))
                if self._suffix_totals[idx + 1] > bgt and low is not None:
                    self._add([-node, literal, low])
                # Literal true: the budget shrinks by the term's weight.
                if weight > bgt:
                    self._add([-node, -literal])
                else:
                    stack.append((idx, bgt, 2))
                    stack.append((idx + 1, bgt - weight, 0))
            else:
                node = self._nodes[(idx, bgt)]
                weight, literal = self._ladder_terms[idx]
                high = self._nodes.get((idx + 1, bgt - weight))
                if (
                    self._suffix_totals[idx + 1] > bgt - weight
                    and high is not None
                ):
                    self._add([-node, -literal, high])
        return self._nodes[(index, budget)]

    def selector(self, bound: int) -> Optional[int]:
        """The literal that, when assumed, asserts ``F <= bound``.

        Returns ``None`` when the bound is trivially satisfied by every
        assignment (no assumption needed).

        Raises:
            ValueError: On a negative bound.
        """
        if bound < 0:
            raise ValueError("bound must be non-negative")
        return self._build(0, bound)

    # ------------------------------------------------------------------
    def solve_with_bound(
        self,
        bound: Optional[int] = None,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        commit: bool = False,
    ) -> SolverResult:
        """One solver call, optionally under the bound ``F <= bound``.

        By default the bound is *assumed*: an
        :attr:`~repro.sat.solver.SolverResult.UNSAT` outcome then means "no
        model with objective at most *bound*" and the session remains usable
        for other (even looser) bounds afterwards.

        With ``commit=True`` the bound's selector is asserted as a permanent
        unit clause instead.  That makes the bound propagate at decision
        level 0 (as strongly as a re-encoded formula would) and is meant for
        monotonically tightening descents: committed bounds are permanent,
        so a later looser commit is a no-op (the tighter constraint already
        implies it — the session's effective bound is the minimum ever
        committed, see :attr:`committed_bound`) and an UNSAT answer under a
        committed bound is final for the session.
        """
        assumptions: List[int] = []
        if bound is not None:
            if commit:
                selector = self.selector(bound)
                if self._committed_bound is None or bound < self._committed_bound:
                    self._committed_bound = bound
                    if selector is not None:
                        # A committed bound is not implied by the formula, so
                        # clauses learned after it must never be exported.
                        self.solver.freeze_exports()
                        self.solver.add_clause([selector])
                        self.statistics["committed_bounds"] += 1
            else:
                selector = self.selector(bound)
                if selector is not None:
                    assumptions.append(selector)
        return self._solve(assumptions, conflict_limit, time_limit)

    def solve_with_assumptions(
        self,
        assumptions: Sequence[Literal],
        bound: Optional[int] = None,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolverResult:
        """One solver call under arbitrary assumption literals.

        Args:
            assumptions: Literals assumed true for this call only (for
                example the term selectors of the core-guided strategy).
            bound: Optional objective bound ``F <= bound``, *assumed* via
                its ladder selector alongside the other assumptions.
            conflict_limit: Per-call conflict budget.
            time_limit: Per-call wall-clock budget in seconds.

        After an :attr:`~repro.sat.solver.SolverResult.UNSAT` answer,
        :meth:`last_core` names the failing assumption subset.
        """
        literals = list(assumptions)
        if bound is not None:
            selector = self.selector(bound)
            if selector is not None:
                literals.append(selector)
        return self._solve(literals, conflict_limit, time_limit)

    def _solve(
        self,
        assumptions: List[int],
        conflict_limit: Optional[int],
        time_limit: Optional[float],
    ) -> SolverResult:
        self.statistics["solve_calls"] += 1
        if assumptions:
            self.statistics["assumption_solves"] += 1
        return self.solver.solve(
            conflict_limit=conflict_limit,
            time_limit=time_limit,
            assumptions=assumptions,
        )

    # ------------------------------------------------------------------
    def last_core(self) -> Tuple[int, ...]:
        """Failing assumption subset of the last solve (see ``CDCLSolver.last_core``)."""
        return self.solver.last_core()

    def seed_phases(self, assignment: Dict[int, bool]) -> None:
        """Install a (partial) assignment as the solver's saved phases.

        Used for model warm starts: when *assignment* comes from a known
        feasible schedule, the next search is steered toward it.  Purely a
        search hint — never affects which answers are possible.
        """
        self.solver.seed_phases(assignment)
        self.statistics["phase_seeds"] += 1

    def describe_literal(self, literal: Literal) -> str:
        """Human-readable meaning of *literal* within this session.

        Bound-ladder nodes read as the partial-sum constraint they encode;
        objective-term literals carry their weight and pool name; everything
        else falls back to the variable pool's name.
        """
        var = abs(literal)
        negated = literal < 0
        info = self._node_info.get(var)
        if info is not None:
            index, budget = info
            label = (
                f"bound ladder: objective terms[{index}:] "
                f"(weight {self._suffix_totals[index]}) <= {budget}"
            )
            return f"NOT ({label})" if negated else label
        term = self._term_by_var.get(var)
        if term is not None:
            weight, term_literal = term
            name = self._pool.name(var)
            # The selector -term_literal reads as "term off" (contributes 0).
            off = (literal == -term_literal)
            state = "kept off (contributes 0)" if off else "active (contributes weight)"
            return f"objective term {name} (weight {weight}), {state}"
        return self._pool.describe_literal(literal)

    # ------------------------------------------------------------------
    def add_clause(self, literals: Sequence[Literal]) -> None:
        """Add a permanent clause to the live solver (between solves).

        The clause is treated as a caller-asserted *strengthening* (not
        necessarily implied by the original formula), so learned-clause
        exports are frozen at this point — see ``CDCLSolver.freeze_exports``.
        """
        self.solver.freeze_exports()
        self.solver.add_clause(literals)

    def export_learned(
        self,
        max_size: Optional[int] = None,
        var_ok: Optional[Callable[[int], bool]] = None,
    ) -> List[Tuple[int, ...]]:
        """Learned clauses of the live solver that are safe to share.

        Bound-ladder variables are session-local and always excluded; pass
        an additional *var_ok* predicate to restrict the export to layers
        shared with the import target (for the mapping encodings: the x and
        spot blocks, see :mod:`repro.exact.sweep`).  Clauses learned after a
        committed bound are excluded automatically (they may depend on the
        commit, see :meth:`solve_with_bound`).
        """
        limit = self._formula_var_limit
        if var_ok is None:
            allowed = lambda var: var <= limit  # noqa: E731
        else:
            allowed = lambda var: var <= limit and var_ok(var)  # noqa: E731
        exported = self.solver.export_learned(max_size=max_size, var_ok=allowed)
        self.statistics["clauses_exported"] += len(exported)
        return exported

    def import_clauses(
        self,
        clauses: Iterable[Sequence[Literal]],
        remap: Optional[Mapping[int, int]] = None,
    ) -> int:
        """Inject externally learned clauses into the live solver.

        Args:
            clauses: Clause literal tuples (in the *source* instance's
                variable numbering when *remap* is given).
            remap: Source-variable to target-variable translation table; a
                clause mentioning any unmapped variable is dropped (counted
                as ``import_clauses_dropped``).  ``None`` means the clauses
                already use this session's numbering.

        The caller is responsible for the (remapped) clauses being implied
        by this session's formula; see
        :func:`repro.exact.sweep.clause_is_implied` for the debug check.

        Returns:
            The number of clauses actually added (after dedupe).
        """
        ready: List[Tuple[int, ...]] = []
        for literals in clauses:
            if remap is None:
                ready.append(tuple(literals))
                continue
            mapped: List[int] = []
            ok = True
            for literal in literals:
                target = remap.get(abs(literal))
                if target is None:
                    ok = False
                    break
                mapped.append(target if literal > 0 else -target)
            if ok:
                ready.append(tuple(mapped))
            else:
                self.statistics["import_clauses_dropped"] += 1
        added = self.solver.import_clauses(ready)
        self.statistics["clauses_imported"] += added
        return added

    def model(self) -> Dict[int, bool]:
        """The model of the last successful solve (see ``CDCLSolver.model``)."""
        return self.solver.model()

    def objective_value(self, model: Dict[int, bool]) -> int:
        """Evaluate the objective ``F`` under *model*."""
        return evaluate_pb(self._terms, model)


__all__ = ["SolveSession", "SolverResult"]
