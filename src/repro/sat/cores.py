"""UNSAT cores over assumption literals: extraction, trimming, explanation.

When :meth:`repro.sat.solver.CDCLSolver.solve` answers UNSAT under
assumptions, :meth:`~repro.sat.solver.CDCLSolver.last_core` names the subset
of the assumption literals the conflict actually depends on (final-conflict
analysis, MiniSat's ``analyzeFinal``).  This module wraps that raw tuple in
a small value object with human-readable labels, plus two generic helpers:

* :func:`core_from_session` — the last core of a
  :class:`~repro.sat.session.SolveSession`, labelled through the session's
  knowledge of bound-ladder nodes and objective terms,
* :func:`trim_core` — deletion-based core minimisation: drop one literal at
  a time and keep the drop whenever the remainder is still unsatisfiable.
  The result is *minimal* (no literal can be removed), not necessarily
  *minimum* — computing a smallest core is much harder and never needed
  here.

Cores drive two features: the ``"core"`` optimizer strategy in
:mod:`repro.sat.optimize` relaxes exactly the literals of each core (so the
proven lower bound rises by whole cores instead of unit steps), and the CLI
``--explain`` flag prints the final core of a proven-optimal mapping as the
list of constraints that bind at the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Sequence, Tuple

#: A solve oracle for :func:`trim_core`: called with assumption literals,
#: returns True when the instance is UNSAT under them.
UnsatOracle = Callable[[Sequence[int]], bool]


@dataclass(frozen=True)
class UnsatCore:
    """A failing subset of assumption literals, optionally labelled.

    Attributes:
        literals: The assumption literals of the core (DIMACS convention).
            An empty tuple means "unsatisfiable regardless of assumptions"
            (the hard constraints alone are inconsistent).
        labels: One human-readable description per literal (same order);
            empty when no labelling context was available.
    """

    literals: Tuple[int, ...]
    labels: Tuple[str, ...] = field(default=())

    @property
    def is_empty(self) -> bool:
        """True when the core blames no assumption (hard UNSAT)."""
        return not self.literals

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def __contains__(self, literal: int) -> bool:
        return literal in self.literals

    def describe(self) -> List[str]:
        """The labels, falling back to raw literals when unlabelled."""
        if self.labels:
            return list(self.labels)
        return [str(literal) for literal in self.literals]


def core_from_session(session, max_labels: "int | None" = None) -> UnsatCore:
    """The last core of a :class:`~repro.sat.session.SolveSession`, labelled.

    Args:
        session: Anything with ``last_core()`` and ``describe_literal()``
            (duck-typed so tests can pass fakes).
        max_labels: Label only this many literals and summarise the tail
            (a phase-1 core over every objective selector can hold hundreds
            of literals, and the labels travel inside persisted result
            statistics).  ``None`` labels everything.  The raw literal
            tuple is always complete.

    Returns:
        The :class:`UnsatCore`; empty when the last solve was SAT, UNKNOWN
        or unsatisfiable independently of its assumptions.
    """
    literals = tuple(session.last_core())
    shown = literals if max_labels is None else literals[:max_labels]
    labels = [session.describe_literal(literal) for literal in shown]
    if len(literals) > len(shown):
        labels.append(f"... and {len(literals) - len(shown)} more core literals")
    return UnsatCore(literals=literals, labels=tuple(labels))


def trim_core(is_unsat: UnsatOracle, literals: Sequence[int]) -> Tuple[int, ...]:
    """Deletion-based minimisation of an UNSAT core.

    Args:
        is_unsat: Oracle answering "is the instance UNSAT under these
            assumptions?".  Each candidate subset costs one oracle call
            (one incremental solve), so trimming an ``n``-literal core
            costs at most ``n`` solves.
        literals: A known failing assumption set (need not be minimal).

    Returns:
        A subset of *literals* that is still unsatisfiable and from which
        no single literal can be dropped.

    Raises:
        ValueError: When *literals* is not actually failing — trimming a
            satisfiable "core" would silently return garbage.
    """
    current = list(literals)
    if not is_unsat(current):
        raise ValueError("the given literals are not an UNSAT core")
    index = 0
    while index < len(current):
        candidate = current[:index] + current[index + 1:]
        if is_unsat(candidate):
            current = candidate
            # Same index now points at the next literal.
        else:
            index += 1
    return tuple(current)


__all__ = ["UnsatCore", "UnsatOracle", "core_from_session", "trim_core"]
