"""A self-contained Boolean reasoning engine.

The paper hands its symbolic formulation to the Z3 solver.  Z3 is not
available in this environment, so this subpackage provides a from-scratch
replacement with the pieces the mapping formulation needs:

* :mod:`repro.sat.cnf` — variables, literals, clauses and CNF formulas,
* :mod:`repro.sat.solver` — a CDCL SAT solver (two-watched literals, VSIDS
  branching, first-UIP clause learning, restarts, phase saving),
* :mod:`repro.sat.dpll` — a tiny reference DPLL solver used to cross-check
  the CDCL implementation in the test suite,
* :mod:`repro.sat.tseitin` — Tseitin transformation of AND/OR/XOR/IFF
  expressions into CNF,
* :mod:`repro.sat.cardinality` — at-most-one / exactly-one / at-most-k
  cardinality encodings,
* :mod:`repro.sat.pb` — pseudo-Boolean ("weighted sum of literals <= bound")
  constraints,
* :mod:`repro.sat.session` — :class:`SolveSession`, a persistent incremental
  solver on which objective bounds are *assumed* instead of re-encoded,
* :mod:`repro.sat.cores` — UNSAT cores over assumption literals: the value
  object, labelling and deletion-based trimming,
* :mod:`repro.sat.optimize` — minimisation of a weighted linear objective on
  top of the SAT solver (the "extended interpretation" of Definition 3 in
  the paper), with a pluggable strategy registry (linear / binary /
  core-guided descent).
"""

from repro.sat.cnf import CNF, Clause, Literal, VariablePool
from repro.sat.cores import UnsatCore, core_from_session, trim_core
from repro.sat.session import SolveSession
from repro.sat.solver import CDCLSolver, SolverResult
from repro.sat.dpll import DPLLSolver
from repro.sat.tseitin import TseitinEncoder
from repro.sat.cardinality import (
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
    at_most_k_sequential,
)
from repro.sat.pb import encode_pb_leq
from repro.sat.optimize import (
    ObjectiveTerm,
    OptimizationResult,
    OptimizerRegistry,
    OptimizerStrategy,
    OptimizingSolver,
    available_optimizers,
    optimizer_descriptions,
    register_optimizer,
    resolve_optimizer_name,
)

__all__ = [
    "CNF",
    "Clause",
    "Literal",
    "VariablePool",
    "CDCLSolver",
    "SolverResult",
    "SolveSession",
    "UnsatCore",
    "core_from_session",
    "trim_core",
    "DPLLSolver",
    "TseitinEncoder",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "exactly_one",
    "at_most_k_sequential",
    "encode_pb_leq",
    "ObjectiveTerm",
    "OptimizingSolver",
    "OptimizationResult",
    "OptimizerStrategy",
    "OptimizerRegistry",
    "register_optimizer",
    "available_optimizers",
    "optimizer_descriptions",
    "resolve_optimizer_name",
]
