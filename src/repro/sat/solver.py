"""A CDCL (conflict-driven clause learning) SAT solver.

This is the reasoning engine used in place of Z3.  It implements the standard
modern architecture:

* two-watched-literal unit propagation over a **flat clause arena** (one int
  array of literals plus offset/length headers; watch lists are int arrays
  of clause references compacted in place — no per-clause Python objects in
  the hot loop, see :mod:`repro.sat._solver_core`),
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style variable activities with exponential decay, served from an
  **indexed order heap** keyed ``(activity, -var)`` — the exact argmax the
  earlier linear scan computed, so decision sequences are unchanged,
* phase saving,
* Luby-sequence restarts,
* periodic deletion of inactive learned clauses (with arena compaction once
  garbage dominates),
* incremental solving (clauses may be added between ``solve()`` calls;
  learned clauses are kept since adding clauses only strengthens the
  formula),
* solving under assumptions (``solve(assumptions=[...])``): the given
  literals are enqueued as pseudo-decisions below the real search, hold in
  any model returned, and are fully undone afterwards.  An UNSAT answer
  under assumptions means "unsatisfiable together with these assumptions"
  and does not poison later calls; learned clauses derived under
  assumptions are consequences of the formula alone and are retained,
* final-conflict analysis (``last_core()``): after an UNSAT answer under
  assumptions, the subset of the assumption literals that actually caused
  the conflict is available (MiniSat's ``analyzeFinal``) — re-asserting
  just that subset is still unsatisfiable,
* phase seeding (``seed_phases()``): a known (partial) assignment can be
  installed as the saved phases, steering the next search toward it,
* learned-clause export/import (``export_learned()`` / ``import_clauses()``):
  learned clauses are consequences of the *formula alone* (assumptions enter
  conflict analysis as pseudo-decisions, never as antecedents), so they can
  be handed to another solver whose formula implies this one's — subject to
  the export boundary set by ``freeze_exports()``, which marks the point
  after which permanent clauses were added that later learned clauses may
  depend on.

The solver accepts and returns literals in DIMACS convention (positive /
negative integers, variables numbered from 1).

Backends
--------

The implementation lives in :mod:`repro.sat._solver_core` and can run
interpreted (*pure*) or as a native extension compiled from the identical
source (*compiled*); ``REPRO_SOLVER_BACKEND=auto|pure|compiled`` picks one
at import, with a graceful fallback to pure when the extension is absent
(see :mod:`repro.sat._backend`).  Models and statistics counters are
bit-for-bit identical across backends; :func:`solver_backend` and
:func:`solver_backend_provenance` report which one is active.
"""

from __future__ import annotations

from typing import Dict

from repro.sat._backend import active_backend, backend_provenance
from repro.sat._result import SolverResult

_BACKEND = active_backend()

#: The CDCL solver class of the active backend (pure or compiled).
CDCLSolver = _BACKEND.module.CDCLSolver


def solver_backend() -> str:
    """Name of the active solver backend: ``"pure"`` or ``"compiled"``."""
    return _BACKEND.name


def solver_backend_provenance() -> Dict[str, str]:
    """Backend provenance (name, what was requested, fallback note if any)."""
    return backend_provenance()


__all__ = [
    "CDCLSolver",
    "SolverResult",
    "solver_backend",
    "solver_backend_provenance",
]
