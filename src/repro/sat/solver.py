"""A CDCL (conflict-driven clause learning) SAT solver.

This is the reasoning engine used in place of Z3.  It implements the standard
modern architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style variable activities with exponential decay,
* phase saving,
* Luby-sequence restarts,
* periodic deletion of inactive learned clauses,
* incremental solving (clauses may be added between ``solve()`` calls;
  learned clauses are kept since adding clauses only strengthens the
  formula),
* solving under assumptions (``solve(assumptions=[...])``): the given
  literals are enqueued as pseudo-decisions below the real search, hold in
  any model returned, and are fully undone afterwards.  An UNSAT answer
  under assumptions means "unsatisfiable together with these assumptions"
  and does not poison later calls; learned clauses derived under
  assumptions are consequences of the formula alone and are retained,
* final-conflict analysis (``last_core()``): after an UNSAT answer under
  assumptions, the subset of the assumption literals that actually caused
  the conflict is available (MiniSat's ``analyzeFinal``) — re-asserting
  just that subset is still unsatisfiable,
* phase seeding (``seed_phases()``): a known (partial) assignment can be
  installed as the saved phases, steering the next search toward it,
* learned-clause export/import (``export_learned()`` / ``import_clauses()``):
  learned clauses are consequences of the *formula alone* (assumptions enter
  conflict analysis as pseudo-decisions, never as antecedents), so they can
  be handed to another solver whose formula implies this one's — subject to
  the export boundary set by ``freeze_exports()``, which marks the point
  after which permanent clauses were added that later learned clauses may
  depend on.

The solver accepts and returns literals in DIMACS convention (positive /
negative integers, variables numbered from 1).
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Literal


class SolverResult(enum.Enum):
    """Outcome of a ``solve()`` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class _Clause:
    """Internal clause representation (mutable literal list plus bookkeeping).

    Invariant used by conflict analysis: while a clause is the *reason* of an
    assignment, the implied literal sits at position 0 (propagation never
    reorders a clause whose first literal is satisfied).
    """

    __slots__ = ("literals", "learned", "activity", "seq")

    def __init__(self, literals: List[int], learned: bool = False, seq: int = -1):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0
        # Monotone id of a learned clause (-1 for problem clauses); used by
        # export_learned() to honour the freeze_exports() boundary even after
        # _reduce_learned() has dropped or reordered clauses.
        self.seq = seq


class CDCLSolver:
    """Conflict-driven clause-learning SAT solver.

    Example:
        >>> solver = CDCLSolver()
        >>> solver.add_clause([1, 2])
        >>> solver.add_clause([-1, 2])
        >>> solver.solve()
        <SolverResult.SAT: 'sat'>
        >>> solver.model()[2]
        True
    """

    def __init__(self, cnf: Optional[CNF] = None):
        self._num_vars = 0
        # Indexed by variable (1-based): None / True / False.
        self._assign: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        # Watch lists indexed by encoded literal (2v for +v, 2v+1 for -v).
        self._watches: List[List[_Clause]] = [[], []]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagation_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._unsat = False
        self._pending_units: List[int] = []
        self._last_core: Tuple[int, ...] = ()
        self._learned_seq = 0
        self._export_boundary: Optional[int] = None
        # Learned unit clauses (seq, literal): implied by the formula alone,
        # the strongest clauses to share, but they live on the trail rather
        # than in self._learned, so they are recorded separately.
        self._learned_units: List[Tuple[int, int]] = []
        self._import_keys: set = set()
        self.statistics: Dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned_deleted": 0,
            "clauses_imported": 0,
            "import_duplicates": 0,
        }
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._assign.append(None)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches.append([])
            self._watches.append([])

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause (DIMACS literals).  May be called between solves."""
        unique: List[int] = []
        seen = set()
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if literal in seen:
                continue
            if -literal in seen:
                return  # tautology, nothing to add
            seen.add(literal)
            unique.append(literal)
            self._ensure_var(abs(literal))
        if not unique:
            self._unsat = True
            return
        if len(unique) == 1:
            self._pending_units.append(unique[0])
            return
        clause = _Clause(unique, learned=False)
        self._clauses.append(clause)
        self._attach(clause)

    def add_cnf(self, cnf: CNF) -> None:
        """Add every clause of *cnf*."""
        self._ensure_var(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    @property
    def num_vars(self) -> int:
        """Highest variable index seen so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learned) clauses."""
        return len(self._clauses)

    @property
    def num_learned(self) -> int:
        """Number of learned clauses currently kept (persist across solves)."""
        return len(self._learned)

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _enc(literal: int) -> int:
        """Encode a DIMACS literal as a watch-list index."""
        var = abs(literal)
        return 2 * var if literal > 0 else 2 * var + 1

    def _value(self, literal: int) -> Optional[bool]:
        value = self._assign[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _attach(self, clause: _Clause) -> None:
        self._watches[self._enc(-clause.literals[0])].append(clause)
        self._watches[self._enc(-clause.literals[1])].append(clause)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: int, reason: Optional[_Clause]) -> bool:
        """Assign *literal* true.  Returns False when it contradicts the trail."""
        current = self._value(literal)
        if current is not None:
            return current
        var = abs(literal)
        self._assign[var] = literal > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = literal > 0
        self._trail.append(literal)
        return True

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[_Clause]:
        """Propagate all enqueued assignments.  Returns a conflicting clause or None.

        This is the solver's hottest loop (the large majority of the wall
        clock on the mapping encodings), so attribute lookups are hoisted
        into locals and ``_value``/``_enc`` are inlined: every assignment
        read works directly on the ``_assign`` list.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        propagations = 0
        while self._propagation_head < len(trail):
            literal = trail[self._propagation_head]
            self._propagation_head += 1
            propagations += 1
            # Inlined _enc(literal).
            watch_index = 2 * literal if literal > 0 else -2 * literal + 1
            watchers = watches[watch_index]
            new_watchers: List[_Clause] = []
            new_append = new_watchers.append
            conflict: Optional[_Clause] = None
            i = 0
            num_watchers = len(watchers)
            while i < num_watchers:
                clause = watchers[i]
                i += 1
                lits = clause.literals
                # Make sure the falsified watched literal sits at position 1.
                if lits[0] == -literal:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                # Inlined _value(first) is True.
                value = assign[first] if first > 0 else assign[-first]
                if value is not None and (value if first > 0 else not value):
                    new_append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    other = lits[k]
                    value = assign[other] if other > 0 else assign[-other]
                    if value is None or (value if other > 0 else not value):
                        lits[1], lits[k] = lits[k], lits[1]
                        moved = lits[1]
                        # Inlined _enc(-moved).
                        watches[
                            2 * moved + 1 if moved > 0 else -2 * moved
                        ].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting; keep watching the false literal.
                new_append(clause)
                value = assign[first] if first > 0 else assign[-first]
                if value is not None and not (value if first > 0 else not value):
                    new_watchers.extend(watchers[i:])
                    conflict = clause
                    break
                self._enqueue(first, clause)
            watches[watch_index] = new_watchers
            if conflict is not None:
                self.statistics["propagations"] += propagations
                self._propagation_head = len(trail)
                return conflict
        self.statistics["propagations"] += propagations
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learned in self._learned:
                learned.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._cla_decay

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """First-UIP conflict analysis (MiniSat style).

        Returns:
            The learned clause with the asserting literal first, and the
            decision level to backjump to.
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        path_count = 0
        popped_literal: Optional[int] = None
        reason: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None
            if reason.learned:
                self._bump_clause(reason)
            # Skip the implied literal (position 0) for reason clauses; the
            # conflict clause (first iteration) is scanned in full.
            start = 0 if popped_literal is None else 1
            for clause_literal in reason.literals[start:]:
                var = abs(clause_literal)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        path_count += 1
                    else:
                        learned.append(clause_literal)
            # Select the next current-level literal to resolve on.
            while not seen[abs(self._trail[index])]:
                index -= 1
            popped_literal = self._trail[index]
            index -= 1
            var = abs(popped_literal)
            seen[var] = False
            reason = self._reason[var]
            path_count -= 1
            if path_count == 0:
                break
        learned[0] = -popped_literal

        # Backjump level: highest level among the non-asserting literals.
        if len(learned) == 1:
            backjump = 0
        else:
            backjump = max(self._level[abs(l)] for l in learned[1:])
        return learned, backjump

    def _analyze_final(self, failed: int) -> Tuple[int, ...]:
        """Assumptions responsible for falsifying the assumption *failed*.

        MiniSat's ``analyzeFinal``: walk the trail backwards from the point
        where ``-failed`` ended up assigned and resolve every implied literal
        with its reason clause; pseudo-decisions (the earlier assumptions)
        that remain are the ones the conflict actually depends on.  Only
        assumption levels exist when this runs — the free search never
        starts before all assumptions are established.

        Returns:
            The failing subset of the assumption literals, *failed* included.
        """
        core = [failed]
        if not self._trail_lim:
            # -failed is forced at level 0: the formula alone refutes it.
            return tuple(core)
        seen = {abs(failed)}
        for literal in reversed(self._trail[self._trail_lim[0]:]):
            var = abs(literal)
            if var not in seen:
                continue
            seen.discard(var)
            reason = self._reason[var]
            if reason is None:
                # A pseudo-decision, i.e. one of the earlier assumptions.
                core.append(literal)
            else:
                # The implied literal sits at position 0; resolve on the rest.
                for clause_literal in reason.literals[1:]:
                    if self._level[abs(clause_literal)] > 0:
                        seen.add(abs(clause_literal))
        return tuple(core)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        target = self._trail_lim[level]
        for literal in reversed(self._trail[target:]):
            var = abs(literal)
            self._assign[var] = None
            self._reason[var] = None
        del self._trail[target:]
        del self._trail_lim[level:]
        self._propagation_head = len(self._trail)

    # ------------------------------------------------------------------
    # Decisions and restarts
    # ------------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        assign = self._assign
        activity = self._activity
        for var in range(1, self._num_vars + 1):
            if assign[var] is None and activity[var] > best_activity:
                best_activity = activity[var]
                best_var = var
        return best_var

    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ... (1-based index)."""
        i = max(1, index)
        while True:
            k = i.bit_length()
            if i == (1 << k) - 1:
                return 1 << (k - 1)
            i = i - (1 << (k - 1)) + 1

    def _reduce_learned(self) -> None:
        """Delete the less active half of the long learned clauses."""
        if len(self._learned) < 2000:
            return
        locked = {
            id(self._reason[abs(lit)])
            for lit in self._trail
            if self._reason[abs(lit)] is not None
        }
        self._learned.sort(key=lambda clause: clause.activity)
        keep: List[_Clause] = []
        to_delete = set()
        half = len(self._learned) // 2
        for position, clause in enumerate(self._learned):
            if position < half and len(clause.literals) > 2 and id(clause) not in locked:
                to_delete.add(id(clause))
                self.statistics["learned_deleted"] += 1
            else:
                keep.append(clause)
        if not to_delete:
            return
        self._learned = keep
        for index, watch_list in enumerate(self._watches):
            self._watches[index] = [
                clause for clause in watch_list if id(clause) not in to_delete
            ]

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        assumptions: Optional[Iterable[int]] = None,
    ) -> SolverResult:
        """Run the CDCL search.

        Args:
            conflict_limit: Abort with :attr:`SolverResult.UNKNOWN` after this
                many conflicts (``None`` = unlimited).
            time_limit: Abort with :attr:`SolverResult.UNKNOWN` after this many
                seconds (``None`` = unlimited).
            assumptions: Literals assumed true for this call only.  They are
                enqueued as pseudo-decisions before the free search, so a
                :attr:`SolverResult.SAT` model satisfies all of them, and an
                :attr:`SolverResult.UNSAT` answer means "unsatisfiable under
                these assumptions" — the solver stays usable and a later call
                without (or with other) assumptions is unaffected.

        Returns:
            :attr:`SolverResult.SAT`, :attr:`SolverResult.UNSAT` or
            :attr:`SolverResult.UNKNOWN`.
        """
        assumption_list: List[int] = []
        if assumptions is not None:
            for literal in assumptions:
                if literal == 0:
                    raise ValueError("0 is not a valid literal")
                assumption_list.append(literal)
                self._ensure_var(abs(literal))
        # An empty core is the default: it stays empty on SAT/UNKNOWN and on
        # UNSAT answers that hold regardless of the assumptions.
        self._last_core = ()
        if self._unsat:
            return SolverResult.UNSAT
        start_time = time.monotonic()
        self._backtrack(0)
        # Re-propagate the whole level-0 trail so that clauses added since the
        # previous call are taken into account.
        self._propagation_head = 0
        while self._pending_units:
            literal = self._pending_units.pop()
            self._ensure_var(abs(literal))
            if not self._enqueue(literal, None):
                self._unsat = True
                return SolverResult.UNSAT
        if self._propagate() is not None:
            self._unsat = True
            return SolverResult.UNSAT

        total_conflicts = 0
        restart_count = 0
        restart_limit = 100 * self._luby(restart_count + 1)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.statistics["conflicts"] += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._unsat = True
                    return SolverResult.UNSAT
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                seq = self._learned_seq
                self._learned_seq += 1
                if len(learned) == 1:
                    self._learned_units.append((seq, learned[0]))
                    self._enqueue(learned[0], None)
                else:
                    clause = _Clause(list(learned), learned=True, seq=seq)
                    self._learned.append(clause)
                    self._attach(clause)
                    self._bump_clause(clause)
                    self._enqueue(learned[0], clause)
                self._decay_var_activity()
                self._decay_clause_activity()
                if conflict_limit is not None and total_conflicts >= conflict_limit:
                    return SolverResult.UNKNOWN
                if time_limit is not None and time.monotonic() - start_time > time_limit:
                    return SolverResult.UNKNOWN
                if total_conflicts % 1024 == 0:
                    self._reduce_learned()
            else:
                if conflicts_since_restart >= restart_limit:
                    restart_count += 1
                    self.statistics["restarts"] += 1
                    restart_limit = 100 * self._luby(restart_count + 1)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                    continue
                # Re-establish assumptions (MiniSat style): assumption i is
                # the decision of level i+1, so backjumps and restarts that
                # pop assumption levels simply re-enter them here.
                level = self._decision_level()
                if level < len(assumption_list):
                    literal = assumption_list[level]
                    value = self._value(literal)
                    if value is False:
                        # The formula together with the earlier assumptions
                        # forces the negation: UNSAT under assumptions only,
                        # so the solver itself stays usable.  Extract the
                        # failing assumption subset before unwinding.
                        self._last_core = self._analyze_final(literal)
                        self._backtrack(0)
                        return SolverResult.UNSAT
                    self._trail_lim.append(len(self._trail))
                    if value is None:
                        self._enqueue(literal, None)
                    # Already-true assumptions still consume one (empty)
                    # decision level to keep the level/index alignment.
                    continue
                variable = self._pick_branch_variable()
                if variable is None:
                    return SolverResult.SAT
                self.statistics["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                literal = variable if self._phase[variable] else -variable
                self._enqueue(literal, None)

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------
    def model(self) -> Dict[int, bool]:
        """Return the satisfying assignment found by the last ``solve()`` call.

        Unconstrained variables default to False.
        """
        return {
            var: bool(self._assign[var]) if self._assign[var] is not None else False
            for var in range(1, self._num_vars + 1)
        }

    def value(self, literal: int) -> bool:
        """Truth value of *literal* in the current model."""
        value = self._value(literal)
        return bool(value) if value is not None else literal < 0

    # ------------------------------------------------------------------
    # Cores and warm starts
    # ------------------------------------------------------------------
    def last_core(self) -> Tuple[int, ...]:
        """The failing assumption subset of the last ``solve()`` call.

        Non-empty only when the last call returned
        :attr:`SolverResult.UNSAT` *because of its assumptions*: the tuple
        is then a subset of the assumption literals passed in, and solving
        with just that subset assumed is still unsatisfiable.  Empty after
        SAT and UNKNOWN answers, and after UNSAT answers that hold
        regardless of the assumptions (the formula alone is inconsistent).
        """
        return self._last_core

    def seed_phases(self, assignment: Mapping[int, bool]) -> None:
        """Install *assignment* as the saved phases (a model warm start).

        Phase saving only steers which polarity a decision variable is tried
        first, so seeding never affects correctness — but when *assignment*
        is (close to) a model of the formula, the next search tends to walk
        straight into it instead of rediscovering it conflict by conflict.
        """
        for var, value in assignment.items():
            if var <= 0:
                raise ValueError("variables must be positive")
            self._ensure_var(var)
            self._phase[var] = bool(value)

    # ------------------------------------------------------------------
    # Learned-clause export / import (cross-instance clause sharing)
    # ------------------------------------------------------------------
    def freeze_exports(self) -> None:
        """Stop exporting clauses learned from this point on.

        Call this when a permanent clause is added that is *not* implied by
        the original formula (for example a committed objective bound):
        clauses learned afterwards may depend on it, so they are no longer
        consequences of the formula alone and must not be exported into
        other instances.  The earliest freeze wins; clauses learned before
        it stay exportable forever.
        """
        if self._export_boundary is None:
            self._export_boundary = self._learned_seq

    def export_learned(
        self,
        max_size: Optional[int] = None,
        var_ok: Optional[Callable[[int], bool]] = None,
    ) -> List[Tuple[int, ...]]:
        """Learned clauses implied by the formula alone, oldest first.

        Only clauses learned before the :meth:`freeze_exports` boundary are
        returned (all of them when no freeze happened).  Learned *units* are
        included — they are the strongest facts the search produced.

        Args:
            max_size: Skip clauses with more literals than this (short
                clauses prune the most per literal; ``None`` = no filter).
            var_ok: Predicate over variable indices; a clause is exported
                only when every variable it mentions passes (used to
                restrict the export to layers shared with the import
                target; ``None`` = no filter).

        Returns:
            Clause literal tuples, ordered by learning sequence.
        """
        boundary = self._export_boundary
        exported: List[Tuple[int, Tuple[int, ...]]] = []
        for seq, literal in self._learned_units:
            if boundary is not None and seq >= boundary:
                continue
            if var_ok is not None and not var_ok(abs(literal)):
                continue
            exported.append((seq, (literal,)))
        for clause in self._learned:
            if boundary is not None and clause.seq >= boundary:
                continue
            literals = clause.literals
            if max_size is not None and len(literals) > max_size:
                continue
            if var_ok is not None and not all(var_ok(abs(l)) for l in literals):
                continue
            exported.append((clause.seq, tuple(literals)))
        exported.sort(key=lambda item: item[0])
        return [literals for _, literals in exported]

    def import_clauses(self, clauses: Iterable[Sequence[int]]) -> int:
        """Add externally learned clauses (deduplicated) as learned clauses.

        The caller is responsible for every clause being *implied* by this
        solver's formula — imports must never change the set of models (see
        :func:`repro.exact.sweep.clause_is_implied` for the debug check).
        Duplicates — within the batch and across earlier imports — are
        skipped, as are tautologies.

        Returns:
            The number of clauses actually added.
        """
        added = 0
        for literals in clauses:
            unique: List[int] = []
            seen: set = set()
            tautology = False
            for literal in literals:
                if literal == 0:
                    raise ValueError("0 is not a valid literal")
                if literal in seen:
                    continue
                if -literal in seen:
                    tautology = True
                    break
                seen.add(literal)
                unique.append(literal)
            if tautology or not unique:
                continue
            key = frozenset(unique)
            if key in self._import_keys:
                self.statistics["import_duplicates"] += 1
                continue
            self._import_keys.add(key)
            for literal in unique:
                self._ensure_var(abs(literal))
            if len(unique) == 1:
                self._pending_units.append(unique[0])
            else:
                clause = _Clause(unique, learned=True, seq=self._learned_seq)
                self._learned_seq += 1
                self._learned.append(clause)
                self._attach(clause)
            added += 1
            self.statistics["clauses_imported"] += 1
        return added


__all__ = ["CDCLSolver", "SolverResult"]
