"""Process-wide fault injection for chaos testing.

The serving stack crosses several failure domains — worker processes, a
shared SQLite store, raw sockets — and every one of its degradation paths
(redelivery, retries, circuit breakers) is only trustworthy if it can be
*exercised*.  This module provides named injection points that production
code guards with a single module-flag check::

    from repro import faults

    ...
    if faults.ARMED:
        faults.fire("store.put")

With no faults armed (the default) the guard is one attribute read and the
``fire`` call never happens — hot paths pay nothing, and solver counter
pins stay bit-identical.  Faults are armed from the environment::

    REPRO_FAULTS="store.put:fail:0.3:7,wire.read:drop:0.1:7"

Each comma-separated spec is ``point:mode[:prob[:seed]]``:

* ``point`` — a registered injection point name (see :data:`FAULT_POINTS`),
  or a prefix ending in ``*`` (``store.*``) matching several points.
* ``mode`` — what happens when the fault fires:

  - ``fail``    — raise :class:`FaultInjectedError` at the call site,
  - ``delay``   — sleep :data:`DELAY_SECONDS` (stall, do not break),
  - ``drop``    — the call site discards the unit of work (a frame, a row),
  - ``corrupt`` — the call site mangles its payload bytes.

* ``prob`` — firing probability per check, default 1.0.
* ``seed`` — seeds the rule's private RNG; two runs with the same spec see
  the same firing schedule, which is what makes chaos runs replayable.

Call-site contract: ``fire(point)`` raises on ``fail``, sleeps on
``delay``, and returns the fired mode (or ``None``) so the caller can
implement ``drop``/``corrupt`` where only it knows what those mean;
``mangle(point, data)`` is the byte-corruption helper for the latter.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Optional, Tuple

#: Fast-path flag: ``True`` iff at least one fault rule is armed.  Call
#: sites check this before calling :func:`fire` so the disarmed cost is a
#: single module-attribute read.
ARMED = False

#: Environment variable holding the fault specs.
ENV_VAR = "REPRO_FAULTS"

#: How long a ``delay`` fault stalls the call site, in seconds.  Long
#: enough to widen race windows, short enough to keep chaos tests quick.
DELAY_SECONDS = 0.05

#: The catalogue of named injection points.  Arming an unknown point is an
#: error — a typo in a chaos schedule must fail loudly, not silently test
#: nothing.
FAULT_POINTS = (
    "store.put",        # persisting a mapping result to SQLite
    "store.get",        # reading a cached result back
    "store.journal",    # journal bookkeeping reads/writes
    "wire.read",        # receiving an HTTP response / WebSocket frame
    "wire.write",       # sending an HTTP request / WebSocket frame
    "worker.spawn",     # launching a worker subprocess
    "worker.dispatch",  # supervisor proxying a request to a worker
    "solver.step",      # a CDCL conflict boundary
)

_MODES = ("fail", "delay", "drop", "corrupt")


class FaultInjectedError(ConnectionError):
    """An armed ``fail`` fault fired.

    Subclasses :class:`ConnectionError` so the retry/backoff paths that
    guard process boundaries treat an injected failure exactly like a real
    one — the whole point of injecting it.
    """

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class _Rule:
    """One armed fault: mode, firing probability, private deterministic RNG."""

    __slots__ = ("point", "mode", "probability", "_rng", "fired")

    def __init__(self, point: str, mode: str, probability: float, seed: int):
        self.point = point
        self.mode = mode
        self.probability = probability
        self._rng = random.Random(seed)
        self.fired = 0

    def check(self) -> Optional[str]:
        if self.probability < 1.0 and self._rng.random() >= self.probability:
            return None
        self.fired += 1
        return self.mode


#: point -> armed rule.  Prefix specs are expanded at arm time.
_RULES: Dict[str, _Rule] = {}


def _parse_spec(spec: str) -> List[Tuple[str, str, float, int]]:
    parts = spec.split(":")
    if len(parts) < 2 or len(parts) > 4:
        raise ValueError(
            f"bad fault spec {spec!r}: expected point:mode[:prob[:seed]]"
        )
    point, mode = parts[0].strip(), parts[1].strip()
    probability = float(parts[2]) if len(parts) > 2 else 1.0
    seed = int(parts[3]) if len(parts) > 3 else 0
    if mode not in _MODES:
        raise ValueError(f"bad fault mode {mode!r}: expected one of {_MODES}")
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"fault probability {probability} outside [0, 1]")
    if point.endswith("*"):
        prefix = point[:-1]
        matched = [name for name in FAULT_POINTS if name.startswith(prefix)]
        if not matched:
            raise ValueError(f"fault prefix {point!r} matches no known point")
        return [(name, mode, probability, seed) for name in matched]
    if point not in FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; known: {', '.join(FAULT_POINTS)}"
        )
    return [(point, mode, probability, seed)]


def arm(specs: str) -> None:
    """Arm the comma-separated fault *specs* (replacing any armed before)."""
    global ARMED
    rules: Dict[str, _Rule] = {}
    for spec in specs.split(","):
        spec = spec.strip()
        if not spec:
            continue
        for point, mode, probability, seed in _parse_spec(spec):
            rules[point] = _Rule(point, mode, probability, seed)
    _RULES.clear()
    _RULES.update(rules)
    ARMED = bool(_RULES)


def disarm() -> None:
    """Remove every armed fault (hot paths go back to the no-op flag check)."""
    global ARMED
    _RULES.clear()
    ARMED = False


def active(point: str) -> Optional[str]:
    """The mode that fires at *point* for this check, or ``None``.

    Consumes one draw of the rule's RNG when a probabilistic rule is armed
    at *point* — determinism holds per-point, not globally.
    """
    rule = _RULES.get(point)
    if rule is None:
        return None
    return rule.check()


def fire(point: str) -> Optional[str]:
    """Evaluate the fault at *point* and enact the generic part of it.

    Raises :class:`FaultInjectedError` for ``fail``, sleeps for ``delay``,
    and returns the fired mode — ``drop`` and ``corrupt`` are returned for
    the call site to enact, since only it knows what dropping or
    corrupting means there.  Returns ``None`` when nothing fires.
    """
    mode = active(point)
    if mode == "fail":
        raise FaultInjectedError(point)
    if mode == "delay":
        time.sleep(DELAY_SECONDS)
    return mode


def mangle(point: str, data: bytes) -> bytes:
    """*data* with a deterministic byte flipped (the ``corrupt`` helper).

    The flipped offset derives from the rule's fire count, so repeated
    corruptions hit different offsets but the same ones on every replay.
    """
    if not data:
        return data
    rule = _RULES.get(point)
    offset = (rule.fired if rule is not None else 0) % len(data)
    corrupted = bytearray(data)
    corrupted[offset] ^= 0xFF
    return bytes(corrupted)


def fired_counts() -> Dict[str, int]:
    """How often each armed point has fired so far (for chaos-run ledgers)."""
    return {point: rule.fired for point, rule in _RULES.items() if rule.fired}


def _arm_from_environment() -> None:
    specs = os.environ.get(ENV_VAR, "").strip()
    if specs:
        arm(specs)


_arm_from_environment()

__all__ = [
    "ARMED",
    "DELAY_SECONDS",
    "ENV_VAR",
    "FAULT_POINTS",
    "FaultInjectedError",
    "active",
    "arm",
    "disarm",
    "fire",
    "fired_counts",
    "mangle",
]
