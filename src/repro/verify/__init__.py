"""Verification utilities: coupling compliance and cost accounting."""

from repro.verify.compliance import (
    ComplianceReport,
    check_coupling_compliance,
    count_added_operations,
    verify_result,
)

__all__ = [
    "ComplianceReport",
    "check_coupling_compliance",
    "count_added_operations",
    "verify_result",
]
