"""Checks that a mapped circuit respects the architecture's constraints.

A mapped circuit is *compliant* when every CNOT acts on a pair ``(control,
target)`` that appears in the coupling map with exactly this orientation
(reversed CNOTs must already have been rewritten with Hadamards by the
mapper).  The report also recomputes the cost accounting so results can be
validated independently of the mapper that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.cost import REVERSAL_COST, SWAP_COST
from repro.exact.result import MappingResult


@dataclass
class ComplianceReport:
    """Result of a compliance check.

    Attributes:
        compliant: True when every CNOT respects the coupling map.
        violations: List of (gate index, control, target) triples of CNOTs
            placed on pairs the architecture does not support.
        total_operations: Elementary operation count of the circuit
            (SWAP gates counted as 7).
        cnot_count: Number of CNOT gates.
        single_qubit_count: Number of single-qubit gates.
    """

    compliant: bool
    violations: List[Tuple[int, int, int]] = field(default_factory=list)
    total_operations: int = 0
    cnot_count: int = 0
    single_qubit_count: int = 0


def check_coupling_compliance(circuit: QuantumCircuit,
                              coupling: CouplingMap) -> ComplianceReport:
    """Check every CNOT of *circuit* against *coupling*.

    Explicit ``swap`` gates are accepted when the two qubits are coupled in
    either direction (their decomposition can always be oriented correctly).
    """
    violations: List[Tuple[int, int, int]] = []
    for index, gate in enumerate(circuit.gates):
        if gate.is_cnot:
            if not coupling.allows_cnot(gate.control, gate.target):
                violations.append((index, gate.control, gate.target))
        elif gate.name == "swap":
            if not coupling.connected(gate.qubits[0], gate.qubits[1]):
                violations.append((index, gate.qubits[0], gate.qubits[1]))
    return ComplianceReport(
        compliant=not violations,
        violations=violations,
        total_operations=circuit.gate_cost(),
        cnot_count=circuit.count_cnot(),
        single_qubit_count=circuit.count_single_qubit(),
    )


def count_added_operations(original: QuantumCircuit,
                           mapped: QuantumCircuit) -> int:
    """Number of elementary operations added by a mapping.

    Computed directly from the gate counts of the two circuits (explicit
    ``swap`` gates in the mapped circuit count as 7 operations).
    """
    return mapped.gate_cost() - original.gate_cost()


def verify_result(result: MappingResult, coupling: CouplingMap,
                  check_cost: bool = True) -> ComplianceReport:
    """Validate a :class:`MappingResult`: compliance and cost bookkeeping.

    Args:
        result: The mapping result to validate.
        coupling: The architecture the result claims to target.
        check_cost: Also recompute the added cost from the gate counts and
            compare it with the result's :class:`CostBreakdown`.

    Returns:
        The compliance report of the mapped circuit.

    Raises:
        AssertionError: If ``check_cost`` is set and the recomputed cost does
            not match the reported breakdown.
    """
    report = check_coupling_compliance(result.mapped_circuit, coupling)
    if check_cost:
        recomputed_added = count_added_operations(
            result.original_circuit, result.mapped_circuit
        )
        expected_added = (
            SWAP_COST * result.cost.swaps + REVERSAL_COST * result.cost.reversals
        )
        if recomputed_added != expected_added:
            raise AssertionError(
                f"cost mismatch: gate counts imply {recomputed_added} added "
                f"operations but the breakdown reports {expected_added}"
            )
    return report


__all__ = [
    "ComplianceReport",
    "check_coupling_compliance",
    "count_added_operations",
    "verify_result",
]
