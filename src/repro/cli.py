"""Command-line interface: map OpenQASM circuits, serve batches, manage caches.

Engines are resolved through the mapper backend registry
(:mod:`repro.pipeline.registry`), so every registered name — built-in or
added at runtime via :func:`repro.pipeline.register_mapper` — is a valid
``--engine`` argument.

The command has four entry points.  The classic mapping invocation (the
default, kept flag-compatible with earlier releases) maps one circuit; the
``serve`` subcommand drives a whole batch through the async
:class:`~repro.service.service.MappingService` with result caching and
multi-device routing; the ``listen`` subcommand runs the network serving
layer (HTTP/WebSocket front end, multi-process workers behind a
supervisor); the ``cache`` subcommand inspects, clears and prunes the
in-memory and on-disk caches — locally or on a running server via
``--url``.

Examples::

    repro-map circuit.qasm --arch qx4 --engine dp
    repro-map circuit.qasm --arch qx4 --engine sat --strategy odd --subsets
    repro-map circuit.qasm --engine sat --subsets --workers 4 --cache-dir ~/.repro
    repro-map serve a.qasm b.qasm --arch qx4 --arch qx5 --engine dp --workers 4
    repro-map listen --port 8137 --workers 4 --arch qx4 --arch qx5
    repro-map cache stats --cache-dir ~/.repro
    repro-map cache stats --url 127.0.0.1:8137
    repro-map cache artifacts --cache-dir ~/.repro
    repro-map cache artifacts --url 127.0.0.1:8137
    repro-map cache prune --ttl 3600 --cache-dir ~/.repro
    repro-map cache prune --url 127.0.0.1:8137
    repro-map cache clear --cache-dir ~/.repro
    repro-map --list-engines
    python -m repro.cli circuit.qasm --arch qx4

The mapping and ``serve`` paths honour ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable): permutation tables are
warm-started from disk and mapping results are served from the persistent
fingerprint-keyed result store instead of being re-solved.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.arch import get_architecture
from repro.circuit import parse_qasm_file
from repro.circuit.qasm import write_qasm_file
from repro.pipeline.cache import cache_stats, clear_caches, get_cache_dir, set_cache_dir
from repro.pipeline.pipeline import MappingPipeline
from repro.pipeline.registry import available_mappers, resolve_mapper_name
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result

#: Subcommand names dispatched away from the classic mapping invocation.
_SUBCOMMANDS = ("cache", "serve", "listen", "cancel")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the classic mapping invocation."""
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Map an OpenQASM 2.0 circuit to an IBM QX architecture "
        "with a minimal (or close-to-minimal) number of SWAP and H operations. "
        "Subcommands: 'serve' (async batch service), 'cache' (cache admin).",
    )
    parser.add_argument(
        "qasm", nargs="?", default=None, help="input OpenQASM 2.0 file"
    )
    parser.add_argument(
        "--arch", default="ibm_qx4",
        help="target architecture (ibm_qx2, ibm_qx4, ibm_qx5, ibm_tokyo)",
    )
    parser.add_argument(
        "--engine", default="dp",
        help="mapping engine from the backend registry "
        f"({', '.join(available_mappers())}; default: dp, the fast exact engine)",
    )
    parser.add_argument(
        "--list-engines", action="store_true",
        help="list the registered mapping engines and exit",
    )
    parser.add_argument(
        "--list-optimizers", action="store_true",
        help="list the registered optimizer strategies (with descriptions) "
        "and exit",
    )
    parser.add_argument(
        "--strategy", default="all",
        help="permutation-restriction strategy for the exact engines "
        "(all, disjoint, odd, triangle)",
    )
    parser.add_argument(
        "--optimizer", default=None,
        help="objective-search strategy of the SAT stage (linear, binary, "
        "core, or 'race' for the portfolio engine; default: linear). "
        "'core' uses MaxSAT-style UNSAT-core-guided descent",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="on a proven-optimal SAT result, print the final UNSAT core "
        "mapped to human-readable constraint labels (which objective "
        "selectors / bound-ladder nodes bind); most informative with "
        "--optimizer core or binary",
    )
    parser.add_argument(
        "--subsets", action="store_true",
        help="restrict the SAT engine to connected subsets of physical qubits "
        "(Section 4.1 of the paper)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None,
        help="wall-clock budget in seconds for the SAT engine",
    )
    parser.add_argument(
        "--split-window", type=int, default=None, metavar="N",
        help="solve the circuit in windows of N CNOTs, each exactly on its "
        "active-qubit sub-coupling, stitching windows with synthesized "
        "permutations (the scalability path for big devices such as "
        "ibm_qx5/ibm_tokyo; implies the sat_split engine, result is an "
        "upper bound)",
    )
    parser.add_argument(
        "--trials", type=int, default=5,
        help="number of trials for the stochastic heuristic (default 5)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker count for the parallel subset fan-out of the SAT engine "
        "(default 1: sequential; combine with --executor process for real "
        "speed-ups, the pure-Python solver holds the GIL)",
    )
    parser.add_argument(
        "--executor", default="thread", choices=["thread", "process"],
        help="worker pool type used with --workers > 1 (default: thread)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache directory: permutation tables are warm-started "
        "from disk and results are served from the fingerprint-keyed store "
        "(defaults to $REPRO_CACHE_DIR when set; omit both for no persistence)",
    )
    parser.add_argument(
        "--result-ttl", type=float, default=None,
        help="treat cached results older than this many seconds as misses "
        "(requires --cache-dir; expired rows are purged lazily)",
    )
    parser.add_argument(
        "--upper-bound", type=int, default=None,
        help="known valid upper bound on the added cost, asserted before the "
        "exact search starts (engines with restricted search spaces ignore it)",
    )
    parser.add_argument(
        "--no-bound-seeding", action="store_true",
        help="do not warm-start the exact search from cached results of the "
        "same circuit (bound seeding is on whenever --cache-dir is active)",
    )
    parser.add_argument(
        "--no-model-seeding", action="store_true",
        help="seed only the objective bound from cached results, never the "
        "cached schedule as an incumbent model (model seeding is on "
        "whenever bound seeding is)",
    )
    parser.add_argument(
        "--no-artifact-seeding", action="store_true",
        help="do not warm-start the SAT engine from stored solve artifacts "
        "(learned clauses, per-family lower bounds, phase/model snapshots) "
        "of structurally identical past jobs (artifact seeding is on "
        "whenever --cache-dir is active)",
    )
    parser.add_argument(
        "--output", default=None, help="write the mapped circuit to this QASM file"
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="additionally check functional equivalence by simulation",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the mapping under cProfile and print the top 20 functions "
        "by cumulative time to stderr (future perf work starts from data, "
        "not guesses)",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="with --profile, additionally dump the full pstats data to "
        "FILE for offline analysis (python -m pstats FILE, snakeviz, ...); "
        "implies --profile",
    )
    return parser


def _engine_options(engine: str, args: argparse.Namespace) -> Dict[str, Any]:
    """Translate CLI flags into constructor options for *engine*.

    Only the options an engine understands are forwarded, so registry names
    without matching flags (custom engines, heuristics) keep working.
    """
    options: Dict[str, Any] = {}
    if engine in ("sat", "dp", "portfolio", "sat_split"):
        options["strategy"] = args.strategy
    if engine in ("sat", "portfolio"):
        options["use_subsets"] = args.subsets
    if engine in ("sat", "portfolio", "sat_split"):
        options["time_limit"] = args.time_limit
        if getattr(args, "optimizer", None) is not None:
            options["optimizer"] = args.optimizer
    if engine == "sat_split" and getattr(args, "split_window", None) is not None:
        options["window_size"] = args.split_window
    if engine == "stochastic":
        options["trials"] = args.trials
    return options


def _validate_optimizer(parser: argparse.ArgumentParser, args: argparse.Namespace,
                        engine: str) -> None:
    """Fail fast on an unknown ``--optimizer`` value (with the valid names)."""
    optimizer = getattr(args, "optimizer", None)
    if optimizer is None:
        return
    from repro.sat.optimize import available_optimizers

    valid = list(available_optimizers())
    if engine == "portfolio":
        valid.append("race")
    if optimizer == "race" and engine != "portfolio":
        parser.error(
            "--optimizer race is only supported by the portfolio engine "
            f"(got engine {engine!r})"
        )
    from repro.sat.optimize import resolve_optimizer_name

    if optimizer != "race":
        try:
            resolve_optimizer_name(optimizer)
        except ValueError:
            parser.error(
                f"unknown --optimizer {optimizer!r}; choose one of "
                f"{', '.join(valid)} (see --list-optimizers)"
            )
    if engine not in ("sat", "portfolio", "sat_split"):
        parser.error(
            f"--optimizer only applies to the sat, sat_split and portfolio "
            f"engines (got engine {engine!r})"
        )


def _print_optimizers() -> None:
    from repro.sat.optimize import optimizer_descriptions

    descriptions = optimizer_descriptions()
    width = max(len(name) for name in descriptions)
    for name, description in descriptions.items():
        print(f"{name:{width}s}  {description}")
    print(f"{'race':{width}s}  portfolio engine only: race linear vs. "
          "core-guided descent, first proven result wins")


def _print_explanation(result) -> None:
    """Print the final UNSAT core of a proven-optimal result, if recorded."""
    if not result.optimal:
        print("explain            : result is not proven optimal; no final "
              "UNSAT core to report")
        return
    labels = result.statistics.get("final_core")
    if not labels:
        print("explain            : no UNSAT core recorded (the linear "
              "strategy proves optimality via committed bounds; re-run with "
              "--optimizer core or binary for a core)")
        return
    print(f"final UNSAT core   : {len(labels)} binding constraint(s) at the "
          "optimum — no cheaper schedule can satisfy all of:")
    for label in labels:
        print(f"  - {label}")


def _activate_cache_dir(cache_dir: Optional[str]) -> Optional[str]:
    """Apply an explicit ``--cache-dir`` and return the active directory."""
    if cache_dir is not None:
        set_cache_dir(cache_dir)
    return get_cache_dir()


def _profiled_map(pipeline: MappingPipeline, circuit, profile_out=None):
    """Map *circuit* under cProfile; print the top functions to stderr.

    The report goes to stderr so the normal result summary on stdout stays
    machine-parseable.  When *profile_out* is given, the full pstats data is
    additionally dumped there (loadable with ``python -m pstats FILE`` or
    any pstats viewer) — the top-20 summary only shows where time went,
    the dump lets callers drill into callers/callees offline.
    """
    import cProfile
    import io
    import pstats

    profile = cProfile.Profile()
    profile.enable()
    try:
        result = pipeline.map(circuit)
    finally:
        profile.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profile, stream=stream)
        stats.sort_stats("cumulative").print_stats(20)
        print("--- cProfile: top 20 functions by cumulative time ---",
              file=sys.stderr)
        print(stream.getvalue(), file=sys.stderr, end="")
        if profile_out is not None:
            stats.dump_stats(profile_out)
            print(f"full profile data written to {profile_out}",
                  file=sys.stderr)
    return result


# ----------------------------------------------------------------------
# Classic single-circuit mapping
# ----------------------------------------------------------------------
def _run_map(argv: Sequence[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_engines:
        for name in available_mappers():
            print(name)
        return 0
    if args.list_optimizers:
        _print_optimizers()
        return 0
    if args.qasm is None:
        parser.error(
            "the qasm input file is required "
            "(or use --list-engines / --list-optimizers)"
        )
    if args.upper_bound is not None and args.upper_bound < 0:
        parser.error("--upper-bound must be non-negative")
    if args.result_ttl is not None and args.result_ttl <= 0:
        parser.error("--result-ttl must be positive")

    try:
        engine = resolve_mapper_name(args.engine)
    except KeyError as error:
        parser.error(str(error))
    if args.split_window is not None:
        if args.split_window < 1:
            parser.error("--split-window must be at least 1")
        if engine == "sat":
            engine = "sat_split"
        elif engine != "sat_split":
            parser.error(
                "--split-window only applies to the sat / sat_split engines "
                f"(got engine {engine!r})"
            )
    _validate_optimizer(parser, args, engine)
    try:
        coupling = get_architecture(args.arch)
    except KeyError as error:
        parser.error(str(error))
    circuit = parse_qasm_file(args.qasm)
    options = _engine_options(engine, args)
    cache_dir = _activate_cache_dir(args.cache_dir)
    if args.result_ttl is not None and cache_dir is None:
        parser.error("--result-ttl requires --cache-dir (or REPRO_CACHE_DIR)")

    store = None
    fingerprint = None
    cache_hit = False
    if cache_dir is not None:
        from repro.service.fingerprint import job_fingerprint
        from repro.service.store import ResultStore

        store = ResultStore.at(cache_dir, ttl_seconds=args.result_ttl)
        fingerprint = job_fingerprint(circuit, coupling, engine, options)
        result = store.get(fingerprint)
        cache_hit = result is not None
    if not cache_hit:
        providers = []
        if store is not None and not args.no_bound_seeding:
            from repro.pipeline.bounds import ModelProvider, StoreBoundProvider

            provider_cls = (
                StoreBoundProvider if args.no_model_seeding else ModelProvider
            )
            providers.append(provider_cls(store, couplings=[coupling]))
        if store is not None and not args.no_artifact_seeding:
            from repro.pipeline.bounds import ClauseProvider

            providers.append(ClauseProvider(store, couplings=[coupling]))
        if args.upper_bound is not None:
            from repro.pipeline.bounds import StaticBoundProvider

            providers.append(StaticBoundProvider(args.upper_bound))
        pipeline = MappingPipeline(
            coupling,
            engine=engine,
            engine_options=options,
            workers=args.workers,
            executor=args.executor,
            bound_providers=providers or None,
        )
        from repro.exact.sat_mapper import SATMapperError

        try:
            if args.profile or args.profile_out:
                result = _profiled_map(pipeline, circuit, args.profile_out)
            else:
                result = pipeline.map(circuit)
        except SATMapperError as error:
            hint = (
                " (is --upper-bound really achievable?)"
                if args.upper_bound is not None else ""
            )
            print(f"error: {error}{hint}", file=sys.stderr)
            return 1
        if store is not None:
            from repro.service.errors import ServiceError
            from repro.service.fingerprint import coupling_fingerprint

            try:
                store.put(
                    fingerprint, result,
                    circuit_fp=circuit.fingerprint(),
                    arch_fp=coupling_fingerprint(coupling),
                )
            except ServiceError as error:
                # A failing cache directory must not fail a successful
                # mapping run; mirror the permutation-table layer's policy.
                print(f"warning: result not cached ({error})", file=sys.stderr)
    report = verify_result(result, coupling)

    print(f"circuit           : {circuit.name}")
    print(f"logical qubits    : {circuit.num_qubits}")
    print(f"original gates    : {circuit.count_single_qubit() + circuit.count_cnot()}")
    print(f"engine            : {result.engine} (strategy {result.strategy})")
    print(f"mapped gates      : {result.total_cost}")
    print(f"added operations  : {result.added_cost} "
          f"({result.cost.swaps} SWAPs, {result.cost.reversals} reversals)")
    print(f"proven minimal    : {result.optimal}")
    print(f"coupling compliant: {report.compliant}")
    print(f"runtime           : {result.runtime_seconds:.3f} s")
    if store is not None:
        print(f"result cache      : {'hit' if cache_hit else 'miss'} ({cache_dir})")
    # The annotation is persisted with the result, so only report it for
    # the run that actually solved (a cache hit seeds nothing).
    seeded_bound = result.statistics.get("external_bound")
    if seeded_bound is not None and not cache_hit:
        provider = result.statistics.get("bound_provider", "unknown")
        print(f"bound seeded      : {seeded_bound} (provider: {provider})")
    seeded_model = result.statistics.get("seeded_model_objective")
    if seeded_model is not None and not cache_hit:
        source = result.statistics.get("seeded_model_source", "same")
        print(f"model seeded      : cost {seeded_model} ({source} hit, "
              "replayed as incumbent)")
    if result.statistics.get("artifact_seeding") and not cache_hit:
        hits = result.statistics.get("artifact_hits", 0)
        print(
            "artifact seeding  : "
            f"{hits} family hit(s), "
            f"{result.statistics.get('artifact_clauses_imported', 0)} clause(s), "
            f"{result.statistics.get('artifact_bounds_used', 0)} bound(s), "
            f"{result.statistics.get('artifact_models_used', 0)} model(s) used"
        )
    for note in result.statistics.get("seed_notes", []) if not cache_hit else []:
        print(f"seed note         : {note}")
    if args.explain:
        _print_explanation(result)
    if args.verify:
        equivalent = result_is_equivalent(result)
        print(f"equivalence check : {'passed' if equivalent else 'FAILED'}")
        if not equivalent:
            return 1
    if args.output:
        write_qasm_file(result.mapped_circuit, args.output)
        print(f"mapped circuit written to {args.output}")
    return 0


# ----------------------------------------------------------------------
# cache subcommand
# ----------------------------------------------------------------------
def _build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map cache",
        description="Inspect, clear or prune the per-architecture artefact "
        "caches and the persistent result store (locally, or on a running "
        "server via --url).  'artifacts' summarises the solve-artifact "
        "table (warm-start rows keyed by encoding skeleton): row count "
        "and payload bytes locally, plus seeding hit rates via --url.",
    )
    parser.add_argument("action", choices=["stats", "clear", "prune", "artifacts"])
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (defaults to $REPRO_CACHE_DIR; without one "
        "only the in-process caches are touched)",
    )
    parser.add_argument(
        "--ttl", type=float, default=None,
        help="for 'prune': drop result-store rows older than this many "
        "seconds (required for a local prune; optional with --url, where "
        "omitting it only flushes the workers' in-memory caches)",
    )
    parser.add_argument(
        "--url", default=None, metavar="HOST:PORT",
        help="operate on a running repro-map listen server instead of the "
        "local filesystem: 'stats' fetches GET /v1/stats, 'prune' posts "
        "the invalidation broadcast to POST /v1/cache/prune",
    )
    return parser


def _parse_url(url: str) -> "tuple[str, int]":
    """Split a ``host:port`` (scheme prefix tolerated) into its parts."""
    stripped = url.split("//", 1)[-1].rstrip("/")
    host, _, port = stripped.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {url!r}")
    return host, int(port)


def _http_json(method: str, url: str, target: str, body=None):
    """One protocol request against a running server; returns the envelope."""
    import json as _json

    from repro.server import wire

    host, port = _parse_url(url)

    async def call():
        status, _headers, payload = await wire.http_request(
            host, port, method, target, body=body
        )
        return status, _json.loads(payload)

    return asyncio.run(call())


def _run_cache(argv: Sequence[str]) -> int:
    import json as _json

    parser = _build_cache_parser()
    args = parser.parse_args(argv)

    if args.url is not None and args.action == "clear":
        parser.error("cache clear is not available over --url")

    if args.action == "prune":
        if args.url is not None:
            from repro.server.protocol import PruneRequest

            request = PruneRequest(ttl_seconds=args.ttl, flush_memory=True)
            status, envelope = _http_json(
                "POST", args.url, "/v1/cache/prune",
                _json.dumps(request.to_wire()).encode(),
            )
            print(_json.dumps(envelope["payload"], indent=2, sort_keys=True))
            return 0 if status == 200 else 1
        cache_dir = _activate_cache_dir(args.cache_dir)
        if args.ttl is None:
            parser.error("cache prune requires --ttl SECONDS (or --url)")
        if cache_dir is None:
            parser.error(
                "cache prune needs a persistent store "
                "(use --cache-dir, REPRO_CACHE_DIR, or --url)"
            )
        from repro.service.store import ResultStore

        report = ResultStore.at(cache_dir).prune_report(ttl_seconds=args.ttl)
        report["cache_dir"] = cache_dir
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0

    if args.action == "artifacts":
        if args.url is not None:
            status, envelope = _http_json("GET", args.url, "/v1/stats")
            payload = envelope.get("payload", {})
            summary: Dict[str, Any] = {}
            per_worker = payload.get("workers") or {}
            if not per_worker and isinstance(payload.get("stats"), dict):
                stats = payload["stats"]
                worker_id = stats.get("server", {}).get("worker_id", "w0")
                per_worker = {worker_id: stats}
            for worker_id, stats in sorted(per_worker.items()):
                if not isinstance(stats, dict):
                    continue
                store_stats = stats.get("store", {})
                summary[worker_id] = {
                    "artifact_rows": store_stats.get("artifact_rows", 0),
                    "artifact_bytes": store_stats.get("artifact_bytes", 0),
                    "artifact_seeding": stats.get("artifact_seeding", {}),
                }
            print(_json.dumps(summary, indent=2, sort_keys=True))
            return 0 if status == 200 else 1
        cache_dir = _activate_cache_dir(args.cache_dir)
        if cache_dir is None:
            parser.error(
                "cache artifacts needs a persistent store "
                "(use --cache-dir, REPRO_CACHE_DIR, or --url)"
            )
        from repro.service.store import ResultStore

        rows, payload_bytes = ResultStore.at(cache_dir).artifact_rows()
        print(_json.dumps(
            {
                "cache_dir": cache_dir,
                "artifact_rows": rows,
                "artifact_bytes": payload_bytes,
            },
            indent=2, sort_keys=True,
        ))
        return 0

    if args.action == "stats":
        if args.url is not None:
            status, envelope = _http_json("GET", args.url, "/v1/stats")
            print(_json.dumps(envelope["payload"], indent=2, sort_keys=True))
            return 0 if status == 200 else 1
        cache_dir = _activate_cache_dir(args.cache_dir)
        print("in-process caches:")
        for key, value in sorted(cache_stats().items()):
            print(f"  {key:32s}: {value}")
        if cache_dir is not None:
            from repro.service.store import ResultStore

            print(f"result store ({cache_dir}):")
            for key, value in sorted(ResultStore.at(cache_dir).stats().items()):
                print(f"  {key:32s}: {value}")
        else:
            print("result store: no cache directory configured "
                  "(use --cache-dir or REPRO_CACHE_DIR)")
        return 0

    cache_dir = _activate_cache_dir(args.cache_dir)

    clear_caches()
    print("in-process caches cleared")
    if cache_dir is not None:
        from repro.arch.diskcache import PermutationDiskStore
        from repro.service.store import ResultStore

        removed_tables = PermutationDiskStore(cache_dir).clear()
        removed_results = ResultStore.at(cache_dir).clear()
        print(f"disk cache cleared ({cache_dir}): "
              f"{removed_tables} permutation tables, {removed_results} results")
    return 0


# ----------------------------------------------------------------------
# serve subcommand
# ----------------------------------------------------------------------
def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map serve",
        description="Drive a batch of OpenQASM circuits through the async "
        "mapping service: fingerprint-keyed result caching, in-flight "
        "deduplication and routing across one or more devices.",
    )
    parser.add_argument("qasm", nargs="+", help="input OpenQASM 2.0 files")
    parser.add_argument(
        "--arch", action="append", default=None,
        help="target architecture; repeat the flag to register several "
        "devices and let the service route each circuit to the smallest "
        "one that fits (default: ibm_qx4)",
    )
    parser.add_argument(
        "--engine", default="dp",
        help=f"mapping engine ({', '.join(available_mappers())}; default: dp)",
    )
    parser.add_argument(
        "--strategy", default="all",
        help="permutation-restriction strategy for the exact engines",
    )
    parser.add_argument(
        "--optimizer", default=None,
        help="objective-search strategy of the SAT stage "
        "(linear, binary, core; 'race' with --engine portfolio)",
    )
    parser.add_argument("--subsets", action="store_true",
                        help="restrict the SAT engine to connected subsets")
    parser.add_argument("--time-limit", type=float, default=None,
                        help="wall-clock budget in seconds for the SAT engine")
    parser.add_argument("--trials", type=int, default=5,
                        help="trials for the stochastic heuristic")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count per drained batch (default 2)")
    parser.add_argument("--executor", default="thread",
                        choices=["thread", "process"],
                        help="worker pool type (default: thread)")
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache directory (defaults to $REPRO_CACHE_DIR; "
        "omit both for an in-memory result store)",
    )
    parser.add_argument(
        "--result-ttl", type=float, default=None,
        help="treat cached results older than this many seconds as misses "
        "(expired rows are purged lazily)",
    )
    parser.add_argument(
        "--no-bound-seeding", action="store_true",
        help="do not warm-start exact solves from cached results of the same "
        "circuit on the same or a sub-architecture",
    )
    parser.add_argument(
        "--no-model-seeding", action="store_true",
        help="seed only objective bounds from cached results, never cached "
        "schedules as incumbent models",
    )
    parser.add_argument(
        "--no-artifact-seeding", action="store_true",
        help="do not warm-start exact solves from stored solve artifacts "
        "(learned clauses, per-family lower bounds, phase/model snapshots) "
        "of structurally identical past jobs",
    )
    return parser


async def _serve_batch(args: argparse.Namespace) -> int:
    from repro.service.service import MappingService
    from repro.service.store import ResultStore

    arch_names = args.arch or ["ibm_qx4"]
    couplings = {}
    for name in arch_names:
        coupling = get_architecture(name)
        couplings[coupling.name] = coupling
    engine = resolve_mapper_name(args.engine)
    options = _engine_options(engine, args)
    cache_dir = _activate_cache_dir(args.cache_dir)
    store = (
        ResultStore.at(cache_dir, ttl_seconds=args.result_ttl)
        if cache_dir is not None
        else ResultStore(ttl_seconds=args.result_ttl)
    )

    circuits = [parse_qasm_file(path) for path in args.qasm]
    failures = 0
    async with MappingService(
        couplings,
        engine=engine,
        engine_options=options,
        store=store,
        workers=args.workers,
        executor=args.executor,
        seed_bounds=not args.no_bound_seeding,
        seed_models=not args.no_model_seeding,
        seed_artifacts=not args.no_artifact_seeding,
    ) as service:
        job_ids = await service.submit_many(circuits)
        for job_id in job_ids:
            try:
                result = await service.result(job_id)
            except Exception as error:  # noqa: BLE001 - reported per job
                failures += 1
                status = service.status(job_id)
                print(f"{status['circuit_name']:24s} FAILED   {error}")
                continue
            status = service.status(job_id)
            provenance = status["provenance"]
            if provenance.get("cache_hit"):
                source = "cache"
            elif provenance.get("coalesced"):
                source = "coalesced"
            else:
                source = "solved"
            print(
                f"{status['circuit_name']:24s} {source:7s} "
                f"arch={status['arch']:10s} engine={status['engine']:10s} "
                f"added={result.added_cost:4d} optimal={result.optimal} "
                f"elapsed={provenance.get('elapsed_seconds', 0.0):.3f}s"
            )
        stats = service.stats()
    print(
        f"jobs: {stats['submitted']} submitted, {stats['cache_hits']} cache "
        f"hits, {stats['coalesced']} coalesced, {stats['solved']} solved, "
        f"{stats['failed']} failed"
    )
    if cache_dir is not None:
        print(f"persistent store: {cache_dir} "
              f"({stats['store'].get('disk_entries', 0)} results)")
    return 1 if failures else 0


def _run_serve(argv: Sequence[str]) -> int:
    parser = _build_serve_parser()
    args = parser.parse_args(argv)
    if args.result_ttl is not None and args.result_ttl <= 0:
        parser.error("--result-ttl must be positive")
    try:
        engine = resolve_mapper_name(args.engine)
    except KeyError as error:
        parser.error(str(error))
    _validate_optimizer(parser, args, engine)
    return asyncio.run(_serve_batch(args))


# ----------------------------------------------------------------------
# listen subcommand
# ----------------------------------------------------------------------
def _build_listen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map listen",
        description="Run the network serving layer: an HTTP/WebSocket "
        "front end over the mapping service.  --workers N spawns N worker "
        "processes behind a supervising reverse proxy (load-aware routing, "
        "heartbeat restarts, cache invalidation broadcast); --workers 0 "
        "serves from a single in-process worker.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8137,
        help="public port to listen on (default 8137; 0 picks a free port)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes behind the supervisor (default 2; "
        "0 = single in-process worker, no supervisor)",
    )
    parser.add_argument(
        "--arch", action="append", default=None,
        help="architecture every worker registers; repeat for several "
        "devices (default: ibm_qx4)",
    )
    parser.add_argument(
        "--engine", default="dp",
        help=f"mapping engine ({', '.join(available_mappers())}; default: dp)",
    )
    parser.add_argument("--strategy", default="all")
    parser.add_argument("--optimizer", default=None)
    parser.add_argument("--subsets", action="store_true")
    parser.add_argument("--time-limit", type=float, default=None)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument(
        "--service-workers", type=int, default=2,
        help="solver pool size inside each worker process (default 2)",
    )
    parser.add_argument("--executor", default="thread",
                        choices=["thread", "process"])
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared persistent cache directory (defaults to "
        "$REPRO_CACHE_DIR; without one the supervisor creates a private "
        "temporary directory so its workers still share one result store)",
    )
    parser.add_argument("--result-ttl", type=float, default=None)
    return parser


def _run_listen(argv: Sequence[str]) -> int:
    parser = _build_listen_parser()
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    try:
        engine = resolve_mapper_name(args.engine)
    except KeyError as error:
        parser.error(str(error))
    _validate_optimizer(parser, args, engine)
    options = _engine_options(engine, args)
    arch = args.arch or ["ibm_qx4"]

    if args.workers == 0:
        import json as _json
        import os
        import signal

        from repro.server.worker import build_server

        async def single_worker() -> int:
            server = build_server(
                host=args.host,
                port=args.port,
                worker_id="w0",
                arch=arch,
                engine=engine,
                engine_options=options,
                service_workers=args.service_workers,
                executor=args.executor,
                cache_dir=args.cache_dir,
                result_ttl=args.result_ttl,
            )
            await server.start()
            print(
                _json.dumps(
                    {
                        "event": "listening",
                        "role": "worker",
                        "host": args.host,
                        "port": server.port,
                        "pid": os.getpid(),
                    }
                ),
                flush=True,
            )
            stop_requested = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop_requested.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    signal.signal(signum, lambda *_: stop_requested.set())
            await stop_requested.wait()
            await server.stop(drain=True)
            return 0

        return asyncio.run(single_worker())

    from repro.server.supervisor import run_supervisor

    return asyncio.run(
        run_supervisor(
            workers=args.workers,
            host=args.host,
            port=args.port,
            arch=arch,
            engine=engine,
            engine_options=options,
            service_workers=args.service_workers,
            executor=args.executor,
            cache_dir=args.cache_dir,
            result_ttl=args.result_ttl,
        )
    )


# ----------------------------------------------------------------------
# cancel subcommand
# ----------------------------------------------------------------------
def _build_cancel_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map cancel",
        description="Cancel a job on a running repro-map listen/serve "
        "server (DELETE /v1/jobs/{id}; the solver stops at its next "
        "conflict boundary).",
    )
    parser.add_argument("job_id", help="public job id (e.g. w0-job-000001)")
    parser.add_argument(
        "--url", required=True, metavar="HOST:PORT",
        help="address of the running server",
    )
    parser.add_argument(
        "--reason", default=None,
        help="optional reason recorded in the job's structured error",
    )
    return parser


def _run_cancel(argv: Sequence[str]) -> int:
    import json as _json

    parser = _build_cancel_parser()
    args = parser.parse_args(argv)
    from repro.server.protocol import CancelRequest

    body = _json.dumps(
        CancelRequest(job_id=args.job_id, reason=args.reason).to_wire()
    ).encode()
    status, envelope = _http_json(
        "DELETE", args.url, f"/v1/jobs/{args.job_id}", body
    )
    print(_json.dumps(envelope.get("payload", envelope),
                      indent=2, sort_keys=True))
    return 0 if status == 200 else 1


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-map`` command."""
    arguments: List[str] = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] in _SUBCOMMANDS:
        if arguments[0] == "cache":
            return _run_cache(arguments[1:])
        if arguments[0] == "listen":
            return _run_listen(arguments[1:])
        if arguments[0] == "cancel":
            return _run_cancel(arguments[1:])
        return _run_serve(arguments[1:])
    return _run_map(arguments)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
