"""Command-line interface: map an OpenQASM circuit to an architecture.

Engines are resolved through the mapper backend registry
(:mod:`repro.pipeline.registry`), so every registered name — built-in or
added at runtime via :func:`repro.pipeline.register_mapper` — is a valid
``--engine`` argument.

Examples::

    repro-map circuit.qasm --arch qx4 --engine dp
    repro-map circuit.qasm --arch qx4 --engine sat --strategy odd --subsets
    repro-map circuit.qasm --arch qx4 --engine sat --subsets --workers 4
    repro-map circuit.qasm --arch qx4 --engine portfolio
    repro-map circuit.qasm --arch qx4 --engine stochastic --output mapped.qasm
    repro-map --list-engines
    python -m repro.cli circuit.qasm --arch qx4
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Optional, Sequence

from repro.arch import get_architecture
from repro.circuit import parse_qasm_file
from repro.circuit.qasm import write_qasm_file
from repro.pipeline.pipeline import MappingPipeline
from repro.pipeline.registry import available_mappers, resolve_mapper_name
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``repro-map`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Map an OpenQASM 2.0 circuit to an IBM QX architecture "
        "with a minimal (or close-to-minimal) number of SWAP and H operations.",
    )
    parser.add_argument(
        "qasm", nargs="?", default=None, help="input OpenQASM 2.0 file"
    )
    parser.add_argument(
        "--arch", default="ibm_qx4",
        help="target architecture (ibm_qx2, ibm_qx4, ibm_qx5, ibm_tokyo)",
    )
    parser.add_argument(
        "--engine", default="dp",
        help="mapping engine from the backend registry "
        f"({', '.join(available_mappers())}; default: dp, the fast exact engine)",
    )
    parser.add_argument(
        "--list-engines", action="store_true",
        help="list the registered mapping engines and exit",
    )
    parser.add_argument(
        "--strategy", default="all",
        help="permutation-restriction strategy for the exact engines "
        "(all, disjoint, odd, triangle)",
    )
    parser.add_argument(
        "--subsets", action="store_true",
        help="restrict the SAT engine to connected subsets of physical qubits "
        "(Section 4.1 of the paper)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None,
        help="wall-clock budget in seconds for the SAT engine",
    )
    parser.add_argument(
        "--trials", type=int, default=5,
        help="number of trials for the stochastic heuristic (default 5)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker count for the parallel subset fan-out of the SAT engine "
        "(default 1: sequential; combine with --executor process for real "
        "speed-ups, the pure-Python solver holds the GIL)",
    )
    parser.add_argument(
        "--executor", default="thread", choices=["thread", "process"],
        help="worker pool type used with --workers > 1 (default: thread)",
    )
    parser.add_argument(
        "--output", default=None, help="write the mapped circuit to this QASM file"
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="additionally check functional equivalence by simulation",
    )
    return parser


def _engine_options(engine: str, args: argparse.Namespace) -> Dict[str, Any]:
    """Translate CLI flags into constructor options for *engine*.

    Only the options an engine understands are forwarded, so registry names
    without matching flags (custom engines, heuristics) keep working.
    """
    options: Dict[str, Any] = {}
    if engine in ("sat", "dp", "portfolio"):
        options["strategy"] = args.strategy
    if engine in ("sat", "portfolio"):
        options["use_subsets"] = args.subsets
        options["time_limit"] = args.time_limit
    if engine == "stochastic":
        options["trials"] = args.trials
    return options


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-map`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_engines:
        for name in available_mappers():
            print(name)
        return 0
    if args.qasm is None:
        parser.error("the qasm input file is required (or use --list-engines)")

    try:
        engine = resolve_mapper_name(args.engine)
    except KeyError as error:
        parser.error(str(error))
    try:
        coupling = get_architecture(args.arch)
    except KeyError as error:
        parser.error(str(error))
    circuit = parse_qasm_file(args.qasm)

    pipeline = MappingPipeline(
        coupling,
        engine=engine,
        engine_options=_engine_options(engine, args),
        workers=args.workers,
        executor=args.executor,
    )
    result = pipeline.map(circuit)
    report = verify_result(result, coupling)

    print(f"circuit           : {circuit.name}")
    print(f"logical qubits    : {circuit.num_qubits}")
    print(f"original gates    : {circuit.count_single_qubit() + circuit.count_cnot()}")
    print(f"engine            : {result.engine} (strategy {result.strategy})")
    print(f"mapped gates      : {result.total_cost}")
    print(f"added operations  : {result.added_cost} "
          f"({result.cost.swaps} SWAPs, {result.cost.reversals} reversals)")
    print(f"proven minimal    : {result.optimal}")
    print(f"coupling compliant: {report.compliant}")
    print(f"runtime           : {result.runtime_seconds:.3f} s")
    if args.verify:
        equivalent = result_is_equivalent(result)
        print(f"equivalence check : {'passed' if equivalent else 'FAILED'}")
        if not equivalent:
            return 1
    if args.output:
        write_qasm_file(result.mapped_circuit, args.output)
        print(f"mapped circuit written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
