"""Unitary matrices of the supported gates.

These matrices are used by the simulator (:mod:`repro.sim`) to check that a
mapped circuit is functionally equivalent to the original one.  All matrices
are returned as ``numpy.ndarray`` with ``complex`` dtype in the computational
basis ordering ``|q_{n-1} ... q_1 q_0>`` (qubit 0 is the least significant
bit, the usual little-endian convention).
"""

from __future__ import annotations

import cmath
import math
from typing import Dict

import numpy as np

from repro.circuit.gates import Gate, GateError


def identity() -> np.ndarray:
    """2x2 identity matrix."""
    return np.eye(2, dtype=complex)


def pauli_x() -> np.ndarray:
    """Pauli-X (NOT) matrix."""
    return np.array([[0, 1], [1, 0]], dtype=complex)


def pauli_y() -> np.ndarray:
    """Pauli-Y matrix."""
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def pauli_z() -> np.ndarray:
    """Pauli-Z matrix."""
    return np.array([[1, 0], [0, -1]], dtype=complex)


def hadamard() -> np.ndarray:
    """Hadamard matrix."""
    return np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2.0)


def phase_s() -> np.ndarray:
    """S (sqrt(Z)) matrix."""
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def phase_sdg() -> np.ndarray:
    """S-dagger matrix."""
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def phase_t() -> np.ndarray:
    """T (pi/8) matrix."""
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)


def phase_tdg() -> np.ndarray:
    """T-dagger matrix."""
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by angle *theta*."""
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by angle *theta*."""
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by angle *theta*."""
    return np.array(
        [[cmath.exp(-1j * theta / 2.0), 0], [0, cmath.exp(1j * theta / 2.0)]],
        dtype=complex,
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """IBM universal single-qubit gate ``U(theta, phi, lambda)``."""
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def cnot() -> np.ndarray:
    """CNOT matrix with qubit order (control, target) = (q1, q0).

    The returned matrix is expressed on two qubits where the *first* qubit of
    the gate (the control) is the more significant bit.  The simulator embeds
    gates by explicit index bookkeeping, so this convention is only local to
    this helper.
    """
    return np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
        ],
        dtype=complex,
    )


def cz() -> np.ndarray:
    """Controlled-Z matrix."""
    return np.diag([1, 1, 1, -1]).astype(complex)


def swap() -> np.ndarray:
    """SWAP matrix."""
    return np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    )


_FIXED_SINGLE: Dict[str, np.ndarray] = {}


def _fixed_single_table() -> Dict[str, np.ndarray]:
    if not _FIXED_SINGLE:
        _FIXED_SINGLE.update(
            {
                "id": identity(),
                "i": identity(),
                "x": pauli_x(),
                "y": pauli_y(),
                "z": pauli_z(),
                "h": hadamard(),
                "s": phase_s(),
                "sdg": phase_sdg(),
                "t": phase_t(),
                "tdg": phase_tdg(),
            }
        )
    return _FIXED_SINGLE


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of *gate*.

    Args:
        gate: Any unitary gate of the IR.  Directives (barrier, measure) are
            rejected.

    Returns:
        A ``2x2`` matrix for single-qubit gates or a ``4x4`` matrix for
        two-qubit gates, with the first gate qubit as the most significant
        bit.

    Raises:
        GateError: If the gate has no defined unitary.
    """
    name = gate.name.lower()
    table = _fixed_single_table()
    if name in table:
        return table[name].copy()
    if name == "rx":
        return rx(gate.params[0])
    if name == "ry":
        return ry(gate.params[0])
    if name == "rz":
        return rz(gate.params[0])
    if name in ("u3", "u"):
        return u3(*gate.params)
    if name == "u2":
        return u3(math.pi / 2.0, *gate.params)
    if name == "u1":
        return u3(0.0, 0.0, gate.params[0])
    if name == "cx":
        return cnot()
    if name == "cz":
        return cz()
    if name == "swap":
        return swap()
    raise GateError(f"gate {gate.name!r} has no defined unitary matrix")


__all__ = [
    "identity",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "hadamard",
    "phase_s",
    "phase_sdg",
    "phase_t",
    "phase_tdg",
    "rx",
    "ry",
    "rz",
    "u3",
    "cnot",
    "cz",
    "swap",
    "gate_matrix",
]
