"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of gates over ``num_qubits`` logical qubits
(cf. Definition 1 of the paper).  The class offers convenience constructors
for the common gates, bookkeeping queries used by the mappers (CNOT
extraction, gate counting, qubit usage) and structural transformations
(remapping qubits, composing circuits, stripping single-qubit gates).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuit.gates import (
    Barrier,
    CNOTGate,
    CZGate,
    Gate,
    GateError,
    Measure,
    SwapGate,
    UGate,
    single_qubit_gate,
)

#: Version tag mixed into every circuit fingerprint.  Bump when the canonical
#: gate-stream rendering below changes, so stale persisted caches keyed by an
#: old scheme can never be confused with fresh ones.
FINGERPRINT_VERSION = "cfp1"


class CircuitError(ValueError):
    """Raised on invalid circuit construction or manipulation."""


class QuantumCircuit:
    """An ordered sequence of quantum gates over a fixed set of qubits.

    Args:
        num_qubits: Number of logical qubits (circuit lines).
        name: Optional human-readable circuit name.
        num_clbits: Number of classical bits (for measurement results).

    Example:
        >>> qc = QuantumCircuit(2, name="bell")
        >>> qc.h(0)
        >>> qc.cx(0, 1)
        >>> qc.num_gates
        2
    """

    def __init__(self, num_qubits: int, name: str = "circuit", num_clbits: int = 0):
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        if num_clbits < 0:
            raise CircuitError("number of classical bits cannot be negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name
        self._gates: List[Gate] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gates of the circuit as an immutable tuple."""
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        """Total number of operations (including directives)."""
        return len(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self._gates == list(other._gates)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_gates={self.num_gates})"
        )

    # ------------------------------------------------------------------
    # Gate appending
    # ------------------------------------------------------------------
    def _check_qubits(self, gate: Gate) -> None:
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"gate {gate.name!r} addresses qubit {q} but the circuit has "
                    f"only {self.num_qubits} qubits"
                )

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append *gate* to the circuit and return the circuit (chainable)."""
        self._check_qubits(gate)
        if isinstance(gate, Measure) and gate.clbit >= self.num_clbits:
            self.num_clbits = gate.clbit + 1
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append every gate of *gates* in order."""
        for gate in gates:
            self.append(gate)
        return self

    # Convenience constructors --------------------------------------------------
    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard gate."""
        return self.append(single_qubit_gate("h", qubit))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X gate."""
        return self.append(single_qubit_gate("x", qubit))

    def y(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Y gate."""
        return self.append(single_qubit_gate("y", qubit))

    def z(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Z gate."""
        return self.append(single_qubit_gate("z", qubit))

    def s(self, qubit: int) -> "QuantumCircuit":
        """Append an S gate."""
        return self.append(single_qubit_gate("s", qubit))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Append an S-dagger gate."""
        return self.append(single_qubit_gate("sdg", qubit))

    def t(self, qubit: int) -> "QuantumCircuit":
        """Append a T gate."""
        return self.append(single_qubit_gate("t", qubit))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """Append a T-dagger gate."""
        return self.append(single_qubit_gate("tdg", qubit))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append an X-rotation."""
        return self.append(single_qubit_gate("rx", qubit, (theta,)))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Y-rotation."""
        return self.append(single_qubit_gate("ry", qubit, (theta,)))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Z-rotation."""
        return self.append(single_qubit_gate("rz", qubit, (theta,)))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Append the IBM universal single-qubit gate."""
        return self.append(UGate(theta, phi, lam, qubit))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Append a CNOT gate."""
        return self.append(CNOTGate(control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-Z gate."""
        return self.append(CZGate(control, target))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Append a SWAP gate."""
        return self.append(SwapGate(qubit_a, qubit_b))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Append a barrier over the given qubits (all qubits when empty)."""
        targets = qubits if qubits else tuple(range(self.num_qubits))
        return self.append(Barrier(targets))

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        """Append a measurement of *qubit* into classical bit *clbit*."""
        return self.append(Measure(qubit, clbit))

    # ------------------------------------------------------------------
    # Queries used by the mappers
    # ------------------------------------------------------------------
    def cnot_gates(self) -> List[CNOTGate]:
        """Return all CNOT gates in circuit order."""
        return [g for g in self._gates if g.is_cnot]

    def cnot_pairs(self) -> List[Tuple[int, int]]:
        """Return the (control, target) pairs of all CNOTs in order."""
        return [(g.control, g.target) for g in self.cnot_gates()]

    def count_cnot(self) -> int:
        """Number of CNOT gates."""
        return sum(1 for g in self._gates if g.is_cnot)

    def count_single_qubit(self) -> int:
        """Number of single-qubit (unitary) gates."""
        return sum(1 for g in self._gates if g.is_single_qubit)

    def count_swap(self) -> int:
        """Number of explicit SWAP gates."""
        return sum(1 for g in self._gates if g.name == "swap")

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate mnemonics."""
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def gate_cost(self) -> int:
        """Cost of the circuit as the paper counts it: number of operations.

        Directives (barriers, measurements) are not counted; an explicit SWAP
        counts as 7 elementary operations (its decomposition into 3 CNOTs and
        4 H gates on the QX architectures, cf. Fig. 3 of the paper).
        """
        cost = 0
        for gate in self._gates:
            if gate.is_directive:
                continue
            if gate.name == "swap":
                cost += 7
            else:
                cost += 1
        return cost

    def gate_stream(self) -> Iterator[str]:
        """Yield one canonical text line per gate (the fingerprint's input).

        Each line fixes the mnemonic, the qubit operands, the parameters
        (rendered via ``repr(float(p))``, exactly like the QASM writer) and,
        for measurements, the classical bit.  The stream is what
        :meth:`fingerprint` hashes; it is also useful for diffing circuits.
        """
        for gate in self._gates:
            qubits = ",".join(str(q) for q in gate.qubits)
            params = ",".join(repr(float(p)) for p in gate.params)
            clbit = getattr(gate, "clbit", "")
            yield f"{gate.name}|{qubits}|{params}|{clbit}"

    def fingerprint(self) -> str:
        """Content-addressed SHA-256 hex digest of the circuit.

        The digest covers the qubit and classical-bit counts plus the
        canonical :meth:`gate_stream` — but deliberately *not* the circuit
        :attr:`name`: two structurally identical circuits share one
        fingerprint, and a QASM round trip (``parse_qasm(to_qasm(c))``,
        which resets the name) preserves it.  Used by :mod:`repro.service`
        to key the persistent result store.
        """
        hasher = hashlib.sha256()
        hasher.update(
            f"{FINGERPRINT_VERSION}|{self.num_qubits}|{self.num_clbits}\n".encode()
        )
        for line in self.gate_stream():
            hasher.update(line.encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def used_qubits(self) -> List[int]:
        """Sorted list of qubit indices that appear in at least one gate."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return sorted(used)

    def depth(self) -> int:
        """Circuit depth counting unitary gates only."""
        level: Dict[int, int] = {q: 0 for q in range(self.num_qubits)}
        depth = 0
        for gate in self._gates:
            if gate.is_directive:
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    # ------------------------------------------------------------------
    # Structural transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Return a shallow copy (gates are immutable, so this is safe)."""
        new = QuantumCircuit(self.num_qubits, name or self.name, self.num_clbits)
        new._gates = list(self._gates)
        return new

    def without_single_qubit_gates(self) -> "QuantumCircuit":
        """Return a copy containing only the CNOT gates (cf. Fig. 1b).

        Only CNOT gates can violate the coupling constraints, hence the
        symbolic formulation of the paper ignores single-qubit gates.
        """
        new = QuantumCircuit(self.num_qubits, f"{self.name}_cnot_only")
        new._gates = [g for g in self._gates if g.is_cnot]
        return new

    def remap_qubits(self, mapping: Sequence[int] | Dict[int, int],
                     num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with every qubit index translated through *mapping*.

        Args:
            mapping: Old-index to new-index translation (sequence or dict).
            num_qubits: Qubit count of the new circuit; defaults to the
                current count (or the maximum mapped index + 1 if larger).

        Returns:
            The remapped circuit.
        """
        if isinstance(mapping, dict):
            lookup = dict(mapping)
        else:
            lookup = {old: new for old, new in enumerate(mapping)}
        new_indices = list(lookup.values())
        required = (max(new_indices) + 1) if new_indices else self.num_qubits
        total = num_qubits if num_qubits is not None else max(self.num_qubits, required)
        new = QuantumCircuit(total, f"{self.name}_remapped", self.num_clbits)
        for gate in self._gates:
            new.append(gate.remap(lookup))
        return new

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return the concatenation ``self`` followed by ``other``.

        Both circuits must have the same number of qubits.
        """
        if other.num_qubits != self.num_qubits:
            raise CircuitError(
                "cannot compose circuits with different qubit counts "
                f"({self.num_qubits} vs {other.num_qubits})"
            )
        new = self.copy()
        new._gates.extend(other._gates)
        new.num_clbits = max(self.num_clbits, other.num_clbits)
        return new

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (gates reversed and individually inverted).

        Only gates whose inverse is expressible in the IR are supported:
        self-inverse gates, S/T (mapped to their daggers), rotations and U3.
        """
        new = QuantumCircuit(self.num_qubits, f"{self.name}_inv", self.num_clbits)
        inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        for gate in reversed(self._gates):
            if gate.is_directive:
                raise CircuitError("cannot invert a circuit containing directives")
            name = gate.name
            if name in ("x", "y", "z", "h", "id", "i", "cx", "cz", "swap"):
                new.append(gate)
            elif name in inverse_names:
                new.append(single_qubit_gate(inverse_names[name], gate.qubits[0]))
            elif name in ("rx", "ry", "rz"):
                new.append(single_qubit_gate(name, gate.qubits[0], (-gate.params[0],)))
            elif name in ("u3", "u"):
                theta, phi, lam = gate.params
                new.append(UGate(-theta, -lam, -phi, gate.qubits[0]))
            else:
                raise CircuitError(f"do not know how to invert gate {name!r}")
        return new


__all__ = ["QuantumCircuit", "CircuitError", "FINGERPRINT_VERSION"]
