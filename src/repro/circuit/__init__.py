"""Quantum circuit intermediate representation.

This subpackage provides the circuit data structures used throughout the
library: gate objects (:mod:`repro.circuit.gates`), the
:class:`~repro.circuit.circuit.QuantumCircuit` container, unitary matrices for
all supported gates (:mod:`repro.circuit.matrices`), layering utilities
(:mod:`repro.circuit.layers`) and an OpenQASM 2.0 front end
(:mod:`repro.circuit.qasm`).
"""

from repro.circuit.gates import (
    Gate,
    SingleQubitGate,
    TwoQubitGate,
    CNOTGate,
    SwapGate,
    Barrier,
    Measure,
    UGate,
    XGate,
    YGate,
    ZGate,
    HGate,
    SGate,
    SdgGate,
    TGate,
    TdgGate,
    RXGate,
    RYGate,
    RZGate,
    IdGate,
    CZGate,
)
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.layers import (
    disjoint_qubit_layers,
    front_layers,
    interaction_graph,
    two_qubit_blocks,
)
from repro.circuit.qasm import parse_qasm, parse_qasm_file, to_qasm

__all__ = [
    "Gate",
    "SingleQubitGate",
    "TwoQubitGate",
    "CNOTGate",
    "SwapGate",
    "Barrier",
    "Measure",
    "UGate",
    "XGate",
    "YGate",
    "ZGate",
    "HGate",
    "SGate",
    "SdgGate",
    "TGate",
    "TdgGate",
    "RXGate",
    "RYGate",
    "RZGate",
    "IdGate",
    "CZGate",
    "QuantumCircuit",
    "disjoint_qubit_layers",
    "front_layers",
    "interaction_graph",
    "two_qubit_blocks",
    "parse_qasm",
    "parse_qasm_file",
    "to_qasm",
]
