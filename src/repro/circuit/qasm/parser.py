"""Recursive-descent parser for OpenQASM 2.0.

The parser supports the subset of OpenQASM 2.0 needed by the benchmark
circuits of the paper:

* ``OPENQASM 2.0;`` header and ``include "qelib1.inc";``
* ``qreg`` / ``creg`` declarations (multiple registers are flattened into a
  single qubit index space, in declaration order),
* applications of the built-in ``CX``/``cx`` and ``U`` gates and of the
  standard-library gates (``x``, ``y``, ``z``, ``h``, ``s``, ``sdg``, ``t``,
  ``tdg``, ``rx``, ``ry``, ``rz``, ``u1``, ``u2``, ``u3``, ``cz``, ``swap``,
  ``ccx``, ``id``),
* ``measure`` and ``barrier`` statements,
* parameter expressions with ``pi``, the four arithmetic operators, unary
  minus and parentheses,
* user-defined ``gate`` declarations are parsed and *inlined* (macro
  expansion), ``opaque`` declarations and ``if``/``reset`` statements are
  rejected with a clear error message.

Register-wide gate application (``h q;`` meaning "apply to every qubit of
``q``") is supported, matching OpenQASM broadcast semantics for single-qubit
gates and measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import CNOTGate, CZGate, SwapGate, single_qubit_gate
from repro.circuit.qasm.lexer import Lexer, QasmSyntaxError, Token, TokenType

# Gates from qelib1.inc that we implement natively.
_SINGLE_QUBIT_GATES = {
    "x": 0,
    "y": 0,
    "z": 0,
    "h": 0,
    "s": 0,
    "sdg": 0,
    "t": 0,
    "tdg": 0,
    "id": 0,
    "u1": 1,
    "u2": 2,
    "u3": 3,
    "u": 3,
    "rx": 1,
    "ry": 1,
    "rz": 1,
}

_TWO_QUBIT_GATES = {"cx": 0, "cz": 0, "swap": 0}


@dataclass
class _Register:
    """A declared quantum or classical register."""

    name: str
    size: int
    offset: int


@dataclass
class _GateDefinition:
    """A user-defined gate body, kept for macro expansion."""

    name: str
    params: List[str]
    qubits: List[str]
    body: List["_GateCall"] = field(default_factory=list)


@dataclass
class _GateCall:
    """A gate application inside a user-defined gate body."""

    name: str
    param_exprs: List[List[Token]]
    qubit_names: List[str]


class QasmParser:
    """Parses OpenQASM 2.0 source into a :class:`QuantumCircuit`."""

    def __init__(self, source: str, name: str = "qasm_circuit"):
        self._tokens = Lexer(source).tokenize()
        self._pos = 0
        self._name = name
        self._qregs: Dict[str, _Register] = {}
        self._cregs: Dict[str, _Register] = {}
        self._gate_defs: Dict[str, _GateDefinition] = {}
        self._pending_gates: List = []

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value if value is not None else token_type.value
            raise QasmSyntaxError(
                f"expected {expected!r} but found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> QasmSyntaxError:
        token = self._peek()
        return QasmSyntaxError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> QuantumCircuit:
        """Parse the source and return the resulting circuit."""
        self._parse_header()
        while self._peek().type is not TokenType.EOF:
            self._parse_statement()
        total_qubits = sum(reg.size for reg in self._qregs.values())
        total_clbits = sum(reg.size for reg in self._cregs.values())
        if total_qubits == 0:
            raise QasmSyntaxError("no quantum register declared", 0, 0)
        circuit = QuantumCircuit(total_qubits, self._name, total_clbits)
        for gate in self._pending_gates:
            circuit.append(gate)
        return circuit

    # ------------------------------------------------------------------
    # Grammar rules
    # ------------------------------------------------------------------
    def _parse_header(self) -> None:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value == "OPENQASM":
            self._advance()
            version = self._advance()
            if version.value not in ("2.0", "2"):
                raise QasmSyntaxError(
                    f"unsupported OpenQASM version {version.value!r}",
                    version.line,
                    version.column,
                )
            self._expect(TokenType.SEMICOLON)

    def _parse_statement(self) -> None:
        token = self._peek()
        if token.type is TokenType.KEYWORD:
            if token.value == "include":
                self._parse_include()
            elif token.value == "qreg":
                self._parse_register(quantum=True)
            elif token.value == "creg":
                self._parse_register(quantum=False)
            elif token.value == "gate":
                self._parse_gate_definition()
            elif token.value == "measure":
                self._parse_measure()
            elif token.value == "barrier":
                self._parse_barrier()
            elif token.value == "opaque":
                raise self._error("opaque gate declarations are not supported")
            elif token.value == "if":
                raise self._error("classically controlled gates are not supported")
            elif token.value == "reset":
                raise self._error("reset statements are not supported")
            else:
                raise self._error(f"unexpected keyword {token.value!r}")
        elif token.type is TokenType.IDENTIFIER:
            self._parse_gate_application()
        else:
            raise self._error(f"unexpected token {token.value!r}")

    def _parse_include(self) -> None:
        self._expect(TokenType.KEYWORD, "include")
        filename = self._expect(TokenType.STRING)
        if filename.value not in ("qelib1.inc",):
            raise QasmSyntaxError(
                f"cannot include {filename.value!r}: only 'qelib1.inc' is built in",
                filename.line,
                filename.column,
            )
        self._expect(TokenType.SEMICOLON)

    def _parse_register(self, quantum: bool) -> None:
        self._expect(TokenType.KEYWORD, "qreg" if quantum else "creg")
        name = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.LBRACKET)
        size = int(self._expect(TokenType.INTEGER).value)
        self._expect(TokenType.RBRACKET)
        self._expect(TokenType.SEMICOLON)
        if size <= 0:
            raise self._error(f"register {name!r} must have positive size")
        registers = self._qregs if quantum else self._cregs
        if name in self._qregs or name in self._cregs:
            raise self._error(f"register {name!r} already declared")
        offset = sum(reg.size for reg in registers.values())
        registers[name] = _Register(name, size, offset)

    # -- gate definitions ------------------------------------------------
    def _parse_gate_definition(self) -> None:
        self._expect(TokenType.KEYWORD, "gate")
        name = self._expect(TokenType.IDENTIFIER).value
        params: List[str] = []
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            if self._peek().type is not TokenType.RPAREN:
                params.append(self._expect(TokenType.IDENTIFIER).value)
                while self._peek().type is TokenType.COMMA:
                    self._advance()
                    params.append(self._expect(TokenType.IDENTIFIER).value)
            self._expect(TokenType.RPAREN)
        qubits = [self._expect(TokenType.IDENTIFIER).value]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            qubits.append(self._expect(TokenType.IDENTIFIER).value)
        definition = _GateDefinition(name, params, qubits)
        self._expect(TokenType.LBRACE)
        while self._peek().type is not TokenType.RBRACE:
            definition.body.append(self._parse_gate_call_in_body())
        self._expect(TokenType.RBRACE)
        self._gate_defs[name] = definition

    def _parse_gate_call_in_body(self) -> _GateCall:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value == "barrier":
            # Barriers inside gate bodies have no effect on mapping; skip them.
            self._advance()
            while self._peek().type is not TokenType.SEMICOLON:
                self._advance()
            self._expect(TokenType.SEMICOLON)
            return _GateCall("barrier", [], [])
        name = self._expect(TokenType.IDENTIFIER).value
        param_exprs: List[List[Token]] = []
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            param_exprs = self._collect_expression_list()
            self._expect(TokenType.RPAREN)
        qubit_names = [self._expect(TokenType.IDENTIFIER).value]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            qubit_names.append(self._expect(TokenType.IDENTIFIER).value)
        self._expect(TokenType.SEMICOLON)
        return _GateCall(name, param_exprs, qubit_names)

    def _collect_expression_list(self) -> List[List[Token]]:
        """Collect comma-separated expression token lists up to the closing ')'."""
        expressions: List[List[Token]] = []
        current: List[Token] = []
        depth = 0
        while True:
            token = self._peek()
            if token.type is TokenType.EOF:
                raise self._error("unterminated parameter list")
            if token.type is TokenType.LPAREN:
                depth += 1
            elif token.type is TokenType.RPAREN:
                if depth == 0:
                    if current:
                        expressions.append(current)
                    return expressions
                depth -= 1
            elif token.type is TokenType.COMMA and depth == 0:
                expressions.append(current)
                current = []
                self._advance()
                continue
            current.append(self._advance())

    # -- measure / barrier ------------------------------------------------
    def _parse_measure(self) -> None:
        self._expect(TokenType.KEYWORD, "measure")
        qubits = self._parse_argument(self._qregs)
        self._expect(TokenType.ARROW)
        clbits = self._parse_argument(self._cregs)
        self._expect(TokenType.SEMICOLON)
        if len(qubits) != len(clbits):
            if len(clbits) == 1:
                clbits = clbits * len(qubits)
            else:
                raise self._error("measure operands have mismatched sizes")
        from repro.circuit.gates import Measure

        for qubit, clbit in zip(qubits, clbits):
            self._pending_gates.append(Measure(qubit, clbit))

    def _parse_barrier(self) -> None:
        self._expect(TokenType.KEYWORD, "barrier")
        qubits: List[int] = []
        qubits.extend(self._parse_argument(self._qregs))
        while self._peek().type is TokenType.COMMA:
            self._advance()
            qubits.extend(self._parse_argument(self._qregs))
        self._expect(TokenType.SEMICOLON)
        from repro.circuit.gates import Barrier

        self._pending_gates.append(Barrier(qubits))

    # -- gate applications -------------------------------------------------
    def _parse_gate_application(self) -> None:
        name = self._expect(TokenType.IDENTIFIER).value
        param_exprs: List[List[Token]] = []
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            param_exprs = self._collect_expression_list()
            self._expect(TokenType.RPAREN)
        arguments = [self._parse_argument(self._qregs)]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            arguments.append(self._parse_argument(self._qregs))
        self._expect(TokenType.SEMICOLON)
        params = [self._evaluate_expression(expr, {}) for expr in param_exprs]
        self._emit_gate(name, params, arguments)

    def _parse_argument(self, registers: Dict[str, _Register]) -> List[int]:
        """Parse ``name`` or ``name[i]`` and return the flat indices addressed."""
        name_token = self._expect(TokenType.IDENTIFIER)
        name = name_token.value
        if name not in registers:
            raise QasmSyntaxError(
                f"unknown register {name!r}", name_token.line, name_token.column
            )
        register = registers[name]
        if self._peek().type is TokenType.LBRACKET:
            self._advance()
            index = int(self._expect(TokenType.INTEGER).value)
            self._expect(TokenType.RBRACKET)
            if index >= register.size:
                raise QasmSyntaxError(
                    f"index {index} out of range for register {name!r}",
                    name_token.line,
                    name_token.column,
                )
            return [register.offset + index]
        return [register.offset + i for i in range(register.size)]

    def _emit_gate(self, name: str, params: List[float],
                   arguments: List[List[int]]) -> None:
        """Emit one named gate over broadcast arguments to the pending list."""
        lname = name.lower() if name != "U" else "u3"
        if name == "CX":
            lname = "cx"
        broadcast = self._broadcast(arguments)
        for qubits in broadcast:
            self._emit_single_application(lname, params, qubits)

    def _broadcast(self, arguments: List[List[int]]) -> List[Tuple[int, ...]]:
        """Apply OpenQASM broadcast rules to mixed register/bit arguments."""
        sizes = {len(arg) for arg in arguments if len(arg) > 1}
        if len(sizes) > 1:
            raise self._error("mismatched register sizes in gate application")
        length = sizes.pop() if sizes else 1
        expanded = []
        for arg in arguments:
            if len(arg) == 1:
                expanded.append(arg * length)
            else:
                expanded.append(arg)
        return [tuple(arg[i] for arg in expanded) for i in range(length)]

    def _emit_single_application(self, name: str, params: Sequence[float],
                                 qubits: Tuple[int, ...]) -> None:
        if name in _SINGLE_QUBIT_GATES:
            expected = _SINGLE_QUBIT_GATES[name]
            if len(params) != expected:
                raise self._error(
                    f"gate {name!r} expects {expected} parameters, got {len(params)}"
                )
            if len(qubits) != 1:
                raise self._error(f"gate {name!r} expects one qubit operand")
            self._pending_gates.append(single_qubit_gate(name, qubits[0], tuple(params)))
            return
        if name in _TWO_QUBIT_GATES:
            if len(qubits) != 2:
                raise self._error(f"gate {name!r} expects two qubit operands")
            if name == "cx":
                self._pending_gates.append(CNOTGate(qubits[0], qubits[1]))
            elif name == "cz":
                self._pending_gates.append(CZGate(qubits[0], qubits[1]))
            else:
                self._pending_gates.append(SwapGate(qubits[0], qubits[1]))
            return
        if name == "ccx":
            if len(qubits) != 3:
                raise self._error("gate 'ccx' expects three qubit operands")
            self._pending_gates.extend(_decompose_toffoli(*qubits))
            return
        if name in self._gate_defs:
            self._expand_macro(self._gate_defs[name], list(params), list(qubits))
            return
        raise self._error(f"unknown gate {name!r}")

    def _expand_macro(self, definition: _GateDefinition, params: List[float],
                      qubits: List[int]) -> None:
        if len(params) != len(definition.params):
            raise self._error(
                f"gate {definition.name!r} expects {len(definition.params)} parameters"
            )
        if len(qubits) != len(definition.qubits):
            raise self._error(
                f"gate {definition.name!r} expects {len(definition.qubits)} qubits"
            )
        param_env = dict(zip(definition.params, params))
        qubit_env = dict(zip(definition.qubits, qubits))
        for call in definition.body:
            if call.name == "barrier":
                continue
            call_params = [
                self._evaluate_expression(expr, param_env) for expr in call.param_exprs
            ]
            call_qubits = tuple(qubit_env[q] for q in call.qubit_names)
            self._emit_single_application(call.name.lower(), call_params, call_qubits)

    # -- expression evaluation ----------------------------------------------
    def _evaluate_expression(self, tokens: List[Token],
                             env: Dict[str, float]) -> float:
        """Evaluate a parameter expression (shunting-yard-free recursive parse)."""
        evaluator = _ExpressionEvaluator(tokens, env)
        return evaluator.evaluate()


class _ExpressionEvaluator:
    """Tiny recursive-descent evaluator for QASM parameter expressions."""

    def __init__(self, tokens: List[Token], env: Dict[str, float]):
        self._tokens = tokens
        self._pos = 0
        self._env = env

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def evaluate(self) -> float:
        value = self._expr()
        token = self._peek()
        if token is not None:
            raise QasmSyntaxError(
                f"unexpected token {token.value!r} in expression",
                token.line,
                token.column,
            )
        return value

    def _expr(self) -> float:
        value = self._term()
        while True:
            token = self._peek()
            if token is None or token.type not in (TokenType.PLUS, TokenType.MINUS):
                return value
            self._advance()
            right = self._term()
            value = value + right if token.type is TokenType.PLUS else value - right

    def _term(self) -> float:
        value = self._factor()
        while True:
            token = self._peek()
            if token is None or token.type not in (TokenType.TIMES, TokenType.DIVIDE):
                return value
            self._advance()
            right = self._factor()
            value = value * right if token.type is TokenType.TIMES else value / right

    def _factor(self) -> float:
        value = self._unary()
        token = self._peek()
        if token is not None and token.type is TokenType.POWER:
            self._advance()
            exponent = self._factor()
            return value ** exponent
        return value

    def _unary(self) -> float:
        token = self._peek()
        if token is not None and token.type is TokenType.MINUS:
            self._advance()
            return -self._unary()
        if token is not None and token.type is TokenType.PLUS:
            self._advance()
            return self._unary()
        return self._atom()

    def _atom(self) -> float:
        token = self._peek()
        if token is None:
            raise QasmSyntaxError("unexpected end of expression", 0, 0)
        if token.type is TokenType.LPAREN:
            self._advance()
            value = self._expr()
            closing = self._peek()
            if closing is None or closing.type is not TokenType.RPAREN:
                raise QasmSyntaxError("missing ')' in expression", token.line, token.column)
            self._advance()
            return value
        if token.type in (TokenType.REAL, TokenType.INTEGER):
            self._advance()
            return float(token.value)
        if token.type is TokenType.KEYWORD and token.value == "pi":
            self._advance()
            return math.pi
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            name = token.value
            if name == "sqrt":
                return math.sqrt(self._parenthesised())
            if name == "sin":
                return math.sin(self._parenthesised())
            if name == "cos":
                return math.cos(self._parenthesised())
            if name == "tan":
                return math.tan(self._parenthesised())
            if name == "exp":
                return math.exp(self._parenthesised())
            if name == "ln":
                return math.log(self._parenthesised())
            if name in self._env:
                return float(self._env[name])
            raise QasmSyntaxError(
                f"unknown identifier {name!r} in expression", token.line, token.column
            )
        raise QasmSyntaxError(
            f"unexpected token {token.value!r} in expression", token.line, token.column
        )

    def _parenthesised(self) -> float:
        token = self._peek()
        if token is None or token.type is not TokenType.LPAREN:
            raise QasmSyntaxError("expected '(' after function name", 0, 0)
        self._advance()
        value = self._expr()
        closing = self._peek()
        if closing is None or closing.type is not TokenType.RPAREN:
            raise QasmSyntaxError("missing ')' after function argument", 0, 0)
        self._advance()
        return value


def _decompose_toffoli(control_a: int, control_b: int, target: int) -> List:
    """Standard Clifford+T decomposition of the Toffoli (CCX) gate."""
    gates = [
        single_qubit_gate("h", target),
        CNOTGate(control_b, target),
        single_qubit_gate("tdg", target),
        CNOTGate(control_a, target),
        single_qubit_gate("t", target),
        CNOTGate(control_b, target),
        single_qubit_gate("tdg", target),
        CNOTGate(control_a, target),
        single_qubit_gate("t", control_b),
        single_qubit_gate("t", target),
        CNOTGate(control_a, control_b),
        single_qubit_gate("h", target),
        single_qubit_gate("t", control_a),
        single_qubit_gate("tdg", control_b),
        CNOTGate(control_a, control_b),
    ]
    return gates


def parse_qasm(source: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a :class:`QuantumCircuit`.

    Args:
        source: OpenQASM 2.0 program text.
        name: Name assigned to the resulting circuit.

    Returns:
        The parsed circuit with all registers flattened into one index space.

    Raises:
        QasmSyntaxError: If the source is malformed or uses unsupported
            features.
    """
    return QasmParser(source, name).parse()


def parse_qasm_file(path, name: Optional[str] = None) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    circuit_name = name if name is not None else str(path)
    return parse_qasm(source, circuit_name)


__all__ = ["QasmParser", "parse_qasm", "parse_qasm_file"]
