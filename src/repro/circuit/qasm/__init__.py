"""OpenQASM 2.0 front end (lexer, parser, writer).

The paper assumes circuits are already decomposed into elementary gates and
provided in OpenQASM (the RevLib benchmarks are distributed as ``.qasm``
files).  Since qiskit is not available in this environment, this subpackage
provides a self-contained OpenQASM 2.0 reader/writer that covers the subset
of the language used by the benchmark circuits: quantum/classical register
declarations, the standard-library gates (``qelib1.inc``), ``cx``,
``measure`` and ``barrier``.
"""

from repro.circuit.qasm.lexer import Lexer, Token, TokenType, QasmSyntaxError
from repro.circuit.qasm.parser import QasmParser, parse_qasm, parse_qasm_file
from repro.circuit.qasm.writer import to_qasm, write_qasm_file

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "QasmSyntaxError",
    "QasmParser",
    "parse_qasm",
    "parse_qasm_file",
    "to_qasm",
    "write_qasm_file",
]
