"""OpenQASM 2.0 emitter for :class:`~repro.circuit.circuit.QuantumCircuit`."""

from __future__ import annotations

from typing import List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, Measure


def _format_param(value: float) -> str:
    """Format a gate parameter compactly but losslessly enough for round trips."""
    return repr(float(value))


def _gate_line(gate: Gate) -> str:
    """Render a single gate as one OpenQASM statement."""
    if isinstance(gate, Measure):
        return f"measure q[{gate.qubit}] -> c[{gate.clbit}];"
    if gate.name == "barrier":
        operands = ", ".join(f"q[{q}]" for q in gate.qubits)
        return f"barrier {operands};"
    name = gate.name
    params = ""
    if gate.params:
        params = "(" + ", ".join(_format_param(p) for p in gate.params) + ")"
    operands = ", ".join(f"q[{q}]" for q in gate.qubits)
    return f"{name}{params} {operands};"


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise *circuit* as an OpenQASM 2.0 program.

    All qubits are emitted into a single register ``q`` and all classical
    bits into a single register ``c`` (this mirrors how the parser flattens
    registers, so ``parse_qasm(to_qasm(c))`` round-trips).
    """
    lines: List[str] = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits > 0:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for gate in circuit.gates:
        lines.append(_gate_line(gate))
    return "\n".join(lines) + "\n"


def write_qasm_file(circuit: QuantumCircuit, path) -> None:
    """Write *circuit* to *path* as OpenQASM 2.0."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_qasm(circuit))


__all__ = ["to_qasm", "write_qasm_file"]
