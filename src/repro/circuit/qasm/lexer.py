"""Tokenizer for OpenQASM 2.0 source text."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class QasmSyntaxError(SyntaxError):
    """Raised when the OpenQASM source is malformed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class TokenType(enum.Enum):
    """Kinds of tokens produced by the lexer."""

    IDENTIFIER = "identifier"
    REAL = "real"
    INTEGER = "integer"
    STRING = "string"
    KEYWORD = "keyword"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    SEMICOLON = ";"
    COMMA = ","
    ARROW = "->"
    EQUALS = "=="
    PLUS = "+"
    MINUS = "-"
    TIMES = "*"
    DIVIDE = "/"
    POWER = "^"
    EOF = "eof"


KEYWORDS = {
    "OPENQASM",
    "include",
    "qreg",
    "creg",
    "gate",
    "opaque",
    "measure",
    "reset",
    "barrier",
    "if",
    "pi",
}

_SINGLE_CHAR_TOKENS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ";": TokenType.SEMICOLON,
    ",": TokenType.COMMA,
    "+": TokenType.PLUS,
    "*": TokenType.TIMES,
    "^": TokenType.POWER,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: Token kind.
        value: Source text of the token (string form).
        line: 1-based source line.
        column: 1-based source column.
    """

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Converts OpenQASM 2.0 source text into a stream of tokens."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> QasmSyntaxError:
        return QasmSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> Optional[str]:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return None

    def _advance(self) -> str:
        char = self.source[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in (" ", "\t", "\r", "\n"):
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        text = []
        has_dot = False
        has_exp = False
        while self.pos < len(self.source):
            char = self._peek()
            if char is not None and char.isdigit():
                text.append(self._advance())
            elif char == "." and not has_dot and not has_exp:
                has_dot = True
                text.append(self._advance())
            elif char in ("e", "E") and not has_exp and text:
                has_exp = True
                text.append(self._advance())
                if self._peek() in ("+", "-"):
                    text.append(self._advance())
            else:
                break
        value = "".join(text)
        if has_dot or has_exp:
            return Token(TokenType.REAL, value, line, column)
        return Token(TokenType.INTEGER, value, line, column)

    def _lex_identifier(self) -> Token:
        line, column = self.line, self.column
        text = []
        while self.pos < len(self.source):
            char = self._peek()
            if char is not None and (char.isalnum() or char == "_"):
                text.append(self._advance())
            else:
                break
        value = "".join(text)
        token_type = TokenType.KEYWORD if value in KEYWORDS else TokenType.IDENTIFIER
        return Token(token_type, value, line, column)

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        text = []
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unterminated string literal")
            if char == '"':
                self._advance()
                break
            text.append(self._advance())
        return Token(TokenType.STRING, "".join(text), line, column)

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until (and including) the EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenType.EOF, "", self.line, self.column)
                return
            char = self._peek()
            assert char is not None
            if char.isdigit() or (char == "." and (self._peek(1) or "").isdigit()):
                yield self._lex_number()
            elif char.isalpha() or char == "_":
                yield self._lex_identifier()
            elif char == '"':
                yield self._lex_string()
            elif char == "-" and self._peek(1) == ">":
                line, column = self.line, self.column
                self._advance()
                self._advance()
                yield Token(TokenType.ARROW, "->", line, column)
            elif char == "=" and self._peek(1) == "=":
                line, column = self.line, self.column
                self._advance()
                self._advance()
                yield Token(TokenType.EQUALS, "==", line, column)
            elif char == "-":
                line, column = self.line, self.column
                self._advance()
                yield Token(TokenType.MINUS, "-", line, column)
            elif char == "/":
                line, column = self.line, self.column
                self._advance()
                yield Token(TokenType.DIVIDE, "/", line, column)
            elif char in _SINGLE_CHAR_TOKENS:
                line, column = self.line, self.column
                self._advance()
                yield Token(_SINGLE_CHAR_TOKENS[char], char, line, column)
            else:
                raise self._error(f"unexpected character {char!r}")

    def tokenize(self) -> List[Token]:
        """Return the full token list (including the trailing EOF token)."""
        return list(self.tokens())


__all__ = ["Lexer", "Token", "TokenType", "QasmSyntaxError", "KEYWORDS"]
