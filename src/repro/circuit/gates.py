"""Gate objects for the quantum circuit IR.

Gates are lightweight, immutable value objects.  Each gate knows its name, the
qubits it acts on and (for parameterised gates) its parameters.  The unitary
matrices of the gates live in :mod:`repro.circuit.matrices` so that the IR can
be used without importing numpy-heavy code.

The mapping algorithms of this library only distinguish between single-qubit
gates and CNOT gates (cf. Definition 1 of the paper); everything else exists
so that realistic OpenQASM circuits can be parsed, simulated and re-emitted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple


class GateError(ValueError):
    """Raised when a gate is constructed with invalid arguments."""


@dataclass(frozen=True)
class Gate:
    """Base class for all circuit operations.

    Attributes:
        name: Lower-case mnemonic of the operation (``"cx"``, ``"h"``, ...).
        qubits: Tuple of qubit indices the operation acts on, in order.
        params: Tuple of real parameters (rotation angles).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise GateError("gate name must be a non-empty string")
        if len(set(self.qubits)) != len(self.qubits):
            raise GateError(
                f"gate {self.name!r} acts on duplicate qubits {self.qubits!r}"
            )
        for q in self.qubits:
            if q < 0:
                raise GateError(f"negative qubit index {q} in gate {self.name!r}")

    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""
        return len(self.qubits)

    @property
    def is_cnot(self) -> bool:
        """True when the gate is a controlled-NOT."""
        return False

    @property
    def is_single_qubit(self) -> bool:
        """True when the gate acts on exactly one qubit (and is unitary)."""
        return False

    @property
    def is_directive(self) -> bool:
        """True for non-unitary bookkeeping operations (barrier, measure)."""
        return False

    def remap(self, mapping: Sequence[int] | dict) -> "Gate":
        """Return a copy of this gate with qubits translated through *mapping*.

        Args:
            mapping: Either a sequence indexed by the old qubit index or a
                dictionary from old to new indices.

        Returns:
            A gate of the same type acting on the translated qubits.
        """
        if isinstance(mapping, dict):
            new_qubits = tuple(mapping[q] for q in self.qubits)
        else:
            new_qubits = tuple(mapping[q] for q in self.qubits)
        return type(self)._rebuild(self, new_qubits)

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return Gate(original.name, qubits, original.params)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            pstr = "(" + ", ".join(f"{p:g}" for p in self.params) + ")"
        else:
            pstr = ""
        qstr = ", ".join(f"q[{q}]" for q in self.qubits)
        return f"{self.name}{pstr} {qstr}"


@dataclass(frozen=True)
class SingleQubitGate(Gate):
    """A unitary operation acting on a single qubit."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.qubits) != 1:
            raise GateError(
                f"single-qubit gate {self.name!r} given {len(self.qubits)} qubits"
            )

    @property
    def qubit(self) -> int:
        """The qubit the gate acts on."""
        return self.qubits[0]

    @property
    def is_single_qubit(self) -> bool:
        return True

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return cls(original.name, qubits, original.params)


@dataclass(frozen=True)
class TwoQubitGate(Gate):
    """A unitary operation acting on exactly two qubits."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.qubits) != 2:
            raise GateError(
                f"two-qubit gate {self.name!r} given {len(self.qubits)} qubits"
            )

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return cls(original.name, qubits, original.params)


@dataclass(frozen=True)
class CNOTGate(TwoQubitGate):
    """Controlled-NOT gate: ``control`` flips ``target`` when set."""

    def __init__(self, control: int, target: int):
        super().__init__(name="cx", qubits=(control, target), params=())

    @property
    def control(self) -> int:
        """Index of the control qubit."""
        return self.qubits[0]

    @property
    def target(self) -> int:
        """Index of the target qubit."""
        return self.qubits[1]

    @property
    def is_cnot(self) -> bool:
        return True

    def reversed(self) -> "CNOTGate":
        """Return the CNOT with control and target exchanged."""
        return CNOTGate(self.target, self.control)

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return cls(qubits[0], qubits[1])


@dataclass(frozen=True)
class CZGate(TwoQubitGate):
    """Controlled-Z gate (symmetric in its qubits)."""

    def __init__(self, control: int, target: int):
        super().__init__(name="cz", qubits=(control, target), params=())

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return cls(qubits[0], qubits[1])


@dataclass(frozen=True)
class SwapGate(TwoQubitGate):
    """SWAP gate exchanging the states of its two qubits."""

    def __init__(self, qubit_a: int, qubit_b: int):
        super().__init__(name="swap", qubits=(qubit_a, qubit_b), params=())

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return cls(qubits[0], qubits[1])


@dataclass(frozen=True)
class Barrier(Gate):
    """Barrier directive; not a unitary operation."""

    def __init__(self, qubits: Iterable[int]):
        super().__init__(name="barrier", qubits=tuple(qubits), params=())

    @property
    def is_directive(self) -> bool:
        return True

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return cls(qubits)


@dataclass(frozen=True)
class Measure(Gate):
    """Measurement of one qubit into one classical bit."""

    clbit: int = 0

    def __init__(self, qubit: int, clbit: int):
        object.__setattr__(self, "clbit", clbit)
        super().__init__(name="measure", qubits=(qubit,), params=())

    @property
    def is_directive(self) -> bool:
        return True

    @property
    def qubit(self) -> int:
        """The measured qubit."""
        return self.qubits[0]

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        return cls(qubits[0], getattr(original, "clbit", 0))


def _simple_single(name: str, cls_name: Optional[str] = None):
    """Create a parameterless single-qubit gate class named *name*.

    ``cls_name`` must match the module-level binding of the returned class:
    pickle resolves instances by ``__qualname__`` attribute lookup on this
    module, which matters when circuits cross process boundaries (e.g. the
    process-pool executor of :class:`repro.pipeline.pipeline.MappingPipeline`).
    """

    @dataclass(frozen=True)
    class _Simple(SingleQubitGate):
        def __init__(self, qubit: int):
            super().__init__(name=name, qubits=(qubit,), params=())

        @classmethod
        def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
            return cls(qubits[0])

    _Simple.__name__ = cls_name if cls_name else name.upper() + "Gate"
    _Simple.__qualname__ = _Simple.__name__
    return _Simple


XGate = _simple_single("x")
YGate = _simple_single("y")
ZGate = _simple_single("z")
HGate = _simple_single("h")
SGate = _simple_single("s")
SdgGate = _simple_single("sdg", "SdgGate")
TGate = _simple_single("t")
TdgGate = _simple_single("tdg", "TdgGate")
IdGate = _simple_single("id", "IdGate")


def _rotation_single(name: str):
    """Create a one-parameter single-qubit rotation gate class."""

    @dataclass(frozen=True)
    class _Rotation(SingleQubitGate):
        def __init__(self, theta: float, qubit: int):
            super().__init__(name=name, qubits=(qubit,), params=(float(theta),))

        @property
        def theta(self) -> float:
            return self.params[0]

        @classmethod
        def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
            return cls(original.params[0], qubits[0])

    _Rotation.__name__ = name.upper() + "Gate"
    _Rotation.__qualname__ = _Rotation.__name__
    return _Rotation


RXGate = _rotation_single("rx")
RYGate = _rotation_single("ry")
RZGate = _rotation_single("rz")


@dataclass(frozen=True)
class UGate(SingleQubitGate):
    """IBM's universal single-qubit gate ``U(theta, phi, lambda)``.

    ``U(theta, phi, lam) = Rz(phi) Ry(theta) Rz(lam)`` up to global phase,
    the native single-qubit gate of the QX architectures.
    """

    def __init__(self, theta: float, phi: float, lam: float, qubit: int):
        super().__init__(
            name="u3",
            qubits=(qubit,),
            params=(float(theta), float(phi), float(lam)),
        )

    @property
    def theta(self) -> float:
        return self.params[0]

    @property
    def phi(self) -> float:
        return self.params[1]

    @property
    def lam(self) -> float:
        return self.params[2]

    @classmethod
    def _rebuild(cls, original: "Gate", qubits: Tuple[int, ...]) -> "Gate":
        t, p, l = original.params
        return cls(t, p, l, qubits[0])


_NAMED_SINGLE = {
    "x": XGate,
    "y": YGate,
    "z": ZGate,
    "h": HGate,
    "s": SGate,
    "sdg": SdgGate,
    "t": TGate,
    "tdg": TdgGate,
    "id": IdGate,
    "i": IdGate,
}

_NAMED_ROTATION = {"rx": RXGate, "ry": RYGate, "rz": RZGate}


def single_qubit_gate(name: str, qubit: int, params: Sequence[float] = ()) -> SingleQubitGate:
    """Build a single-qubit gate from its OpenQASM mnemonic.

    Args:
        name: Gate mnemonic, e.g. ``"h"``, ``"t"``, ``"rz"``, ``"u3"``.
        qubit: Target qubit index.
        params: Gate parameters (angles), when required.

    Returns:
        The corresponding :class:`SingleQubitGate` instance.

    Raises:
        GateError: If the mnemonic is unknown or the parameter count is wrong.
    """
    lname = name.lower()
    if lname in _NAMED_SINGLE:
        if params:
            raise GateError(f"gate {name!r} takes no parameters")
        return _NAMED_SINGLE[lname](qubit)
    if lname in _NAMED_ROTATION:
        if len(params) != 1:
            raise GateError(f"gate {name!r} takes exactly one parameter")
        return _NAMED_ROTATION[lname](params[0], qubit)
    if lname in ("u3", "u"):
        if len(params) != 3:
            raise GateError(f"gate {name!r} takes exactly three parameters")
        return UGate(params[0], params[1], params[2], qubit)
    if lname == "u2":
        if len(params) != 2:
            raise GateError("gate 'u2' takes exactly two parameters")
        return UGate(math.pi / 2.0, params[0], params[1], qubit)
    if lname == "u1":
        if len(params) != 1:
            raise GateError("gate 'u1' takes exactly one parameter")
        return UGate(0.0, 0.0, params[0], qubit)
    raise GateError(f"unknown single-qubit gate {name!r}")


__all__ = [
    "GateError",
    "Gate",
    "SingleQubitGate",
    "TwoQubitGate",
    "CNOTGate",
    "CZGate",
    "SwapGate",
    "Barrier",
    "Measure",
    "XGate",
    "YGate",
    "ZGate",
    "HGate",
    "SGate",
    "SdgGate",
    "TGate",
    "TdgGate",
    "IdGate",
    "RXGate",
    "RYGate",
    "RZGate",
    "UGate",
    "single_qubit_gate",
]
