"""Circuit layering and clustering utilities.

The permutation-restriction strategies of the paper (Section 4.2) require
structural views of the CNOT skeleton of a circuit:

* *disjoint-qubit layers* — maximal runs of consecutive gates that act on
  pairwise disjoint qubit sets (called "layers" by heuristic mappers),
* *two-qubit blocks* — maximal runs of consecutive gates whose combined
  qubit support stays within a bounded number of qubits (used by the
  "qubit triangle" strategy with bound 3),
* the *interaction graph* of logical qubits (who ever shares a CNOT with
  whom), used by initial-layout heuristics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate


def disjoint_qubit_layers(gates: Sequence[Gate]) -> List[List[int]]:
    """Greedily cluster *gates* into runs acting on pairwise disjoint qubits.

    The clustering scans the gate list left to right and starts a new layer
    whenever the next gate shares a qubit with the current layer.  This is the
    clustering used by the *disjoint qubits* strategy (Section 4.2) and
    matches the "layers" of heuristic mappers.

    Args:
        gates: Gate sequence (usually the CNOT-only skeleton).

    Returns:
        A list of layers, each a list of gate indices into *gates*.
    """
    layers: List[List[int]] = []
    current: List[int] = []
    current_qubits: Set[int] = set()
    for index, gate in enumerate(gates):
        qubits = set(gate.qubits)
        if current and qubits & current_qubits:
            layers.append(current)
            current = [index]
            current_qubits = set(qubits)
        else:
            current.append(index)
            current_qubits |= qubits
    if current:
        layers.append(current)
    return layers


def front_layers(circuit: QuantumCircuit) -> List[List[int]]:
    """Partition the circuit into dependency layers (ASAP scheduling).

    Unlike :func:`disjoint_qubit_layers`, this respects the data dependencies
    of the full circuit: a gate is placed in the earliest layer after all
    gates it depends on.  Used by the SABRE-style heuristic baseline.

    Returns:
        A list of layers, each a list of gate indices into ``circuit.gates``.
    """
    level_of_qubit: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    layers: Dict[int, List[int]] = {}
    for index, gate in enumerate(circuit.gates):
        if gate.is_directive:
            continue
        level = max(level_of_qubit[q] for q in gate.qubits)
        layers.setdefault(level, []).append(index)
        for q in gate.qubits:
            level_of_qubit[q] = level + 1
    return [layers[level] for level in sorted(layers)]


def two_qubit_blocks(gates: Sequence[Gate], max_qubits: int = 3) -> List[List[int]]:
    """Cluster *gates* into maximal runs whose qubit support has bounded size.

    This is the clustering behind the *qubit triangle* strategy
    (Section 4.2): consecutive gates whose combined support fits into
    ``max_qubits`` qubits can be mapped onto a triangle of the coupling map
    without intermediate permutations.

    Args:
        gates: Gate sequence (usually the CNOT-only skeleton).
        max_qubits: Maximum size of the combined qubit support per block.

    Returns:
        A list of blocks, each a list of gate indices into *gates*.
    """
    if max_qubits < 2:
        raise ValueError("max_qubits must be at least 2")
    blocks: List[List[int]] = []
    current: List[int] = []
    support: Set[int] = set()
    for index, gate in enumerate(gates):
        qubits = set(gate.qubits)
        if current and len(support | qubits) > max_qubits:
            blocks.append(current)
            current = [index]
            support = set(qubits)
        else:
            current.append(index)
            support |= qubits
    if current:
        blocks.append(current)
    return blocks


def interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Build the weighted logical-qubit interaction graph of *circuit*.

    Nodes are logical qubit indices; an edge ``(a, b)`` carries a ``weight``
    equal to the number of two-qubit gates acting on the pair.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for gate in circuit.gates:
        if gate.num_qubits != 2 or gate.is_directive:
            continue
        a, b = gate.qubits
        if graph.has_edge(a, b):
            graph[a][b]["weight"] += 1
        else:
            graph.add_edge(a, b, weight=1)
    return graph


def gate_qubit_supports(gates: Sequence[Gate]) -> List[Tuple[int, ...]]:
    """Return the qubit tuple of every gate in *gates* (convenience helper)."""
    return [gate.qubits for gate in gates]


__all__ = [
    "disjoint_qubit_layers",
    "front_layers",
    "two_qubit_blocks",
    "interaction_graph",
    "gate_qubit_supports",
]
