"""Fingerprint-keyed persistent store for mapping results.

:class:`ResultStore` is the "never solve the same instance twice" layer of
the service subsystem: results are keyed by the content-addressed
:func:`~repro.service.fingerprint.job_fingerprint` and survive process
restarts in a SQLite file, with a small in-memory LRU in front so hot keys
never touch the disk.

Concurrency
-----------
Every SQLite operation opens its own short-lived connection, so the store
object can be shared freely between threads, and multiple *processes*
pointing at the same file coordinate through SQLite's file locking (writers
retry for up to :data:`SQLITE_TIMEOUT_SECONDS` before giving up).  The
in-memory LRU is guarded by a plain lock.

Validation
----------
``put`` refuses to cache a result that fails
:meth:`~repro.exact.result.MappingResult.validate` and raises the structured
:class:`~repro.service.errors.InvalidResultError` — a corrupt result written
once would otherwise be served forever.  Corrupt rows discovered on ``get``
(schema drift, truncated payloads) are dropped and reported as misses, so a
stale cache file degrades to extra solving work, never to an error.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.exact.result import MappingResult
from repro.service.errors import InvalidResultError, StoreError

#: How long concurrent writers wait on SQLite's file lock before failing.
SQLITE_TIMEOUT_SECONDS = 30.0

#: Default capacity of the in-memory LRU tier.
DEFAULT_MEMORY_ENTRIES = 256

#: File name of the result database inside a cache directory.
RESULTS_DB_NAME = "results.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    payload     TEXT NOT NULL,
    engine      TEXT NOT NULL,
    added_cost  INTEGER NOT NULL,
    optimal     INTEGER NOT NULL,
    created_at  REAL NOT NULL
)
"""


class ResultStore:
    """Two-tier (memory LRU + SQLite) mapping-result cache.

    Args:
        path: SQLite database file, or ``None`` for a memory-only store
            (useful in tests and for ephemeral workers).  Parent directories
            are created on demand.
        max_memory_entries: Capacity of the in-memory tier; ``0`` disables
            it (every hit deserialises from disk).
        validate: Validate results before caching (strongly recommended;
            exposed so benchmarks can measure the validation overhead).

    Example:
        >>> store = ResultStore(tmp_path / "results.sqlite")
        >>> store.put(fingerprint, result)
        >>> store.get(fingerprint).added_cost == result.added_cost
        True
    """

    def __init__(
        self,
        path=None,
        *,
        max_memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        validate: bool = True,
    ):
        self.path: Optional[Path] = None if path is None else Path(path)
        self.max_memory_entries = max(0, int(max_memory_entries))
        self.validate = validate
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, MappingResult]" = OrderedDict()
        self._stats = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "puts": 0,
            "invalid_rejected": 0,
            "corrupt_dropped": 0,
        }
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._connect() as conn:
                conn.execute(_SCHEMA)

    @classmethod
    def at(cls, cache_dir, **kwargs) -> "ResultStore":
        """The store for a cache *directory* (``<dir>/results.sqlite``)."""
        return cls(Path(cache_dir) / RESULTS_DB_NAME, **kwargs)

    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        assert self.path is not None
        return sqlite3.connect(str(self.path), timeout=SQLITE_TIMEOUT_SECONDS)

    def _memory_put(self, fingerprint: str, result: MappingResult) -> None:
        if self.max_memory_entries == 0:
            return
        with self._lock:
            self._memory[fingerprint] = result
            self._memory.move_to_end(fingerprint)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def put(self, fingerprint: str, result: MappingResult) -> None:
        """Cache *result* under *fingerprint* (validated first).

        Raises:
            InvalidResultError: When the result fails validation; nothing
                is written in that case.
            StoreError: When the database write fails.
        """
        if self.validate:
            try:
                result.validate()
            except ValueError as error:
                with self._lock:
                    self._stats["invalid_rejected"] += 1
                raise InvalidResultError(
                    f"refusing to cache invalid mapping result: {error}",
                    details={"fingerprint": fingerprint, "engine": result.engine},
                ) from error
        payload = json.dumps(result.to_dict())
        if self.path is not None:
            try:
                with self._connect() as conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO results "
                        "(fingerprint, payload, engine, added_cost, optimal, created_at) "
                        "VALUES (?, ?, ?, ?, ?, ?)",
                        (
                            fingerprint,
                            payload,
                            result.engine,
                            result.added_cost,
                            int(result.optimal),
                            time.time(),
                        ),
                    )
            except sqlite3.Error as error:
                raise StoreError(
                    f"failed to persist result: {error}",
                    details={"fingerprint": fingerprint, "path": str(self.path)},
                ) from error
        self._memory_put(fingerprint, result)
        with self._lock:
            self._stats["puts"] += 1

    def get(self, fingerprint: str) -> Optional[MappingResult]:
        """The cached result for *fingerprint*, or ``None``.

        The returned object may be shared with other callers (memory tier);
        treat it as read-only.
        """
        if self.max_memory_entries > 0:
            with self._lock:
                cached = self._memory.get(fingerprint)
                if cached is not None:
                    self._stats["memory_hits"] += 1
                    self._memory.move_to_end(fingerprint)
                    return cached
        if self.path is not None:
            with self._connect() as conn:
                row = conn.execute(
                    "SELECT payload FROM results WHERE fingerprint = ?",
                    (fingerprint,),
                ).fetchone()
            if row is not None:
                try:
                    result = MappingResult.from_dict(json.loads(row[0]))
                except (ValueError, KeyError, TypeError):
                    # Schema drift or a truncated payload: drop the row and
                    # treat it as a miss — the caller re-solves and re-puts.
                    with self._connect() as conn:
                        conn.execute(
                            "DELETE FROM results WHERE fingerprint = ?",
                            (fingerprint,),
                        )
                    with self._lock:
                        self._stats["corrupt_dropped"] += 1
                        self._stats["misses"] += 1
                    return None
                self._memory_put(fingerprint, result)
                with self._lock:
                    self._stats["disk_hits"] += 1
                return result
        with self._lock:
            self._stats["misses"] += 1
        return None

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        if self.path is None:
            return False
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        if self.path is None:
            with self._lock:
                return len(self._memory)
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def fingerprints(self) -> Iterator[str]:
        """Iterate over all persisted fingerprints (memory-only when no path)."""
        if self.path is None:
            with self._lock:
                keys = list(self._memory)
            return iter(keys)
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT fingerprint FROM results ORDER BY created_at"
            ).fetchall()
        return iter(row[0] for row in rows)

    def entries(self) -> List[Dict[str, Any]]:
        """Metadata rows of every persisted result (no payload parsing)."""
        if self.path is None:
            with self._lock:
                return [
                    {"fingerprint": key, "engine": result.engine,
                     "added_cost": result.added_cost, "optimal": result.optimal}
                    for key, result in self._memory.items()
                ]
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT fingerprint, engine, added_cost, optimal, created_at "
                "FROM results ORDER BY created_at"
            ).fetchall()
        return [
            {"fingerprint": row[0], "engine": row[1], "added_cost": row[2],
             "optimal": bool(row[3]), "created_at": row[4]}
            for row in rows
        ]

    def clear(self) -> int:
        """Drop every cached result (both tiers); returns rows removed."""
        removed = 0
        if self.path is not None:
            with self._connect() as conn:
                removed = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
                conn.execute("DELETE FROM results")
        with self._lock:
            removed = max(removed, len(self._memory))
            self._memory.clear()
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus tier sizes (a snapshot copy)."""
        with self._lock:
            stats = dict(self._stats)
            stats["memory_entries"] = len(self._memory)
        stats["persistent"] = self.path is not None
        if self.path is not None:
            stats["disk_entries"] = len(self)
        return stats


__all__ = [
    "ResultStore",
    "DEFAULT_MEMORY_ENTRIES",
    "RESULTS_DB_NAME",
    "SQLITE_TIMEOUT_SECONDS",
]
