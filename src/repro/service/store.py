"""Fingerprint-keyed persistent store for mapping results.

:class:`ResultStore` is the "never solve the same instance twice" layer of
the service subsystem: results are keyed by the content-addressed
:func:`~repro.service.fingerprint.job_fingerprint` and survive process
restarts in a SQLite file, with a small in-memory LRU in front so hot keys
never touch the disk.

Rows additionally carry the *circuit* and *architecture* fingerprints of
their job, which makes the store queryable as a bound oracle: the cheapest
known result for a circuit on an architecture — solved by any engine with
any options — is a valid upper bound for a new exact solve of the same
circuit (see :class:`repro.pipeline.bounds.StoreBoundProvider`).

Expiry
------
With ``ttl_seconds`` set, rows older than the TTL read as misses and are
purged lazily on access; :meth:`prune` sweeps them eagerly (also available
as the ``repro-map cache prune`` CLI subcommand).

Concurrency
-----------
Every SQLite operation opens its own short-lived connection, so the store
object can be shared freely between threads, and multiple *processes*
pointing at the same file coordinate through SQLite's file locking (writers
retry for up to :data:`SQLITE_TIMEOUT_SECONDS` before giving up).  The
in-memory LRU is guarded by a plain lock.

Validation
----------
``put`` refuses to cache a result that fails
:meth:`~repro.exact.result.MappingResult.validate` and raises the structured
:class:`~repro.service.errors.InvalidResultError` — a corrupt result written
once would otherwise be served forever.  Corrupt rows discovered on ``get``
(schema drift, truncated payloads) are dropped and reported as misses, so a
stale cache file degrades to extra solving work, never to an error.

Solve artifacts
---------------
Besides finished results, the store persists **solve artifacts**: the
cross-job warm-start material of the SAT subset sweep, one row per encoding
skeleton key (``gates × n × m × spots × undirected edge set`` — the exact
key :class:`repro.exact.encoding.EncodingSkeleton` canonicalises).  A row
holds learned clauses in *template numbering* (x block verbatim, spot block
re-based to start right after it — the numbering every same-key encoding
shares up to a constant shift), proven lower bounds keyed by the *directed*
edge set they were proven under (reversal costs differ between
orientations, so bounds only transfer on an exact directed match), and the
best known schedule in family-local indices.  :meth:`put_artifact` merges
into an existing row (clause union, per-orientation bound maximum, cheapest
schedule); :meth:`get_artifact` applies the TTL and drops corrupt rows as
misses, exactly like results.  :class:`ArtifactCache` is the picklable
handle the solving layers carry: it survives crossing into process-pool
workers by re-opening the database from its path (a memory-only store
degrades to no artifact seeding on the far side).
"""

from __future__ import annotations

import json
import random
import sqlite3
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import faults
from repro.exact.result import MappingResult
from repro.service.errors import InvalidResultError, StoreError

#: How long concurrent writers wait on SQLite's file lock before failing.
SQLITE_TIMEOUT_SECONDS = 30.0

#: Bounded in-process retries when SQLite reports a transient busy/locked
#: condition (on top of SQLite's own file-lock wait above).
BUSY_RETRY_LIMIT = 3

#: Base of the jittered exponential backoff between busy retries.
BUSY_RETRY_BASE_SECONDS = 0.02

#: Consecutive hard disk failures that open the circuit breaker.
BREAKER_THRESHOLD = 3

#: How long an open breaker keeps the store memory-only before the next
#: disk attempt is allowed through.
BREAKER_COOLDOWN_SECONDS = 30.0

#: Default capacity of the in-memory LRU tier.
DEFAULT_MEMORY_ENTRIES = 256

#: File name of the result database inside a cache directory.
RESULTS_DB_NAME = "results.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    payload     TEXT NOT NULL,
    engine      TEXT NOT NULL,
    added_cost  INTEGER NOT NULL,
    optimal     INTEGER NOT NULL,
    created_at  REAL NOT NULL,
    circuit_fp  TEXT,
    arch_fp     TEXT
)
"""

_ARTIFACT_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    skeleton_key TEXT PRIMARY KEY,
    payload      TEXT NOT NULL,
    created_at   REAL NOT NULL
)
"""

#: Columns added after the first release; legacy database files are
#: migrated in place on open (rows keep NULLs — they still serve exact
#: fingerprint hits, just not bound lookups).
_MIGRATED_COLUMNS = ("circuit_fp", "arch_fp")

#: Payload schema version of artifact rows; rows with another version are
#: dropped as corrupt (forward compatibility: a downgraded worker must not
#: misread a newer row).
ARTIFACT_PAYLOAD_VERSION = 1

#: Clause-union cap per artifact row: merges keep the freshest clauses and
#: the row's serialised size stays bounded under long-running fleets.
MAX_ARTIFACT_CLAUSES = 4096

#: Per-orientation bound entries kept per artifact row.
MAX_ARTIFACT_BOUNDS = 8


def _transient_disk_error(error: BaseException) -> bool:
    """Whether *error* is worth an in-process retry.

    Injected faults always are (the chaos harness models transient
    infrastructure failures); of SQLite's errors only the busy/locked
    contention family is — schema or corruption errors would fail the
    retry identically.
    """
    if isinstance(error, faults.FaultInjectedError):
        return True
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return "locked" in message or "busy" in message


def _retry_pause(attempt: int) -> None:
    """Sleep the jittered exponential backoff for retry number *attempt*."""
    time.sleep(
        BUSY_RETRY_BASE_SECONDS * (2 ** (attempt - 1)) * (0.5 + random.random() / 2.0)
    )


class _MemoryEntry:
    """One in-memory tier entry: the result plus its row metadata."""

    __slots__ = ("result", "created_at", "circuit_fp", "arch_fp")

    def __init__(
        self,
        result: MappingResult,
        created_at: float,
        circuit_fp: Optional[str],
        arch_fp: Optional[str],
    ):
        self.result = result
        self.created_at = created_at
        self.circuit_fp = circuit_fp
        self.arch_fp = arch_fp


class ResultStore:
    """Two-tier (memory LRU + SQLite) mapping-result cache.

    Args:
        path: SQLite database file, or ``None`` for a memory-only store
            (useful in tests and for ephemeral workers).  Parent directories
            are created on demand.
        max_memory_entries: Capacity of the in-memory tier; ``0`` disables
            it (every hit deserialises from disk).
        validate: Validate results before caching (strongly recommended;
            exposed so benchmarks can measure the validation overhead).
        ttl_seconds: Results older than this read as misses and are purged
            lazily; ``None`` (default) disables expiry.

    Example:
        >>> store = ResultStore(tmp_path / "results.sqlite")
        >>> store.put(fingerprint, result)
        >>> store.get(fingerprint).added_cost == result.added_cost
        True
    """

    def __init__(
        self,
        path=None,
        *,
        max_memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        validate: bool = True,
        ttl_seconds: Optional[float] = None,
    ):
        self.path: Optional[Path] = None if path is None else Path(path)
        self.max_memory_entries = max(0, int(max_memory_entries))
        self.validate = validate
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable)")
        self.ttl_seconds = ttl_seconds
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, _MemoryEntry]" = OrderedDict()
        #: Artifact memory tier: ``skeleton_key -> (payload, created_at)``.
        #: Serves memory-only stores and caches hot rows in front of SQLite.
        self._artifact_memory: "OrderedDict[str, Tuple[Dict[str, Any], float]]" = (
            OrderedDict()
        )
        self._stats = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "puts": 0,
            "invalid_rejected": 0,
            "corrupt_dropped": 0,
            "expired_dropped": 0,
            "artifact_hits": 0,
            "artifact_misses": 0,
            "artifact_puts": 0,
            "artifact_corrupt_dropped": 0,
            "artifact_expired_dropped": 0,
            "disk_errors": 0,
            "busy_retries": 0,
            "breaker_trips": 0,
        }
        #: Circuit-breaker state: consecutive hard failures, and the wall
        #: clock until which the disk tier is bypassed (0.0 = closed).
        self._disk_failures = 0
        self._degraded_until = 0.0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._connect() as conn:
                conn.execute(_SCHEMA)
                conn.execute(_ARTIFACT_SCHEMA)
                existing = {
                    row[1] for row in conn.execute("PRAGMA table_info(results)")
                }
                for column in _MIGRATED_COLUMNS:
                    if column not in existing:
                        conn.execute(
                            f"ALTER TABLE results ADD COLUMN {column} TEXT"
                        )

    @classmethod
    def at(cls, cache_dir, **kwargs) -> "ResultStore":
        """The store for a cache *directory* (``<dir>/results.sqlite``)."""
        return cls(Path(cache_dir) / RESULTS_DB_NAME, **kwargs)

    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        assert self.path is not None
        return sqlite3.connect(str(self.path), timeout=SQLITE_TIMEOUT_SECONDS)

    # ------------------------------------------------------------------
    # Disk-failure circuit breaker
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the breaker is open (disk bypassed; memory tier only).

        The store trips after :data:`BREAKER_THRESHOLD` consecutive hard
        disk failures and stays memory-only for
        :data:`BREAKER_COOLDOWN_SECONDS`, so a sick database file degrades
        caching instead of stalling every job on retries.  The service
        layer stamps ``store_degraded`` into job provenance while this is
        True, keeping the degradation visible to clients.
        """
        with self._lock:
            return time.time() < self._degraded_until

    def _disk_ok(self) -> None:
        with self._lock:
            self._disk_failures = 0

    def _disk_failed(self) -> None:
        with self._lock:
            self._disk_failures += 1
            self._stats["disk_errors"] += 1
            if self._disk_failures >= BREAKER_THRESHOLD:
                self._degraded_until = time.time() + BREAKER_COOLDOWN_SECONDS
                self._disk_failures = 0
                self._stats["breaker_trips"] += 1

    def _run_disk(self, point: str, operation):
        """Run one disk operation under the retry/breaker policy.

        Transient conditions (SQLite busy/locked contention and armed
        ``store.*`` fault points) get :data:`BUSY_RETRY_LIMIT` jittered
        retries; exhaustion or a hard error feeds the breaker and
        re-raises for the caller to map into its own failure contract.
        """
        attempt = 0
        while True:
            try:
                if faults.ARMED:
                    faults.fire(point)
                result = operation()
            except (sqlite3.Error, faults.FaultInjectedError) as error:
                if _transient_disk_error(error) and attempt < BUSY_RETRY_LIMIT:
                    attempt += 1
                    with self._lock:
                        self._stats["busy_retries"] += 1
                    _retry_pause(attempt)
                    continue
                self._disk_failed()
                raise
            self._disk_ok()
            return result

    def _expired(self, created_at: float, now: Optional[float] = None) -> bool:
        if self.ttl_seconds is None:
            return False
        return (now if now is not None else time.time()) - created_at > self.ttl_seconds

    def _cutoff(self, ttl_seconds: Optional[float] = None) -> Optional[float]:
        """The oldest non-expired creation time, or ``None`` without a TTL."""
        ttl = self.ttl_seconds if ttl_seconds is None else ttl_seconds
        if ttl is None:
            return None
        return time.time() - ttl

    def _memory_put(
        self,
        fingerprint: str,
        result: MappingResult,
        created_at: float,
        circuit_fp: Optional[str],
        arch_fp: Optional[str],
    ) -> None:
        if self.max_memory_entries == 0:
            return
        with self._lock:
            self._memory[fingerprint] = _MemoryEntry(
                result, created_at, circuit_fp, arch_fp
            )
            self._memory.move_to_end(fingerprint)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    def _delete_row(self, fingerprint: str) -> None:
        if self.path is not None:
            try:
                with self._connect() as conn:
                    conn.execute(
                        "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
                    )
            except sqlite3.Error:
                # Purges are advisory — a failed one just leaves a row the
                # next reader will re-attempt to drop.
                pass

    def _delete_expired_row(self, fingerprint: str) -> None:
        """Purge a row only while it is actually expired.

        Concurrent writers are supported, so the DELETE must re-check the
        age: another process may have re-put the fingerprint with a fresh
        ``created_at`` between our read and this purge, and that fresh row
        must survive.
        """
        cutoff = self._cutoff()
        if cutoff is None or self.path is None:
            return
        try:
            with self._connect() as conn:
                conn.execute(
                    "DELETE FROM results WHERE fingerprint = ? AND created_at <= ?",
                    (fingerprint, cutoff),
                )
        except sqlite3.Error:
            pass  # advisory purge; see _delete_row

    # ------------------------------------------------------------------
    def put(
        self,
        fingerprint: str,
        result: MappingResult,
        *,
        circuit_fp: Optional[str] = None,
        arch_fp: Optional[str] = None,
    ) -> None:
        """Cache *result* under *fingerprint* (validated first).

        Args:
            fingerprint: The job fingerprint (exact-lookup key).
            result: The mapping result to cache.
            circuit_fp: Circuit fingerprint of the job; enables
                :meth:`best_added_cost` bound lookups for this row.
            arch_fp: Architecture fingerprint of the job (see *circuit_fp*).

        Raises:
            InvalidResultError: When the result fails validation; nothing
                is written in that case.
            StoreError: When the database write fails.
        """
        if self.validate:
            try:
                result.validate()
            except ValueError as error:
                with self._lock:
                    self._stats["invalid_rejected"] += 1
                raise InvalidResultError(
                    f"refusing to cache invalid mapping result: {error}",
                    details={"fingerprint": fingerprint, "engine": result.engine},
                ) from error
        payload = json.dumps(result.to_dict())
        created_at = time.time()
        store_error: Optional[StoreError] = None
        if self.path is not None and not self.degraded:

            def _write() -> None:
                with self._connect() as conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO results "
                        "(fingerprint, payload, engine, added_cost, optimal, "
                        " created_at, circuit_fp, arch_fp) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            fingerprint,
                            payload,
                            result.engine,
                            result.added_cost,
                            int(result.optimal),
                            created_at,
                            circuit_fp,
                            arch_fp,
                        ),
                    )

            try:
                self._run_disk("store.put", _write)
            except (sqlite3.Error, faults.FaultInjectedError) as error:
                store_error = StoreError(
                    f"failed to persist result: {error}",
                    details={"fingerprint": fingerprint, "path": str(self.path)},
                )
                store_error.__cause__ = error
        # The memory tier is populated even when the disk write failed —
        # that *is* the degraded mode the breaker promises: same-process
        # lookups keep hitting while the database is sick.
        self._memory_put(fingerprint, result, created_at, circuit_fp, arch_fp)
        with self._lock:
            self._stats["puts"] += 1
        if store_error is not None:
            raise store_error

    def get(self, fingerprint: str) -> Optional[MappingResult]:
        """The cached result for *fingerprint*, or ``None``.

        Rows older than ``ttl_seconds`` read as misses and are purged as a
        side effect.  The returned object may be shared with other callers
        (memory tier); treat it as read-only.
        """
        if self.max_memory_entries > 0:
            expired_hit = False
            with self._lock:
                entry = self._memory.get(fingerprint)
                if entry is not None:
                    if self._expired(entry.created_at):
                        del self._memory[fingerprint]
                        self._stats["expired_dropped"] += 1
                        expired_hit = True
                    else:
                        self._stats["memory_hits"] += 1
                        self._memory.move_to_end(fingerprint)
                        return entry.result
            if expired_hit:
                # Purge the equally old disk row — guarded, because a
                # concurrent writer may have re-put a fresh one meanwhile.
                # Then fall through to the disk read below, which serves
                # exactly such a refreshed row instead of reporting a miss.
                self._delete_expired_row(fingerprint)
        if self.path is not None and not self.degraded:

            def _read():
                with self._connect() as conn:
                    return conn.execute(
                        "SELECT payload, created_at, circuit_fp, arch_fp "
                        "FROM results WHERE fingerprint = ?",
                        (fingerprint,),
                    ).fetchone()

            try:
                row = self._run_disk("store.get", _read)
            except (sqlite3.Error, faults.FaultInjectedError):
                # A sick disk tier reads as a miss (the caller re-solves);
                # the failure was counted toward the breaker above.
                row = None
            if row is not None:
                if self._expired(row[1]):
                    self._delete_expired_row(fingerprint)
                    with self._lock:
                        self._stats["expired_dropped"] += 1
                        self._stats["misses"] += 1
                    return None
                try:
                    result = MappingResult.from_dict(json.loads(row[0]))
                except (ValueError, KeyError, TypeError):
                    # Schema drift or a truncated payload: drop the row and
                    # treat it as a miss — the caller re-solves and re-puts.
                    self._delete_row(fingerprint)
                    with self._lock:
                        self._stats["corrupt_dropped"] += 1
                        self._stats["misses"] += 1
                    return None
                self._memory_put(fingerprint, result, row[1], row[2], row[3])
                with self._lock:
                    self._stats["disk_hits"] += 1
                return result
        with self._lock:
            self._stats["misses"] += 1
        return None

    def delete(self, fingerprint: str) -> bool:
        """Remove one entry from both tiers; True when anything was removed."""
        removed = False
        with self._lock:
            if self._memory.pop(fingerprint, None) is not None:
                removed = True
        if self.path is not None:
            with self._connect() as conn:
                cursor = conn.execute(
                    "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
                )
                removed = removed or cursor.rowcount > 0
        return removed

    # ------------------------------------------------------------------
    # Bound oracle
    # ------------------------------------------------------------------
    def best_added_cost(
        self, circuit_fp: str, arch_fp: str
    ) -> Optional[int]:
        """Cheapest known added cost for a circuit on an architecture.

        Considers every non-expired row whose circuit and architecture
        fingerprints match, regardless of engine and options — any such
        result is a valid mapping, so its cost is a valid upper bound for a
        new exact solve.  Returns ``None`` when nothing is known (including
        legacy rows written before fingerprint columns existed).
        """
        best: Optional[int] = None
        now = time.time()
        with self._lock:
            for entry in self._memory.values():
                if (
                    entry.circuit_fp == circuit_fp
                    and entry.arch_fp == arch_fp
                    and not self._expired(entry.created_at, now)
                ):
                    cost = entry.result.added_cost
                    if best is None or cost < best:
                        best = cost
        if self.path is not None:
            query = (
                "SELECT MIN(added_cost) FROM results "
                "WHERE circuit_fp = ? AND arch_fp = ?"
            )
            params: Tuple[Any, ...] = (circuit_fp, arch_fp)
            cutoff = self._cutoff()
            if cutoff is not None:
                query += " AND created_at > ?"
                params += (cutoff,)
            with self._connect() as conn:
                row = conn.execute(query, params).fetchone()
            if row is not None and row[0] is not None:
                cost = int(row[0])
                if best is None or cost < best:
                    best = cost
        return best

    def best_result(
        self, circuit_fp: str, arch_fp: str
    ) -> Optional[MappingResult]:
        """The cheapest stored *result* for a circuit on an architecture.

        The full-payload companion of :meth:`best_added_cost`: besides its
        cost, the returned result carries the mapping *schedule*, which the
        :class:`~repro.pipeline.bounds.ModelProvider` replays as an initial
        incumbent model (not just as a bound).  Ties are broken towards the
        memory tier (no deserialisation); corrupt disk rows are dropped and
        skipped like in :meth:`get`.  Returns ``None`` when nothing
        (non-expired) matches.
        """
        best: Optional[MappingResult] = None
        now = time.time()
        with self._lock:
            for entry in self._memory.values():
                if (
                    entry.circuit_fp == circuit_fp
                    and entry.arch_fp == arch_fp
                    and not self._expired(entry.created_at, now)
                ):
                    if best is None or entry.result.added_cost < best.added_cost:
                        best = entry.result
        if self.path is not None:
            query = (
                "SELECT fingerprint, payload, added_cost FROM results "
                "WHERE circuit_fp = ? AND arch_fp = ?"
            )
            params: Tuple[Any, ...] = (circuit_fp, arch_fp)
            cutoff = self._cutoff()
            if cutoff is not None:
                query += " AND created_at > ?"
                params += (cutoff,)
            query += " ORDER BY added_cost ASC"
            with self._connect() as conn:
                rows = conn.execute(query, params).fetchall()
            for fingerprint, payload, added_cost in rows:
                if best is not None and best.added_cost <= added_cost:
                    break
                try:
                    best = MappingResult.from_dict(json.loads(payload))
                    break
                except (ValueError, KeyError, TypeError):
                    self._delete_row(fingerprint)
                    with self._lock:
                        self._stats["corrupt_dropped"] += 1
        return best

    # ------------------------------------------------------------------
    # Solve artifacts (cross-job warm starts)
    # ------------------------------------------------------------------
    def get_artifact(self, skeleton_key: str) -> Optional[Dict[str, Any]]:
        """The artifact payload for one encoding skeleton key, or ``None``.

        Applies the TTL and drops corrupt or schema-mismatched rows exactly
        like :meth:`get` does for results: a bad row reads as a miss (cold
        solving) and is deleted, never served.
        """
        with self._lock:
            entry = self._artifact_memory.get(skeleton_key)
            if entry is not None:
                if self._expired(entry[1]):
                    del self._artifact_memory[skeleton_key]
                    self._stats["artifact_expired_dropped"] += 1
                else:
                    self._artifact_memory.move_to_end(skeleton_key)
                    self._stats["artifact_hits"] += 1
                    return entry[0]
        if self.path is not None:
            with self._connect() as conn:
                row = conn.execute(
                    "SELECT payload, created_at FROM artifacts "
                    "WHERE skeleton_key = ?",
                    (skeleton_key,),
                ).fetchone()
            if row is not None:
                if self._expired(row[1]):
                    self._delete_artifact_row(skeleton_key)
                    with self._lock:
                        self._stats["artifact_expired_dropped"] += 1
                        self._stats["artifact_misses"] += 1
                    return None
                try:
                    payload = json.loads(row[0])
                except ValueError:
                    payload = None
                if not _valid_artifact(payload):
                    self._delete_artifact_row(skeleton_key)
                    with self._lock:
                        self._stats["artifact_corrupt_dropped"] += 1
                        self._stats["artifact_misses"] += 1
                    return None
                self._artifact_memory_put(skeleton_key, payload, row[1])
                with self._lock:
                    self._stats["artifact_hits"] += 1
                return payload
        with self._lock:
            self._stats["artifact_misses"] += 1
        return None

    def put_artifact(self, skeleton_key: str, payload: Dict[str, Any]) -> None:
        """Merge *payload* into the artifact row for *skeleton_key*.

        Merging (clause union up to :data:`MAX_ARTIFACT_CLAUSES`, maximum
        bound per directed orientation, cheapest schedule) happens inside
        one ``BEGIN IMMEDIATE`` transaction, so concurrent workers writing
        the same family fold their contributions instead of overwriting
        each other.  A payload that fails the shape check is rejected
        silently (counted under ``invalid_rejected``) — the artifact path
        is an optimisation and must never fail a solve.
        """
        payload = dict(payload)
        payload.setdefault("version", ARTIFACT_PAYLOAD_VERSION)
        if not _valid_artifact(payload):
            with self._lock:
                self._stats["invalid_rejected"] += 1
            return
        created_at = time.time()
        merged = payload
        if self.path is not None:
            try:
                conn = self._connect()
                try:
                    conn.execute("BEGIN IMMEDIATE")
                    row = conn.execute(
                        "SELECT payload, created_at FROM artifacts "
                        "WHERE skeleton_key = ?",
                        (skeleton_key,),
                    ).fetchone()
                    if row is not None and not self._expired(row[1]):
                        try:
                            existing = json.loads(row[0])
                        except ValueError:
                            existing = None
                        if _valid_artifact(existing):
                            merged = _merge_artifacts(existing, payload)
                    conn.execute(
                        "INSERT OR REPLACE INTO artifacts "
                        "(skeleton_key, payload, created_at) VALUES (?, ?, ?)",
                        (skeleton_key, json.dumps(merged), created_at),
                    )
                    conn.commit()
                finally:
                    conn.close()
            except sqlite3.Error as error:
                raise StoreError(
                    f"failed to persist solve artifact: {error}",
                    details={"skeleton_key": skeleton_key, "path": str(self.path)},
                ) from error
        else:
            with self._lock:
                entry = self._artifact_memory.get(skeleton_key)
            if entry is not None and not self._expired(entry[1]):
                merged = _merge_artifacts(entry[0], payload)
        self._artifact_memory_put(skeleton_key, merged, created_at)
        with self._lock:
            self._stats["artifact_puts"] += 1

    def _artifact_memory_put(
        self, skeleton_key: str, payload: Dict[str, Any], created_at: float
    ) -> None:
        if self.max_memory_entries == 0 and self.path is not None:
            return
        with self._lock:
            self._artifact_memory[skeleton_key] = (payload, created_at)
            self._artifact_memory.move_to_end(skeleton_key)
            limit = max(1, self.max_memory_entries)
            while len(self._artifact_memory) > limit:
                self._artifact_memory.popitem(last=False)

    def _delete_artifact_row(self, skeleton_key: str) -> None:
        if self.path is not None:
            with self._connect() as conn:
                conn.execute(
                    "DELETE FROM artifacts WHERE skeleton_key = ?",
                    (skeleton_key,),
                )

    def artifact_rows(self) -> Tuple[int, int]:
        """``(row count, payload bytes)`` of the non-expired artifact tier."""
        cutoff = self._cutoff()
        if self.path is None:
            with self._lock:
                rows = [
                    payload
                    for payload, created_at in self._artifact_memory.values()
                    if cutoff is None or created_at > cutoff
                ]
            return len(rows), sum(len(json.dumps(p)) for p in rows)
        query = (
            "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) FROM artifacts"
        )
        params: Tuple[Any, ...] = ()
        if cutoff is not None:
            query += " WHERE created_at > ?"
            params = (cutoff,)
        with self._connect() as conn:
            row = conn.execute(query, params).fetchone()
        return int(row[0]), int(row[1])

    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            entry = self._memory.get(fingerprint)
            if entry is not None and not self._expired(entry.created_at):
                return True
        if self.path is None:
            return False
        query = "SELECT created_at FROM results WHERE fingerprint = ?"
        with self._connect() as conn:
            row = conn.execute(query, (fingerprint,)).fetchone()
        return row is not None and not self._expired(row[0])

    def __len__(self) -> int:
        """Number of non-expired results (expired rows read as absent)."""
        cutoff = self._cutoff()
        if self.path is None:
            with self._lock:
                if cutoff is None:
                    return len(self._memory)
                return sum(
                    1 for entry in self._memory.values()
                    if entry.created_at > cutoff
                )
        query = "SELECT COUNT(*) FROM results"
        params: Tuple[Any, ...] = ()
        if cutoff is not None:
            query += " WHERE created_at > ?"
            params = (cutoff,)
        with self._connect() as conn:
            return conn.execute(query, params).fetchone()[0]

    def fingerprints(self) -> Iterator[str]:
        """Iterate over non-expired fingerprints (memory-only when no path)."""
        cutoff = self._cutoff()
        if self.path is None:
            with self._lock:
                keys = [
                    key for key, entry in self._memory.items()
                    if cutoff is None or entry.created_at > cutoff
                ]
            return iter(keys)
        query = "SELECT fingerprint FROM results"
        params: Tuple[Any, ...] = ()
        if cutoff is not None:
            query += " WHERE created_at > ?"
            params = (cutoff,)
        with self._connect() as conn:
            rows = conn.execute(query + " ORDER BY created_at", params).fetchall()
        return iter(row[0] for row in rows)

    def entries(self) -> List[Dict[str, Any]]:
        """Metadata rows of every non-expired result (no payload parsing)."""
        cutoff = self._cutoff()
        if self.path is None:
            with self._lock:
                return [
                    {"fingerprint": key, "engine": entry.result.engine,
                     "added_cost": entry.result.added_cost,
                     "optimal": entry.result.optimal,
                     "created_at": entry.created_at,
                     "circuit_fp": entry.circuit_fp, "arch_fp": entry.arch_fp}
                    for key, entry in self._memory.items()
                    if cutoff is None or entry.created_at > cutoff
                ]
        query = (
            "SELECT fingerprint, engine, added_cost, optimal, created_at, "
            "circuit_fp, arch_fp FROM results"
        )
        params: Tuple[Any, ...] = ()
        if cutoff is not None:
            query += " WHERE created_at > ?"
            params = (cutoff,)
        with self._connect() as conn:
            rows = conn.execute(query + " ORDER BY created_at", params).fetchall()
        return [
            {"fingerprint": row[0], "engine": row[1], "added_cost": row[2],
             "optimal": bool(row[3]), "created_at": row[4],
             "circuit_fp": row[5], "arch_fp": row[6]}
            for row in rows
        ]

    def prune(self, ttl_seconds: Optional[float] = None) -> int:
        """Eagerly remove expired rows; returns how many were dropped.

        Args:
            ttl_seconds: Override for this sweep (defaults to the store's
                ``ttl_seconds``).  With neither set, nothing is pruned.
        """
        return self.prune_report(ttl_seconds)["rows_pruned"]

    def prune_report(self, ttl_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Eagerly remove expired rows and report what was reclaimed.

        The machine-readable companion of :meth:`prune` — the CLI's
        ``cache prune`` prints it and the server layer's cross-worker
        invalidation broadcast forwards it verbatim.

        Returns:
            A dict with ``rows_pruned`` (disk rows deleted), ``bytes_reclaimed``
            (total payload size of those rows), ``memory_dropped`` (expired
            in-memory LRU entries evicted), ``artifact_rows_pruned`` /
            ``artifact_bytes_reclaimed`` (same sweep over the solve-artifact
            table) and ``ttl_seconds`` (the effective TTL of the sweep,
            ``None`` when nothing could be pruned).
        """
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        effective = self.ttl_seconds if ttl_seconds is None else ttl_seconds
        cutoff = self._cutoff(ttl_seconds)
        report: Dict[str, Any] = {
            "rows_pruned": 0,
            "bytes_reclaimed": 0,
            "memory_dropped": 0,
            "artifact_rows_pruned": 0,
            "artifact_bytes_reclaimed": 0,
            "ttl_seconds": effective,
            "persistent": self.path is not None,
        }
        if cutoff is None:
            return report
        stale_keys: List[str] = []
        stale_artifacts: List[str] = []
        with self._lock:
            for key, entry in self._memory.items():
                if entry.created_at <= cutoff:
                    stale_keys.append(key)
            for key in stale_keys:
                del self._memory[key]
            for key, (_, created_at) in self._artifact_memory.items():
                if created_at <= cutoff:
                    stale_artifacts.append(key)
            for key in stale_artifacts:
                del self._artifact_memory[key]
        report["memory_dropped"] = len(stale_keys)
        if self.path is not None:
            with self._connect() as conn:
                row = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                    "FROM results WHERE created_at <= ?",
                    (cutoff,),
                ).fetchone()
                conn.execute(
                    "DELETE FROM results WHERE created_at <= ?", (cutoff,)
                )
                artifact_row = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                    "FROM artifacts WHERE created_at <= ?",
                    (cutoff,),
                ).fetchone()
                conn.execute(
                    "DELETE FROM artifacts WHERE created_at <= ?", (cutoff,)
                )
            report["rows_pruned"] = int(row[0])
            report["bytes_reclaimed"] = int(row[1])
            report["artifact_rows_pruned"] = int(artifact_row[0])
            report["artifact_bytes_reclaimed"] = int(artifact_row[1])
        else:
            report["artifact_rows_pruned"] = len(stale_artifacts)
        dropped = max(report["rows_pruned"], len(stale_keys))
        with self._lock:
            self._stats["expired_dropped"] += dropped
            self._stats["artifact_expired_dropped"] += max(
                report["artifact_rows_pruned"], len(stale_artifacts)
            )
        return report

    def drop_memory(self) -> int:
        """Evict the whole in-memory tier; returns how many entries it held.

        The disk tier is untouched — the next ``get`` of a still-valid
        fingerprint re-reads it from SQLite.  This is the cross-*process*
        invalidation primitive: after one worker prunes (or rewrites) rows
        in the shared database file, every other worker's LRU may hold
        stale copies; broadcasting ``drop_memory`` makes them all re-read.
        """
        with self._lock:
            dropped = len(self._memory)
            self._memory.clear()
            if self.path is not None:
                # Artifact rows on disk survive (they re-read on the next
                # lookup); a memory-only store has no disk tier to re-read
                # from, so its artifacts are deliberately kept.
                self._artifact_memory.clear()
        return dropped

    def clear(self) -> int:
        """Drop every cached result and artifact (both tiers).

        Returns the number of *result* rows removed (the historical
        contract); artifact rows are cleared alongside.
        """
        removed = 0
        if self.path is not None:
            with self._connect() as conn:
                removed = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
                conn.execute("DELETE FROM results")
                conn.execute("DELETE FROM artifacts")
        with self._lock:
            removed = max(removed, len(self._memory))
            self._memory.clear()
            self._artifact_memory.clear()
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus tier sizes (a snapshot copy)."""
        with self._lock:
            stats = dict(self._stats)
            stats["memory_entries"] = len(self._memory)
        stats["persistent"] = self.path is not None
        stats["ttl_seconds"] = self.ttl_seconds
        stats["degraded"] = self.degraded
        if self.path is not None:
            stats["disk_entries"] = len(self)
        rows, size = self.artifact_rows()
        stats["artifact_rows"] = rows
        stats["artifact_bytes"] = size
        return stats


def _valid_artifact(payload) -> bool:
    """Shape check of one artifact payload (shared by read and write).

    Cheap structural validation only — semantic checks (does the bound's
    orientation match, does the schedule re-cost) belong to the consumer,
    which knows the target instance.
    """
    if not isinstance(payload, dict):
        return False
    if payload.get("version") != ARTIFACT_PAYLOAD_VERSION:
        return False
    x_var_limit = payload.get("x_var_limit")
    spot_var_count = payload.get("spot_var_count")
    if not isinstance(x_var_limit, int) or x_var_limit < 0:
        return False
    if not isinstance(spot_var_count, int) or spot_var_count < 0:
        return False
    clauses = payload.get("clauses")
    if not isinstance(clauses, list):
        return False
    limit = x_var_limit + spot_var_count
    for clause in clauses:
        if not isinstance(clause, list) or not clause:
            return False
        for literal in clause:
            if not isinstance(literal, int) or literal == 0:
                return False
            if abs(literal) > limit:
                return False
    bounds = payload.get("bounds")
    if not isinstance(bounds, dict):
        return False
    for edges, bound in bounds.items():
        if not isinstance(edges, str):
            return False
        if not isinstance(bound, (int, float)) or isinstance(bound, bool):
            return False
    schedule = payload.get("schedule")
    if schedule is not None:
        if not isinstance(schedule, list) or not schedule:
            return False
        for mapping in schedule:
            if not isinstance(mapping, list) or not all(
                isinstance(q, int) for q in mapping
            ):
                return False
        if not isinstance(payload.get("objective"), int):
            return False
    return True


def _merge_artifacts(
    existing: Dict[str, Any], incoming: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold *incoming* into *existing* (both pre-validated).

    Clause union keeps existing clauses first and caps the total; bounds
    take the per-orientation maximum (both are proven, the higher prunes
    more); the cheaper schedule wins.  Clause blocks only merge when both
    payloads agree on the variable-block boundaries: a clause-free payload
    (bound-only harvest, e.g. from a pruned family) adopts the other side's
    clause block untouched, while a genuine boundary conflict between two
    clause-bearing payloads means one came from an incompatible encoding
    build — the incoming payload then replaces the clause block outright
    rather than merging garbage.
    """
    merged = dict(existing)
    boundaries_match = (
        existing.get("x_var_limit") == incoming.get("x_var_limit")
        and existing.get("spot_var_count") == incoming.get("spot_var_count")
    )
    if not incoming["clauses"]:
        pass  # keep the existing clause block and boundaries
    elif not existing["clauses"] or not boundaries_match:
        merged["x_var_limit"] = incoming["x_var_limit"]
        merged["spot_var_count"] = incoming["spot_var_count"]
        merged["clauses"] = list(incoming["clauses"])[:MAX_ARTIFACT_CLAUSES]
    else:
        seen = {tuple(clause) for clause in existing["clauses"]}
        clauses = list(existing["clauses"])
        for clause in incoming["clauses"]:
            if tuple(clause) not in seen and len(clauses) < MAX_ARTIFACT_CLAUSES:
                seen.add(tuple(clause))
                clauses.append(clause)
        merged["clauses"] = clauses
    bounds = dict(existing["bounds"])
    for edges, bound in incoming["bounds"].items():
        if edges not in bounds or bound > bounds[edges]:
            bounds[edges] = bound
    if len(bounds) > MAX_ARTIFACT_BOUNDS:
        bounds = dict(
            sorted(bounds.items(), key=lambda item: -item[1])[:MAX_ARTIFACT_BOUNDS]
        )
    merged["bounds"] = bounds
    if incoming.get("schedule") is not None and (
        existing.get("schedule") is None
        or incoming["objective"] < existing["objective"]
    ):
        merged["schedule"] = incoming["schedule"]
        merged["objective"] = incoming["objective"]
    return merged


class ArtifactCache:
    """Picklable handle to a store's solve-artifact tier.

    The solving layers (:class:`repro.exact.sat_mapper.SweepContext`, the
    parallel subset fan-out) carry this object instead of the full
    :class:`ResultStore`: it exposes exactly the two artifact operations,
    and it survives crossing into process-pool workers — pickling drops the
    live store and keeps the database path, and the far side lazily
    re-opens its own connection-per-operation store.  A memory-only store
    has no path to re-open, so on the far side every lookup misses and
    every save is dropped: artifact seeding silently degrades to cold
    solving, never to an error.
    """

    def __init__(self, store: Optional[ResultStore]):
        self._store = store
        self.path = None if store is None or store.path is None else str(store.path)
        self.ttl_seconds = None if store is None else store.ttl_seconds

    def __getstate__(self):
        return {"path": self.path, "ttl_seconds": self.ttl_seconds}

    def __setstate__(self, state):
        self._store = None
        self.path = state["path"]
        self.ttl_seconds = state["ttl_seconds"]

    def _backing(self) -> Optional[ResultStore]:
        if self._store is None and self.path is not None:
            # Re-opened lazily after crossing a process boundary; the
            # memory tier is disabled — worker processes are short-lived
            # and must see other workers' merges immediately.
            self._store = ResultStore(
                self.path,
                max_memory_entries=0,
                ttl_seconds=self.ttl_seconds,
            )
        return self._store

    def load(self, skeleton_key: str) -> Optional[Dict[str, Any]]:
        """The artifact payload for *skeleton_key*, or ``None``."""
        store = self._backing()
        if store is None:
            return None
        return store.get_artifact(skeleton_key)

    def save(self, skeleton_key: str, payload: Dict[str, Any]) -> None:
        """Merge *payload* into the row for *skeleton_key* (best effort)."""
        store = self._backing()
        if store is None:
            return
        store.put_artifact(skeleton_key, payload)


_JOURNAL_SCHEMA = """
CREATE TABLE IF NOT EXISTS job_journal (
    public_id    TEXT PRIMARY KEY,
    body         BLOB NOT NULL,
    worker_id    TEXT,
    local_id     TEXT,
    state        TEXT NOT NULL,
    error_code   TEXT,
    redeliveries INTEGER NOT NULL DEFAULT 0,
    created_at   REAL NOT NULL,
    updated_at   REAL NOT NULL
)
"""

#: Journal entry lifecycle states.  ``accepted`` means the submit body is
#: durable but no worker owns it yet; ``dispatched`` means a worker was
#: assigned; ``terminal`` means the job reached DONE or FAILED and must
#: never be redelivered.
JOURNAL_ACCEPTED = "accepted"
JOURNAL_DISPATCHED = "dispatched"
JOURNAL_TERMINAL = "terminal"


class JobJournal:
    """Durable at-least-once journal of accepted submits.

    The supervisor records every accepted submit here *before* dispatching
    it to a worker, and marks the entry terminal when the job completes or
    fails.  When a worker dies, its non-terminal entries are the exact
    set of jobs that must be redelivered to a live worker — under the same
    public job id, so clients polling ``GET /v1/jobs/{id}`` never see an
    accepted job vanish.

    The journal shares the supervisor's ``results.sqlite`` file (one
    durable surface per cache directory) but owns its own table and
    connection discipline: connection-per-operation, bounded busy retries,
    and failures surfacing as :class:`StoreError` for the caller to treat
    as "durability degraded" rather than "service down".
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            with self._connect() as conn:
                conn.execute(_JOURNAL_SCHEMA)
        except sqlite3.Error as error:
            raise StoreError(
                f"failed to open job journal: {error}",
                details={"path": str(self.path)},
            ) from error

    @classmethod
    def at(cls, cache_dir) -> "JobJournal":
        """The journal for a cache *directory* (``<dir>/results.sqlite``)."""
        return cls(Path(cache_dir) / RESULTS_DB_NAME)

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(str(self.path), timeout=SQLITE_TIMEOUT_SECONDS)

    def _execute(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        """Run one statement with busy retries and the journal fault point."""
        attempt = 0
        while True:
            try:
                if faults.ARMED:
                    faults.fire("store.journal")
                with self._connect() as conn:
                    return conn.execute(sql, params).fetchall()
            except (sqlite3.Error, faults.FaultInjectedError) as error:
                if _transient_disk_error(error) and attempt < BUSY_RETRY_LIMIT:
                    attempt += 1
                    _retry_pause(attempt)
                    continue
                raise StoreError(
                    f"journal operation failed: {error}",
                    details={"path": str(self.path)},
                ) from error

    # ------------------------------------------------------------------
    def record(self, public_id: str, body: bytes) -> None:
        """Persist an accepted submit *before* it is dispatched anywhere.

        *body* is the raw submit envelope exactly as the client sent it —
        replaying it through a worker's submit path reproduces the job
        (same fingerprints, same options) without re-deriving anything.
        """
        now = time.time()
        self._execute(
            "INSERT OR REPLACE INTO job_journal "
            "(public_id, body, worker_id, local_id, state, error_code, "
            " redeliveries, created_at, updated_at) "
            "VALUES (?, ?, NULL, NULL, ?, NULL, 0, ?, ?)",
            (public_id, sqlite3.Binary(body), JOURNAL_ACCEPTED, now, now),
        )

    def assign(self, public_id: str, worker_id: str, local_id: str) -> None:
        """Record which worker owns the job and its worker-local id."""
        self._execute(
            "UPDATE job_journal SET worker_id = ?, local_id = ?, state = ?, "
            "updated_at = ? WHERE public_id = ?",
            (worker_id, local_id, JOURNAL_DISPATCHED, time.time(), public_id),
        )

    def redelivered(self, public_id: str, worker_id: str, local_id: str) -> None:
        """Re-assign after a worker death (bumps the redelivery counter)."""
        self._execute(
            "UPDATE job_journal SET worker_id = ?, local_id = ?, state = ?, "
            "redeliveries = redeliveries + 1, updated_at = ? "
            "WHERE public_id = ?",
            (worker_id, local_id, JOURNAL_DISPATCHED, time.time(), public_id),
        )

    def mark_terminal(self, public_id: str, error_code: Optional[str] = None) -> None:
        """The job reached DONE/FAILED; it must never be redelivered."""
        self._execute(
            "UPDATE job_journal SET state = ?, error_code = ?, updated_at = ? "
            "WHERE public_id = ?",
            (JOURNAL_TERMINAL, error_code, time.time(), public_id),
        )

    def discard(self, public_id: str) -> None:
        """Drop one entry outright (e.g. a provisional pre-dispatch row)."""
        self._execute(
            "DELETE FROM job_journal WHERE public_id = ?", (public_id,)
        )

    def get(self, public_id: str) -> Optional[Dict[str, Any]]:
        """One journal entry as a dict, or ``None``."""
        rows = self._execute(
            "SELECT public_id, body, worker_id, local_id, state, error_code, "
            "redeliveries FROM job_journal WHERE public_id = ?",
            (public_id,),
        )
        if not rows:
            return None
        return self._row_to_entry(rows[0])

    def unfinished(self, worker_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Non-terminal entries, optionally only those owned by one worker.

        With ``worker_id=None`` this also returns ``accepted`` entries that
        were never dispatched (e.g. the supervisor died between record and
        dispatch) — recovery must replay those too.
        """
        if worker_id is None:
            rows = self._execute(
                "SELECT public_id, body, worker_id, local_id, state, "
                "error_code, redeliveries FROM job_journal WHERE state != ? "
                "ORDER BY created_at",
                (JOURNAL_TERMINAL,),
            )
        else:
            rows = self._execute(
                "SELECT public_id, body, worker_id, local_id, state, "
                "error_code, redeliveries FROM job_journal "
                "WHERE state != ? AND worker_id = ? ORDER BY created_at",
                (JOURNAL_TERMINAL, worker_id),
            )
        return [self._row_to_entry(row) for row in rows]

    @staticmethod
    def _row_to_entry(row: Tuple) -> Dict[str, Any]:
        return {
            "public_id": row[0],
            "body": bytes(row[1]),
            "worker_id": row[2],
            "local_id": row[3],
            "state": row[4],
            "error_code": row[5],
            "redeliveries": row[6],
        }


__all__ = [
    "ArtifactCache",
    "JobJournal",
    "ResultStore",
    "ARTIFACT_PAYLOAD_VERSION",
    "BREAKER_COOLDOWN_SECONDS",
    "BREAKER_THRESHOLD",
    "BUSY_RETRY_LIMIT",
    "DEFAULT_MEMORY_ENTRIES",
    "JOURNAL_ACCEPTED",
    "JOURNAL_DISPATCHED",
    "JOURNAL_TERMINAL",
    "MAX_ARTIFACT_BOUNDS",
    "MAX_ARTIFACT_CLAUSES",
    "RESULTS_DB_NAME",
    "SQLITE_TIMEOUT_SECONDS",
]
