"""Production service layer: fingerprints, persistent stores, async mapping.

This subsystem turns the batch pipeline of :mod:`repro.pipeline` into a
deployable service that never solves the same instance twice:

* :mod:`repro.service.fingerprint` — content-addressed
  :func:`~repro.service.fingerprint.job_fingerprint` over (circuit,
  coupling map, engine, options), built on
  :meth:`~repro.circuit.circuit.QuantumCircuit.fingerprint` and
  :meth:`~repro.arch.coupling.CouplingMap.canonical_key`,
* :mod:`repro.service.store` — :class:`~repro.service.store.ResultStore`,
  a validated, fingerprint-keyed result cache (in-memory LRU over SQLite,
  safe under concurrent writers),
* :mod:`repro.service.service` — the asyncio
  :class:`~repro.service.service.MappingService` with submit/status/result
  job semantics, in-flight deduplication and multi-device routing,
* :mod:`repro.service.errors` — structured, machine-readable service errors.

The on-disk warm-start layer for permutation tables lives with the other
architecture caches (:mod:`repro.arch.cache`, ``set_cache_dir`` /
``REPRO_CACHE_DIR``) and is re-exported by :mod:`repro.pipeline.cache`.

The submodules are imported lazily (PEP 562) to keep ``import repro`` cheap.
"""

from importlib import import_module
from typing import TYPE_CHECKING

_EXPORTS = {
    "ServiceError": "repro.service.errors",
    "InvalidResultError": "repro.service.errors",
    "JobNotFoundError": "repro.service.errors",
    "MappingFailedError": "repro.service.errors",
    "RoutingError": "repro.service.errors",
    "StoreError": "repro.service.errors",
    "ServiceStateError": "repro.service.errors",
    "job_fingerprint": "repro.service.fingerprint",
    "coupling_fingerprint": "repro.service.fingerprint",
    "canonical_options": "repro.service.fingerprint",
    "describe_job": "repro.service.fingerprint",
    "ResultStore": "repro.service.store",
    "MappingService": "repro.service.service",
    "Job": "repro.service.service",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.service.errors import (
        InvalidResultError,
        JobNotFoundError,
        MappingFailedError,
        RoutingError,
        ServiceError,
        ServiceStateError,
        StoreError,
    )
    from repro.service.fingerprint import (
        canonical_options,
        coupling_fingerprint,
        describe_job,
        job_fingerprint,
    )
    from repro.service.service import Job, MappingService
    from repro.service.store import ResultStore


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
