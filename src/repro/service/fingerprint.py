"""Content-addressed fingerprints for mapping jobs.

A *job* is the full input of one mapping request: the circuit, the target
coupling map, the engine name and the engine options.  Two jobs with the same
fingerprint are guaranteed to produce the same :class:`~repro.exact.result.
MappingResult` (up to engine nondeterminism the options pin down, e.g. a
seed), so the fingerprint is the cache key of the
:class:`~repro.service.store.ResultStore`.

The circuit contributes through :meth:`~repro.circuit.circuit.QuantumCircuit.
fingerprint` (canonical gate-stream hash, name excluded), the architecture
through :meth:`~repro.arch.coupling.CouplingMap.canonical_key` (edge set,
name excluded), the engine through its *resolved* registry name (aliases
collapse onto one key) and the options through a canonical JSON rendering
with sorted keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import FINGERPRINT_VERSION, QuantumCircuit

#: Version tag of the job-fingerprint scheme (includes the circuit scheme).
JOB_FINGERPRINT_VERSION = f"jfp1-{FINGERPRINT_VERSION}"


def _canonical_option(value: Any) -> Any:
    """Reduce an engine option to a deterministic JSON-ready value.

    Strategy instances (and any other rich objects) are identified by their
    ``name`` attribute when they have one; everything else non-primitive
    falls back to ``repr`` — deterministic for the value objects this
    package uses.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _canonical_option(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_option(item) for item in value]
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return f"{type(value).__name__}:{name}"
    return repr(value)


def canonical_options(options: Optional[Mapping[str, Any]]) -> str:
    """Canonical JSON rendering of engine options (sorted keys, stable values)."""
    reduced = {
        str(key): _canonical_option(value) for key, value in (options or {}).items()
    }
    return json.dumps(reduced, sort_keys=True, separators=(",", ":"))


def coupling_fingerprint(coupling: CouplingMap) -> str:
    """SHA-256 hex digest of a coupling map's canonical (name-free) key."""
    num_qubits, edges = coupling.canonical_key()
    hasher = hashlib.sha256()
    hasher.update(f"arch|{num_qubits}|".encode())
    hasher.update(";".join(f"{c},{t}" for c, t in edges).encode())
    return hasher.hexdigest()


def job_fingerprint(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    engine: str,
    options: Optional[Mapping[str, Any]] = None,
) -> str:
    """The content-addressed cache key of one mapping job.

    Args:
        circuit: The circuit to map.
        coupling: The target architecture.
        engine: Engine name — pass the *resolved* registry name (use
            :func:`repro.pipeline.registry.resolve_mapper_name`) so aliases
            share one key; the raw string is hashed as given.
        options: Engine options as passed to the mapper factory.

    Returns:
        A SHA-256 hex digest; equal inputs (structurally, names excluded)
        yield equal digests across processes and platforms.
    """
    hasher = hashlib.sha256()
    parts = (
        JOB_FINGERPRINT_VERSION,
        circuit.fingerprint(),
        coupling_fingerprint(coupling),
        engine.lower(),
        canonical_options(options),
    )
    hasher.update("\n".join(parts).encode())
    return hasher.hexdigest()


def describe_job(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    engine: str,
    options: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Human-oriented provenance record of a job's fingerprint inputs."""
    return {
        "fingerprint": job_fingerprint(circuit, coupling, engine, options),
        "circuit_fingerprint": circuit.fingerprint(),
        "circuit_name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_gates": circuit.num_gates,
        "arch_fingerprint": coupling_fingerprint(coupling),
        "arch_name": coupling.name,
        "engine": engine.lower(),
        "options": canonical_options(options),
        "scheme": JOB_FINGERPRINT_VERSION,
    }


__all__ = [
    "JOB_FINGERPRINT_VERSION",
    "canonical_options",
    "coupling_fingerprint",
    "job_fingerprint",
    "describe_job",
]
