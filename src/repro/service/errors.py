"""Structured errors of the :mod:`repro.service` subsystem.

Every failure the service layer can produce carries a stable machine-readable
``code`` plus a free-form ``details`` mapping, so API front ends (the CLI's
``serve`` command today, an HTTP gateway tomorrow) can translate failures
without parsing exception messages.  The codes are part of the public
contract; add new ones, never repurpose old ones.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ServiceError(Exception):
    """Base class of all structured service-layer failures.

    Attributes:
        code: Stable machine-readable error identifier (``"invalid-result"``,
            ``"job-not-found"``, ...).
        message: Human-readable description.
        details: Error-specific structured context (fingerprints, job ids,
            validation messages, ...).
    """

    code = "service-error"

    def __init__(self, message: str, details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.message = message
        self.details: Dict[str, Any] = dict(details or {})

    def to_dict(self) -> Dict[str, Any]:
        """The error as a JSON-ready mapping (for logs and API responses)."""
        return {"code": self.code, "message": self.message, "details": self.details}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(code={self.code!r}, message={self.message!r})"


class InvalidResultError(ServiceError):
    """A :class:`~repro.exact.result.MappingResult` failed validation.

    Raised by the :class:`~repro.service.store.ResultStore` when asked to
    cache a result whose schedule or cost bookkeeping is inconsistent — a
    corrupt result must never be persisted and served to later callers.
    """

    code = "invalid-result"


class JobNotFoundError(ServiceError):
    """A job id is unknown to the :class:`~repro.service.service.MappingService`."""

    code = "job-not-found"


class RoutingError(ServiceError):
    """No registered coupling map can host the submitted circuit."""

    code = "routing-failed"


class MappingFailedError(ServiceError):
    """A mapping engine failed to produce a result for a job."""

    code = "mapping-failed"


class StoreError(ServiceError):
    """The persistent result store failed (corrupt payload, I/O error, ...)."""

    code = "store-error"


class ServiceStateError(ServiceError):
    """The service was used in a state it does not support (not started, ...)."""

    code = "service-state"


class DeadlineExceededError(ServiceError):
    """A job's server-side ``time_limit`` elapsed before a result was found.

    The deadline is enforced cooperatively: the running solver is
    interrupted at its next conflict boundary, so the job fails promptly
    instead of running an unbounded exact search to completion.
    """

    code = "deadline-exceeded"


class JobCancelledError(ServiceError):
    """The job was cancelled by an explicit client request.

    Raised for jobs cancelled while queued (never started) and for running
    jobs whose solver was cooperatively interrupted via
    ``DELETE /v1/jobs/{id}`` or :meth:`MappingService.cancel`.
    """

    code = "job-cancelled"


class ServiceUnavailable(ServiceError):
    """The service is shutting down (or overloaded) and cannot take the job.

    Raised for submissions while the service drains, and attached to jobs
    that were still queued when a drain started: such jobs were *not*
    solved, but they are not silently lost either — callers observe this
    structured failure and can retry elsewhere (another worker of a
    supervisor deployment, or the same worker after its restart).
    """

    code = "service-unavailable"


__all__ = [
    "ServiceError",
    "DeadlineExceededError",
    "InvalidResultError",
    "JobCancelledError",
    "JobNotFoundError",
    "MappingFailedError",
    "RoutingError",
    "StoreError",
    "ServiceStateError",
    "ServiceUnavailable",
]
