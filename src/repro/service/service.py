"""Asynchronous mapping service with job semantics and result caching.

:class:`MappingService` is the front end a long-running deployment talks to:
callers ``submit`` circuits and get a job id back immediately; a background
dispatcher drains queued jobs in batches through
:meth:`~repro.pipeline.pipeline.MappingPipeline.map_many` worker pools;
``status``/``result`` expose per-job state and provenance.

Four layers keep repeated work off the solvers:

1. **Result store** — every submission is first looked up in the
   :class:`~repro.service.store.ResultStore` by its content-addressed
   :func:`~repro.service.fingerprint.job_fingerprint`; a hit completes the
   job synchronously without touching any mapper.
2. **In-flight coalescing** — a submission whose fingerprint is already
   queued or solving attaches to the existing job instead of solving twice;
   both jobs complete from the one result.
3. **Batch draining** — the dispatcher empties the queue in one sweep,
   groups jobs by (architecture, engine, options) and maps each group as one
   ``map_many`` batch, so per-architecture artefacts are built once per
   group rather than once per job.
4. **Bound and model seeding** — jobs that do have to solve are warm-started
   through a :class:`~repro.pipeline.bounds.BoundProviderChain`: the
   cheapest stored result for the same circuit on the same (or a registered
   sub-) architecture — solved by *any* engine — is asserted as the exact
   engine's initial upper bound, and (when its schedule validates against
   the target coupling map) replayed as the solver's initial incumbent
   *model*, so a resubmitted circuit needs only the final optimality probe
   instead of a full descent.  Schedules that do not transfer degrade to
   bound-only seeding with a provenance note.  Exact subset sweeps are
   additionally handed a **solve-artifact cache** handle (a
   :class:`~repro.pipeline.bounds.ClauseProvider` over the store's
   skeleton-keyed artifact table), so even a circuit the fleet has never
   seen warm-starts from the learned clauses, proven family bounds and
   best schedules of structurally identical past jobs; per-job hit rates
   land in provenance and aggregate in :meth:`MappingService.stats`.

The service can front **multiple coupling maps** (the first step toward
device sharding): register several devices and each submission is routed to
the requested one, or — when no target is named — to the smallest registered
device that fits the circuit.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.result import MappingResult
from repro.pipeline.bounds import (
    BoundProvider,
    ClauseProvider,
    ModelProvider,
    StoreBoundProvider,
)
from repro.pipeline.pipeline import MappingPipeline
from repro.pipeline.registry import resolve_mapper_name
from repro.sat.control import SolveControl
from repro.service.errors import (
    DeadlineExceededError,
    InvalidResultError,
    JobCancelledError,
    JobNotFoundError,
    MappingFailedError,
    RoutingError,
    ServiceError,
    ServiceStateError,
    ServiceUnavailable,
)
from repro.service.fingerprint import (
    canonical_options,
    coupling_fingerprint,
    job_fingerprint,
)
from repro.service.store import ResultStore

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: How many recent job completions the rolling latency window keeps.
LATENCY_WINDOW = 512

#: Per-subscriber event queue capacity; a stalled subscriber loses the
#: *oldest* events rather than blocking the service.
SUBSCRIBER_QUEUE_SIZE = 1024


@dataclass
class Job:
    """One mapping request tracked by the service.

    Attributes:
        job_id: Service-unique identifier returned by ``submit``.
        fingerprint: Content-addressed key of the (circuit, arch, engine,
            options) tuple; identical jobs share it.
        circuit: The submitted circuit.
        arch_name: Name the routed coupling map is registered under.
        engine: Resolved engine name for this job.
        options: Engine options for this job.
        status: One of ``queued``, ``running``, ``done``, ``failed``.
        result: The mapping result once ``done``.
        error: The structured failure once ``failed``.
        provenance: How the result came to be (cache hit/miss, coalescing,
            batch size, elapsed seconds, ...).
        time_limit: Optional server-enforced wall-clock budget in seconds
            (from the submit options); the job fails with
            ``deadline-exceeded`` when it elapses first.
        control: Cooperative cancellation token shared with every solver
            the job's mapping work creates.
    """

    job_id: str
    fingerprint: str
    circuit: QuantumCircuit
    arch_name: str
    engine: str
    options: Dict[str, Any]
    status: str = QUEUED
    result: Optional[MappingResult] = None
    error: Optional[ServiceError] = None
    provenance: Dict[str, Any] = field(default_factory=dict)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    followers: List["Job"] = field(default_factory=list)
    time_limit: Optional[float] = None
    control: SolveControl = field(default_factory=SolveControl)
    cancel_requested: bool = False
    deadline_handle: Optional[Any] = None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready status view of the job."""
        view = {
            "job_id": self.job_id,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "circuit_name": self.circuit.name,
            "arch": self.arch_name,
            "engine": self.engine,
            "provenance": dict(self.provenance),
        }
        if self.result is not None:
            view["added_cost"] = self.result.added_cost
            view["optimal"] = self.result.optimal
        if self.error is not None:
            view["error"] = self.error.to_dict()
        return view


class MappingService:
    """Async submit/status/result front end over the mapping pipeline.

    Args:
        couplings: The device(s) the service maps onto: a single
            :class:`CouplingMap`, a sequence of maps (registered under their
            ``name`` attributes) or an explicit name-to-map dictionary.
        engine: Default engine for submissions that do not name one.
        engine_options: Default engine options (merged under per-job options).
        store: Result store; a memory-only :class:`ResultStore` when omitted.
        workers: Worker count handed to ``map_many`` for each drained batch.
        executor: ``"thread"`` or ``"process"`` (see :class:`MappingPipeline`).
        bound_providers: Upper-bound sources used to warm-start exact solves
            (see :mod:`repro.pipeline.bounds`).  Defaults to a store lookup
            over the registered devices (``seed_bounds=False`` disables it).
        seed_bounds: Whether to seed exact solves at all.
        seed_models: Whether the default store lookup may also replay a
            cached *schedule* as the solver's initial incumbent model
            (validated against the target coupling map first; sub-
            architecture hits that do not transfer degrade to bound-only
            seeding).  Ignored when explicit *bound_providers* are given.
        seed_artifacts: Whether exact sweeps warm-start from the store's
            **solve-artifact table** (learned clauses, proven family lower
            bounds and best schedules, keyed by encoding skeleton — so even
            never-seen circuits benefit from structurally identical past
            jobs) via a default :class:`~repro.pipeline.bounds.ClauseProvider`.
            Independent of *seed_bounds*; ignored when explicit
            *bound_providers* are given.

    Example:
        >>> async with MappingService(ibm_qx4(), engine="dp") as service:
        ...     job_id = await service.submit(circuit)
        ...     result = await service.result(job_id)
    """

    def __init__(
        self,
        couplings: Union[CouplingMap, Sequence[CouplingMap], Mapping[str, CouplingMap]],
        engine: str = "sat",
        engine_options: Optional[Dict[str, Any]] = None,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        executor: str = "thread",
        bound_providers: Optional[Sequence[BoundProvider]] = None,
        seed_bounds: bool = True,
        seed_models: bool = True,
        seed_artifacts: bool = True,
    ):
        self.couplings = self._normalise_couplings(couplings)
        self.engine = resolve_mapper_name(engine)
        self.engine_options = dict(engine_options or {})
        self.store = store if store is not None else ResultStore()
        self.workers = max(1, int(workers))
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}; use 'thread' or 'process'")
        self.executor = executor
        if bound_providers is not None:
            self.bound_providers: List[BoundProvider] = list(bound_providers)
        else:
            self.bound_providers = []
            devices = list(self.couplings.values())
            if seed_bounds:
                # ModelProvider extends the plain store lookup with schedule
                # replay, so one provider covers both seeding layers.
                provider_cls = (
                    ModelProvider if seed_models else StoreBoundProvider
                )
                self.bound_providers.append(
                    provider_cls(self.store, couplings=devices)
                )
            if seed_artifacts:
                # ClauseProvider contributes no bound of its own, so
                # artifact seeding switches independently of bound seeding.
                self.bound_providers.append(
                    ClauseProvider(self.store, couplings=devices)
                )
        self._jobs: Dict[str, Job] = {}
        self._primary_by_fp: Dict[str, Job] = {}
        self._queue: Optional["asyncio.Queue[Job]"] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._group_tasks: "set[asyncio.Task]" = set()
        self._ids = itertools.count(1)
        self._counters = {
            "submitted": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "solved": 0,
            "failed": 0,
        }
        self._stopping = False
        self._in_flight = 0
        # Fleet-learning visibility: lifetime sums of per-job artifact
        # hit-rate counters (see SweepContext.artifact_statistics).
        self._artifact_totals: Dict[str, int] = {
            "artifact_hits": 0,
            "artifact_misses": 0,
            "artifact_clauses_imported": 0,
            "artifact_bounds_used": 0,
            "artifact_models_used": 0,
        }
        self._latencies: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self._per_engine: Dict[str, Dict[str, int]] = {}
        self._subscribers: "set[asyncio.Queue]" = set()
        self._event_seq = itertools.count(1)

    @staticmethod
    def _normalise_couplings(couplings) -> "Dict[str, CouplingMap]":
        if isinstance(couplings, CouplingMap):
            couplings = [couplings]
        if isinstance(couplings, Mapping):
            items = list(couplings.items())
        else:
            items = [(coupling.name, coupling) for coupling in couplings]
        if not items:
            raise ValueError("the service needs at least one coupling map")
        registry: Dict[str, CouplingMap] = {}
        for name, coupling in items:
            if name in registry:
                raise ValueError(f"duplicate coupling map name {name!r}")
            registry[name] = coupling
        return registry

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MappingService":
        """Start the background dispatcher (idempotent)."""
        if self._dispatcher is None or self._dispatcher.done():
            self._queue = asyncio.Queue()
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the service: finish in-flight work, fail whatever never ran.

        Drain semantics (the contract a supervisor's SIGTERM relies on):

        1. New submissions are rejected with :class:`ServiceUnavailable`
           from the moment ``stop`` is entered.
        2. Dispatching stops — no queued job is promoted to ``running``
           any more.
        3. Every already-*running* batch is awaited to completion, and its
           results are written to the store before the jobs complete — there
           is nothing left to flush afterwards.  (Individual jobs *can* be
           interrupted mid-solve via :meth:`cancel`; a drain deliberately
           lets running work finish instead.)
        4. Jobs still ``queued`` (never dispatched) are failed with a
           structured :class:`ServiceUnavailable`; no job is ever left in a
           non-terminal state, so ``result()`` waiters always wake up.

        Args:
            drain: Kept for API compatibility and recorded in the failure
                details of queued jobs.  Running batches are awaited either
                way; ``drain=False`` merely documents that the caller did
                not expect queued work to survive.
        """
        if self._dispatcher is None:
            return
        self._stopping = True
        try:
            # Stop the dispatcher first so nothing moves from the queue
            # into solving while we wait for in-flight batches.  A batch is
            # dequeued and turned into group tasks without an await point,
            # so cancellation cannot strand a half-dispatched batch.
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            while self._group_tasks:
                await asyncio.gather(
                    *list(self._group_tasks), return_exceptions=True
                )
            stranded: List[Job] = []
            if self._queue is not None:
                while True:
                    try:
                        stranded.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            for job in stranded:
                self._fail(
                    job,
                    ServiceUnavailable(
                        "service stopped before the job was dispatched; "
                        "resubmit (to another worker, or after restart)",
                        details={"job_id": job.job_id, "drain": drain},
                    ),
                )
            self._dispatcher = None
            self._queue = None
        finally:
            self._stopping = False

    async def __aenter__(self) -> "MappingService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, circuit: QuantumCircuit, arch: Optional[str] = None) -> Tuple[str, CouplingMap]:
        """Choose the coupling map a circuit runs on.

        An explicit *arch* name must be registered and large enough; without
        one the smallest registered device that fits the circuit wins (ties
        broken by registration order).

        Raises:
            RoutingError: When no registered device can host the circuit.
        """
        if arch is not None:
            coupling = self.couplings.get(arch)
            if coupling is None:
                raise RoutingError(
                    f"unknown architecture {arch!r}",
                    details={"known": sorted(self.couplings)},
                )
            if coupling.num_qubits < circuit.num_qubits:
                raise RoutingError(
                    f"architecture {arch!r} has {coupling.num_qubits} qubits but "
                    f"the circuit needs {circuit.num_qubits}",
                    details={"arch": arch, "circuit": circuit.name},
                )
            return arch, coupling
        fitting = [
            (coupling.num_qubits, name)
            for name, coupling in self.couplings.items()
            if coupling.num_qubits >= circuit.num_qubits
        ]
        if not fitting:
            raise RoutingError(
                f"no registered architecture fits {circuit.num_qubits} qubits",
                details={
                    "circuit": circuit.name,
                    "devices": {
                        name: c.num_qubits for name, c in self.couplings.items()
                    },
                },
            )
        fitting.sort(key=lambda pair: pair[0])
        name = fitting[0][1]
        return name, self.couplings[name]

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        circuit: QuantumCircuit,
        *,
        arch: Optional[str] = None,
        engine: Optional[str] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Submit one circuit; returns its job id immediately.

        The job completes without any mapper running when the result store
        already holds its fingerprint, or when an identical job is already
        in flight (the two complete together from one solve).
        """
        if self._stopping:
            raise ServiceUnavailable(
                "service is draining and no longer accepts submissions"
            )
        if self._queue is None:
            raise ServiceStateError("service not started; use 'async with' or start()")
        job_engine = self.engine if engine is None else resolve_mapper_name(engine)
        job_options = dict(self.engine_options)
        job_options.update(options or {})
        # ``time_limit`` is a *serving* concern, enforced here with a
        # deadline watchdog plus cooperative solver interrupts — it is
        # popped before fingerprinting so a cached result (solved under any
        # or no budget) still satisfies a budgeted resubmission.
        time_limit = job_options.pop("time_limit", None)
        if time_limit is not None:
            time_limit = float(time_limit)
            if time_limit <= 0:
                raise ServiceStateError(
                    "time_limit must be positive",
                    details={"time_limit": time_limit},
                )
        arch_name, coupling = self.route(circuit, arch)
        fingerprint = job_fingerprint(circuit, coupling, job_engine, job_options)
        job = Job(
            job_id=f"job-{next(self._ids):06d}",
            fingerprint=fingerprint,
            circuit=circuit,
            arch_name=arch_name,
            engine=job_engine,
            options=job_options,
            time_limit=time_limit,
        )
        job.provenance.update(
            {
                "arch": arch_name,
                "engine": job_engine,
                "options": canonical_options(job_options),
                "executor": self.executor,
            }
        )
        self._jobs[job.job_id] = job
        self._counters["submitted"] += 1
        self._engine_counter(job_engine, "submitted")
        if time_limit is not None:
            job.provenance["time_limit"] = time_limit
            job.deadline_handle = asyncio.get_running_loop().call_later(
                time_limit, self._expire_job, job
            )
        self._emit(job)

        # The store may do SQLite I/O (and wait on another writer's file
        # lock), so keep it off the event loop.  The coalescing check below
        # runs after this await without further suspension points, so two
        # concurrent identical submits still resolve to one primary job.
        cached = await asyncio.get_running_loop().run_in_executor(
            None, self.store.get, fingerprint
        )
        if cached is not None:
            self._counters["cache_hits"] += 1
            self._engine_counter(job_engine, "cache_hits")
            self._complete(job, cached, cache_hit=True, elapsed=0.0)
            return job.job_id

        primary = self._primary_by_fp.get(fingerprint)
        if primary is not None and primary.status in (QUEUED, RUNNING):
            self._counters["coalesced"] += 1
            job.provenance["coalesced_with"] = primary.job_id
            primary.followers.append(job)
            return job.job_id

        self._primary_by_fp[fingerprint] = job
        await self._queue.put(job)
        return job.job_id

    async def submit_many(
        self,
        circuits: Iterable[QuantumCircuit],
        *,
        arch: Optional[str] = None,
        engine: Optional[str] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> List[str]:
        """Submit a batch (routed per circuit when *arch* is omitted)."""
        return [
            await self.submit(circuit, arch=arch, engine=engine, options=options)
            for circuit in circuits
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(
                f"unknown job {job_id!r}", details={"job_id": job_id}
            )
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """JSON-ready status snapshot of one job."""
        return self._job(job_id).snapshot()

    def jobs(self) -> List[Dict[str, Any]]:
        """Status snapshots of every job, in submission order."""
        return [job.snapshot() for job in self._jobs.values()]

    async def result(self, job_id: str, timeout: Optional[float] = None) -> MappingResult:
        """Wait for a job and return its result.

        Raises:
            JobNotFoundError: Unknown job id.
            ServiceError: The job's structured failure, re-raised.
            asyncio.TimeoutError: *timeout* elapsed first.
        """
        job = self._job(job_id)
        await asyncio.wait_for(job.done_event.wait(), timeout)
        if job.error is not None:
            raise job.error
        assert job.result is not None
        return job.result

    # ------------------------------------------------------------------
    # Cancellation and deadlines
    # ------------------------------------------------------------------
    def cancel(self, job_id: str, reason: Optional[str] = None) -> Dict[str, Any]:
        """Cancel a job: interrupt its solvers, fail it with ``job-cancelled``.

        Queued jobs never start; running jobs are interrupted cooperatively
        at the solvers' next conflict boundary (engines without cooperative
        support finish their computation, but the job is failed immediately
        and the late result discarded).  Cancelling a terminal job is an
        idempotent no-op.  Returns the job's status snapshot.

        Raises:
            JobNotFoundError: Unknown job id.
        """
        job = self._job(job_id)
        if job.status in (DONE, FAILED):
            return job.snapshot()
        job.cancel_requested = True
        job.provenance["cancelled"] = True
        job.control.cancel()
        self._fail(
            job,
            JobCancelledError(
                reason or "job cancelled by client request",
                details={"job_id": job.job_id},
            ),
        )
        return job.snapshot()

    def _expire_job(self, job: Job) -> None:
        """Deadline watchdog callback: enforce the job's ``time_limit``."""
        if job.status in (DONE, FAILED):
            return
        job.provenance["deadline_enforced"] = True
        job.control.cancel()
        self._fail(
            job,
            DeadlineExceededError(
                f"time_limit of {job.time_limit}s elapsed before a result "
                "was found",
                details={"job_id": job.job_id, "time_limit": job.time_limit},
            ),
        )

    def stats(self) -> Dict[str, Any]:
        """Service-level counters, load gauges and latency quantiles.

        Besides the lifetime counters (submitted/cache_hits/coalesced/
        solved/failed) this reports the live load state — ``queue_depth``
        (jobs accepted but not yet dispatched) and ``in_flight`` (jobs
        currently solving) — per-engine counter breakdowns, and the rolling
        p50/p99 latency over the last :data:`LATENCY_WINDOW` completions.
        """
        stats: Dict[str, Any] = dict(self._counters)
        stats["jobs_tracked"] = len(self._jobs)
        stats["queue_depth"] = self._queue.qsize() if self._queue is not None else 0
        stats["in_flight"] = self._in_flight
        stats["stopping"] = self._stopping
        stats["per_engine"] = {
            engine: dict(counters)
            for engine, counters in sorted(self._per_engine.items())
        }
        stats["latency"] = self._latency_summary()
        stats["devices"] = sorted(self.couplings)
        stats["artifact_seeding"] = dict(self._artifact_totals)
        stats["store"] = self.store.stats()
        return stats

    def _latency_summary(self) -> Dict[str, Any]:
        """Rolling quantiles over recent job completions (terminal states)."""
        values = sorted(self._latencies)
        summary: Dict[str, Any] = {
            "window": LATENCY_WINDOW,
            "count": len(values),
        }
        if not values:
            return summary
        # Nearest-rank quantiles: exact observed values, no interpolation.
        def rank(q: float) -> float:
            index = max(0, min(len(values) - 1, int(q * len(values) + 0.5) - 1))
            return values[index]

        summary["p50_seconds"] = rank(0.50)
        summary["p99_seconds"] = rank(0.99)
        summary["mean_seconds"] = sum(values) / len(values)
        summary["max_seconds"] = values[-1]
        return summary

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------
    def subscribe(self) -> "asyncio.Queue":
        """Subscribe to job state transitions.

        Returns an :class:`asyncio.Queue` that receives one JSON-ready dict
        per transition (``queued`` → ``running`` → ``done``/``failed``,
        including instant completions from cache hits and coalescing).  A
        subscriber that stops consuming loses the *oldest* events once its
        queue holds :data:`SUBSCRIBER_QUEUE_SIZE` of them; the service never
        blocks on a slow listener.  Pass the queue to :meth:`unsubscribe`
        when done.
        """
        queue: "asyncio.Queue" = asyncio.Queue(maxsize=SUBSCRIBER_QUEUE_SIZE)
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue") -> None:
        """Detach a queue returned by :meth:`subscribe` (idempotent)."""
        self._subscribers.discard(queue)

    def _emit(self, job: Job) -> None:
        """Push one state-transition event to every subscriber."""
        if not self._subscribers:
            return
        event = {
            "seq": next(self._event_seq),
            "job_id": job.job_id,
            "status": job.status,
            "fingerprint": job.fingerprint,
            "circuit_name": job.circuit.name,
            "arch": job.arch_name,
            "engine": job.engine,
        }
        if job.result is not None:
            event["added_cost"] = job.result.added_cost
            event["optimal"] = job.result.optimal
            event["cache_hit"] = bool(job.provenance.get("cache_hit"))
        if job.error is not None:
            event["error_code"] = job.error.code
        for queue in list(self._subscribers):
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - racy corner
                    pass
                queue.put_nowait(event)

    def _engine_counter(self, engine: str, key: str) -> None:
        counters = self._per_engine.setdefault(
            engine, {"submitted": 0, "cache_hits": 0, "solved": 0, "failed": 0}
        )
        counters[key] += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            batch = [job]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for group in self._group(batch):
                task = asyncio.create_task(self._run_group(*group))
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    def _group(self, batch: List[Job]):
        """Group drained jobs by (architecture, engine, options)."""
        groups: Dict[Tuple[Any, str, str], List[Job]] = {}
        for job in batch:
            coupling = self.couplings[job.arch_name]
            key = (
                coupling.canonical_key(),
                job.engine,
                canonical_options(job.options),
            )
            groups.setdefault(key, []).append(job)
        return [
            (self.couplings[jobs[0].arch_name], jobs) for jobs in groups.values()
        ]

    async def _run_group(self, coupling: CouplingMap, jobs: List[Job]) -> None:
        """Safety wrapper: whatever happens, every job reaches a final state.

        A job left ``running`` with its event unset would hang ``result()``
        callers forever, and ``stop(drain=True)`` swallows task exceptions —
        so any unexpected error is converted into per-job failures here.
        """
        try:
            await self._map_group(coupling, jobs)
        except Exception as error:  # noqa: BLE001 - converted to job failures
            failure = MappingFailedError(
                f"internal service error: {error}",
                details={"error_type": type(error).__name__},
            )
            for job in jobs:
                if job.status in (QUEUED, RUNNING):
                    self._fail(job, failure)

    async def _map_group(self, coupling: CouplingMap, jobs: List[Job]) -> None:
        # A job may already be terminal by dispatch time (cancelled, or its
        # deadline fired while it sat in the queue) — never (re)start those.
        jobs = [job for job in jobs if job.status == QUEUED]
        if not jobs:
            return
        for job in jobs:
            job.status = RUNNING
            self._in_flight += 1
            job.provenance["batch_size"] = len(jobs)
            self._emit(job)
        pipeline = MappingPipeline(
            coupling,
            engine=jobs[0].engine,
            engine_options=jobs[0].options,
            workers=self.workers,
            executor=self.executor,
            bound_providers=self.bound_providers or None,
        )
        loop = asyncio.get_running_loop()
        start = time.monotonic()
        try:
            items = await loop.run_in_executor(
                None,
                partial(
                    pipeline.map_many,
                    [job.circuit for job in jobs],
                    workers=self.workers,
                    controls=[job.control for job in jobs],
                ),
            )
        except Exception as error:  # noqa: BLE001 - surfaced per job
            failure = MappingFailedError(
                f"batch mapping failed: {error}",
                details={"error_type": type(error).__name__},
            )
            for job in jobs:
                self._fail(job, failure)
            return
        elapsed = time.monotonic() - start
        for job, item in zip(jobs, items):
            if job.status in (DONE, FAILED):
                # Cancelled or deadline-failed while solving: the batch
                # item (however it ended) is no longer this job's answer.
                continue
            if item.ok:
                try:
                    await loop.run_in_executor(
                        None,
                        partial(
                            self.store.put,
                            job.fingerprint,
                            item.result,
                            circuit_fp=job.circuit.fingerprint(),
                            arch_fp=coupling_fingerprint(coupling),
                        ),
                    )
                except InvalidResultError as error:
                    self._fail(job, error)
                    continue
                except ServiceError as error:
                    # A failing store (read-only disk, lock timeout) must not
                    # fail a successfully solved job — the result is simply
                    # not cached this time.
                    job.provenance["store_error"] = error.to_dict()
                if getattr(self.store, "degraded", False):
                    # The store's circuit breaker is open: the result was
                    # kept in memory only.  Say so truthfully instead of
                    # implying durable caching.
                    job.provenance["store_degraded"] = True
                self._counters["solved"] += 1
                statistics = item.result.statistics
                if "external_bound" in statistics:
                    job.provenance["seeded_bound"] = statistics["external_bound"]
                    job.provenance["bound_provider"] = statistics.get(
                        "bound_provider"
                    )
                if "seeded_model_objective" in statistics:
                    job.provenance["seeded_model"] = statistics[
                        "seeded_model_objective"
                    ]
                    job.provenance["model_provider"] = statistics.get(
                        "model_provider"
                    )
                    job.provenance["seeded_model_source"] = statistics.get(
                        "seeded_model_source"
                    )
                if "seed_notes" in statistics:
                    job.provenance["seed_notes"] = statistics["seed_notes"]
                if statistics.get("artifact_seeding"):
                    job.provenance["artifact_provider"] = statistics.get(
                        "artifact_provider"
                    )
                    for key in self._artifact_totals:
                        count = int(statistics.get(key, 0))
                        job.provenance[key] = count
                        self._artifact_totals[key] += count
                    if "artifact_notes" in statistics:
                        job.provenance["artifact_notes"] = statistics[
                            "artifact_notes"
                        ]
                self._complete(
                    job, item.result, cache_hit=False,
                    elapsed=item.elapsed_seconds or elapsed,
                )
            else:
                self._fail(
                    job,
                    MappingFailedError(
                        item.error or "mapping failed",
                        details={
                            "error_type": item.error_type,
                            "circuit": job.circuit.name,
                        },
                    ),
                )

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------
    def _complete(
        self, job: Job, result: MappingResult, *, cache_hit: bool, elapsed: float
    ) -> None:
        if job.status in (DONE, FAILED):
            # Already terminal (cancelled / deadline-failed) — a late batch
            # result must not resurrect the job or double-count gauges.
            return
        if job.status == RUNNING:
            self._in_flight -= 1
        if not cache_hit and job.status == RUNNING:
            self._engine_counter(job.engine, "solved")
        job.result = result
        job.status = DONE
        job.provenance.update(
            {"cache_hit": cache_hit, "elapsed_seconds": elapsed}
        )
        self._latencies.append(elapsed)
        self._settle(job)
        job.done_event.set()
        self._emit(job)
        self._release(job)
        for follower in job.followers:
            follower.provenance["batch_size"] = job.provenance.get("batch_size", 1)
            # A follower was deduplicated in flight, not served from the
            # store — keep the two categories distinguishable per job.
            follower.provenance["coalesced"] = True
            self._complete(follower, result, cache_hit=False, elapsed=elapsed)
        job.followers = []

    def _fail(self, job: Job, error: ServiceError) -> None:
        if job.status in (DONE, FAILED):
            return
        if job.status == RUNNING:
            self._in_flight -= 1
        job.error = error
        job.status = FAILED
        job.provenance["cache_hit"] = False
        self._settle(job)
        job.done_event.set()
        self._counters["failed"] += 1
        self._engine_counter(job.engine, "failed")
        self._emit(job)
        self._release(job)
        for follower in job.followers:
            self._fail(follower, error)
        job.followers = []

    def _settle(self, job: Job) -> None:
        """Terminal-state housekeeping shared by completion and failure.

        Disarms the deadline watchdog and drops the control token's solver
        references so solver arenas never outlive their job's run.
        """
        if job.deadline_handle is not None:
            job.deadline_handle.cancel()
            job.deadline_handle = None
        job.control.release()

    def _release(self, job: Job) -> None:
        if self._primary_by_fp.get(job.fingerprint) is job:
            del self._primary_by_fp[job.fingerprint]


__all__ = [
    "Job",
    "MappingService",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "LATENCY_WINDOW",
    "SUBSCRIBER_QUEUE_SIZE",
]
