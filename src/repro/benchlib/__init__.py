"""Benchmark circuits and the paper's reported evaluation data.

The paper evaluates on 25 small RevLib / IBM-challenge circuits (Table 1).
The original ``.qasm`` files cannot be redistributed here, so
:mod:`repro.benchlib.generators` synthesises, for every Table-1 entry, a
deterministic circuit with the same name, qubit count, single-qubit-gate
count and CNOT count (see DESIGN.md for the substitution argument), and
:mod:`repro.benchlib.table1` records the paper's reported numbers so the
benchmark harness can print paper-vs-measured comparisons.
"""

from repro.benchlib.table1 import (
    BenchmarkRecord,
    TABLE1_RECORDS,
    get_record,
    benchmark_names,
    benchmark_records,
)
from repro.benchlib.generators import (
    benchmark_circuit,
    random_cnot_circuit,
    random_clifford_t_circuit,
    layered_cnot_circuit,
)
from repro.benchlib.paper_example import (
    paper_example_circuit,
    paper_example_cnot_skeleton,
)

__all__ = [
    "BenchmarkRecord",
    "TABLE1_RECORDS",
    "get_record",
    "benchmark_names",
    "benchmark_records",
    "benchmark_circuit",
    "random_cnot_circuit",
    "random_clifford_t_circuit",
    "layered_cnot_circuit",
    "paper_example_circuit",
    "paper_example_cnot_skeleton",
]
