"""The paper's Table 1: benchmark metadata and reported results.

Every record stores the circuit statistics (name, logical qubits, gate
counts) and the numbers the paper reports for it:

* ``paper_minimal_cost`` — the ``c_min`` column (minimal total gate count),
* ``paper_subset_cost`` — the Section 4.1 "Perf. Opt." column,
* ``paper_disjoint_cost`` / ``paper_odd_cost`` / ``paper_triangle_cost`` —
  the Section 4.2 strategy columns,
* ``paper_disjoint_spots`` / ``paper_odd_spots`` / ``paper_triangle_spots`` —
  the corresponding ``|G'|`` columns,
* ``paper_ibm_cost`` — the Qiskit 0.4.15 heuristic column.

These reported values are used by the benchmark harness to print
paper-vs-measured rows and by EXPERIMENTS.md.  They are *not* used by any
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class BenchmarkRecord:
    """One row of Table 1."""

    name: str
    num_qubits: int
    single_qubit_gates: int
    cnot_gates: int
    paper_minimal_cost: int
    paper_minimal_runtime: float
    paper_subset_cost: int
    paper_disjoint_spots: int
    paper_disjoint_cost: int
    paper_odd_spots: int
    paper_odd_cost: int
    paper_triangle_spots: int
    paper_triangle_cost: int
    paper_ibm_cost: int

    @property
    def original_cost(self) -> int:
        """Gate count before mapping (single-qubit gates plus CNOTs)."""
        return self.single_qubit_gates + self.cnot_gates

    @property
    def paper_minimal_added(self) -> int:
        """The paper's minimal added cost ``F`` = ``c_min`` minus the original cost."""
        return self.paper_minimal_cost - self.original_cost

    @property
    def paper_ibm_added(self) -> int:
        """Added cost of the IBM heuristic result reported in the paper."""
        return self.paper_ibm_cost - self.original_cost


# Columns: name, n, 1q gates, CNOTs, c_min, t_min, c_4.1,
#          |G'|_disjoint, c_disjoint, |G'|_odd, c_odd,
#          |G'|_triangle, c_triangle, c_IBM
_RAW_TABLE1 = [
    ("3_17_13",      3, 19, 17,  59, 29.0,  59, 17,  59,  9,  60,  1,  60,  80),
    ("ex-1_166",     3, 10,  9,  31,  5.0,  31,  9,  31,  5,  31,  1,  31,  39),
    ("ham3_102",     3,  9, 11,  36, 10.0,  36, 11,  36,  6,  36,  1,  36,  48),
    ("miller_11",    3, 27, 23,  82, 231.0, 82, 23,  82, 12,  82,  1,  82,  82),
    ("4gt11_84",     4,  9,  9,  34,  7.0,  34,  9,  34,  5,  34,  2,  34,  37),
    ("rd32-v0_66",   4, 18, 16,  63, 281.0, 63, 16,  63,  8,  63,  2,  72, 101),
    ("rd32-v1_68",   4, 20, 16,  65, 276.0, 65, 16,  65,  8,  65,  2,  74,  99),
    ("4gt11_82",     5,  9, 18,  62, 133.0, 62, 18,  62,  9,  62,  5,  62,  77),
    ("4gt11_83",     5,  9, 14,  49, 17.0,  49, 14,  49,  7,  50,  3,  50,  65),
    ("4gt13_92",     5, 36, 30, 109, 528.0, 109, 29, 109, 15, 110,  9, 110, 126),
    ("4mod5-v0_19",  5, 19, 16,  64, 256.0,  64, 16,  64,  8,  68,  3,  69, 109),
    ("4mod5-v0_20",  5, 10, 10,  35, 10.0,   35, 10,  35,  5,  35,  3,  35,  64),
    ("4mod5-v1_22",  5, 10, 11,  40,  7.0,   40, 10,  40,  6,  40,  3,  43,  52),
    ("4mod5-v1_24",  5, 20, 16,  63, 54.0,   63, 16,  63,  8,  63,  3,  63,  98),
    ("alu-v0_27",    5, 19, 17,  63, 74.0,   63, 16,  63,  9,  63,  3,  67, 101),
    ("alu-v1_28",    5, 19, 18,  64, 94.0,   64, 17,  64,  9,  67,  3,  68, 123),
    ("alu-v1_29",    5, 20, 17,  64, 351.0,  64, 16,  64,  9,  64,  3,  68, 104),
    ("alu-v2_33",    5, 20, 17,  64, 42.0,   64, 17,  64,  9,  64,  4,  64,  99),
    ("alu-v3_34",    5, 28, 24,  90, 719.0,  90, 24,  90, 12,  91,  4,  91, 178),
    ("alu-v3_35",    5, 19, 18,  64, 103.0,  64, 17,  64,  9,  64,  3,  68, 121),
    ("alu-v4_37",    5, 19, 18,  64, 119.0,  64, 17,  64,  9,  64,  3,  68, 110),
    ("mod5d1_63",    5,  9, 13,  48, 14.0,   48, 11,  48,  7,  48,  5,  48,  98),
    ("mod5mils_65",  5, 19, 16,  64, 96.0,   64, 16,  64,  8,  65,  3,  65, 108),
    ("qe_qft_4",     5, 44, 27,  94, 136.0,  94, 19,  94, 14,  94, 16,  94, 115),
    ("qe_qft_5",     5, 69, 38, 135, 401.0, 135, 26, 135, 19, 139, 24, 145, 163),
]


TABLE1_RECORDS: List[BenchmarkRecord] = [
    BenchmarkRecord(
        name=row[0],
        num_qubits=row[1],
        single_qubit_gates=row[2],
        cnot_gates=row[3],
        paper_minimal_cost=row[4],
        paper_minimal_runtime=row[5],
        paper_subset_cost=row[6],
        paper_disjoint_spots=row[7],
        paper_disjoint_cost=row[8],
        paper_odd_spots=row[9],
        paper_odd_cost=row[10],
        paper_triangle_spots=row[11],
        paper_triangle_cost=row[12],
        paper_ibm_cost=row[13],
    )
    for row in _RAW_TABLE1
]

_BY_NAME: Dict[str, BenchmarkRecord] = {record.name: record for record in TABLE1_RECORDS}


def benchmark_names(max_qubits: Optional[int] = None) -> List[str]:
    """Names of all Table-1 benchmarks in paper order.

    Args:
        max_qubits: When given, only benchmarks with at most this many
            logical qubits are listed (useful for selecting the instances
            that are tractable for the pure-Python SAT engine, e.g. in the
            batch-pipeline benchmarks and the CI smoke jobs).
    """
    return [record.name for record in benchmark_records(max_qubits)]


def benchmark_records(max_qubits: Optional[int] = None) -> List[BenchmarkRecord]:
    """Table-1 records in paper order, optionally filtered by qubit count."""
    if max_qubits is None:
        return list(TABLE1_RECORDS)
    return [record for record in TABLE1_RECORDS if record.num_qubits <= max_qubits]


def get_record(name: str) -> BenchmarkRecord:
    """Look up a Table-1 record by benchmark name.

    Raises:
        KeyError: If the name is unknown.
    """
    if name not in _BY_NAME:
        raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}")
    return _BY_NAME[name]


def paper_average_ibm_overhead_total() -> float:
    """The paper's headline: average % by which IBM's total gate count exceeds c_min."""
    ratios = [
        (record.paper_ibm_cost - record.paper_minimal_cost) / record.paper_minimal_cost
        for record in TABLE1_RECORDS
    ]
    return 100.0 * sum(ratios) / len(ratios)


def paper_average_ibm_overhead_added() -> float:
    """Average % by which IBM's *added* cost exceeds the minimal added cost ``F``.

    Benchmarks whose minimal added cost is zero are skipped (the ratio is
    undefined); the paper reports this average as being above 100%.
    """
    ratios = []
    for record in TABLE1_RECORDS:
        minimal_added = record.paper_minimal_added
        if minimal_added <= 0:
            continue
        ratios.append((record.paper_ibm_added - minimal_added) / minimal_added)
    return 100.0 * sum(ratios) / len(ratios)


__all__ = [
    "BenchmarkRecord",
    "TABLE1_RECORDS",
    "benchmark_names",
    "benchmark_records",
    "get_record",
    "paper_average_ibm_overhead_total",
    "paper_average_ibm_overhead_added",
]
