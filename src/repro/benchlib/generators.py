"""Benchmark circuit generators.

The RevLib ``.qasm`` files used in the paper are not redistributable in this
environment, so :func:`benchmark_circuit` synthesises, for every Table-1
entry, a deterministic stand-in circuit with the same number of logical
qubits, single-qubit gates and CNOT gates.  The CNOT skeleton is generated
with locality statistics typical of reversible netlists (a small working set
of frequently interacting qubit pairs rather than uniformly random pairs),
which is the property the mapping overhead actually depends on.

General-purpose random generators (:func:`random_cnot_circuit`,
:func:`random_clifford_t_circuit`, :func:`layered_cnot_circuit`) are also
provided for tests and extension experiments.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.benchlib.table1 import BenchmarkRecord, get_record
from repro.circuit.circuit import QuantumCircuit

_SINGLE_QUBIT_POOL = ("t", "tdg", "h", "s", "sdg", "x", "z")


def _stable_seed(name: str) -> int:
    """Deterministic seed derived from a benchmark name (independent of PYTHONHASHSEED)."""
    value = 0
    for character in name:
        value = (value * 131 + ord(character)) % (2 ** 31 - 1)
    return value


def random_cnot_circuit(
    num_qubits: int,
    num_cnots: int,
    seed: Optional[int] = None,
    locality: float = 0.7,
) -> QuantumCircuit:
    """A random circuit consisting only of CNOT gates.

    Args:
        num_qubits: Number of logical qubits (at least 2).
        num_cnots: Number of CNOT gates.
        seed: Random seed.
        locality: Probability of reusing one qubit of the previous CNOT,
            which mimics the chained structure of reversible netlists.

    Returns:
        The generated circuit.
    """
    if num_qubits < 2:
        raise ValueError("a CNOT circuit needs at least two qubits")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_cnot_{num_qubits}x{num_cnots}")
    previous: Optional[Tuple[int, int]] = None
    for _ in range(num_cnots):
        if previous is not None and rng.random() < locality:
            shared = rng.choice(previous)
            other = rng.randrange(num_qubits)
            while other == shared:
                other = rng.randrange(num_qubits)
            control, target = (shared, other) if rng.random() < 0.5 else (other, shared)
        else:
            control = rng.randrange(num_qubits)
            target = rng.randrange(num_qubits)
            while target == control:
                target = rng.randrange(num_qubits)
        circuit.cx(control, target)
        previous = (control, target)
    return circuit


def random_clifford_t_circuit(
    num_qubits: int,
    num_single: int,
    num_cnots: int,
    seed: Optional[int] = None,
    locality: float = 0.7,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """A random circuit with the requested single-qubit and CNOT gate counts.

    The CNOT skeleton is produced by :func:`random_cnot_circuit`; the
    single-qubit gates (drawn from the Clifford+T pool used by reversible
    benchmarks) are interleaved at random positions.
    """
    skeleton = random_cnot_circuit(num_qubits, num_cnots, seed=seed, locality=locality)
    rng = random.Random(None if seed is None else seed + 1)
    circuit = QuantumCircuit(
        num_qubits, name=name or f"random_{num_qubits}q_{num_single}s_{num_cnots}c"
    )
    # Decide after which CNOT index each single-qubit gate is placed
    # (index -1 places it before the first CNOT).
    placements = sorted(rng.randrange(-1, num_cnots) for _ in range(num_single))
    placement_index = 0
    cnot_gates = list(skeleton.gates)

    def emit_singles(after_cnot: int) -> None:
        nonlocal placement_index
        while placement_index < len(placements) and placements[placement_index] <= after_cnot:
            gate_name = rng.choice(_SINGLE_QUBIT_POOL)
            qubit = rng.randrange(num_qubits)
            getattr(circuit, gate_name)(qubit)
            placement_index += 1

    emit_singles(-1)
    for index, gate in enumerate(cnot_gates):
        circuit.cx(gate.control, gate.target)
        emit_singles(index)
    return circuit


def layered_cnot_circuit(
    num_qubits: int,
    num_layers: int,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """A circuit of *num_layers* layers of disjoint random CNOTs.

    Useful for exercising the disjoint-qubits strategy: each layer pairs up
    as many qubits as possible, so consecutive gates inside a layer act on
    disjoint qubit sets.
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"layered_{num_qubits}x{num_layers}")
    for _ in range(num_layers):
        qubits = list(range(num_qubits))
        rng.shuffle(qubits)
        for first, second in zip(qubits[0::2], qubits[1::2]):
            circuit.cx(first, second)
    return circuit


def benchmark_circuit(name: str) -> QuantumCircuit:
    """Deterministic stand-in circuit for the Table-1 benchmark *name*.

    The returned circuit has exactly the qubit count, single-qubit-gate count
    and CNOT count the paper reports for that benchmark; its random seed is
    derived from the name so repeated calls return identical circuits.
    """
    record = get_record(name)
    return circuit_for_record(record)


def circuit_for_record(record: BenchmarkRecord) -> QuantumCircuit:
    """Stand-in circuit for an arbitrary :class:`BenchmarkRecord`."""
    circuit = random_clifford_t_circuit(
        record.num_qubits,
        record.single_qubit_gates,
        record.cnot_gates,
        seed=_stable_seed(record.name),
        name=record.name,
    )
    return circuit


__all__ = [
    "random_cnot_circuit",
    "random_clifford_t_circuit",
    "layered_cnot_circuit",
    "benchmark_circuit",
    "circuit_for_record",
]
