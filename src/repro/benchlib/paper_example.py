"""The paper's running example (Fig. 1 / Fig. 4 / Fig. 5).

Figure 1a shows a 4-qubit circuit with 8 gates (3 single-qubit gates and 5
CNOTs); Fig. 1b shows the same circuit with single-qubit gates removed.
Example 7 / Fig. 5 states that the minimal mapping of this circuit to IBM QX4
adds SWAP/H operations of total cost ``F = 4`` (a single direction reversal,
no SWAP).

The published figure encodes the CNOT targets graphically (as circled-plus
symbols) which cannot be recovered from the paper's text alone, so the gate
list below is *a* reading of Fig. 1 that is consistent with everything the
text states: 4 logical qubits, 5 CNOT gates, 3 single-qubit gates, gates g1
and g2 acting on disjoint qubit pairs (Example 10), and a minimal mapping
cost of exactly ``F = 4`` on IBM QX4 (Example 7).  Qubit ``q_i`` of the paper
is logical qubit ``i - 1``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuit.circuit import QuantumCircuit

#: The CNOT skeleton of Fig. 1b as (control, target) logical pairs
#: (0-based; the paper's q1..q4 are 0..3).
PAPER_EXAMPLE_CNOTS: List[Tuple[int, int]] = [
    (2, 3),  # g1: CNOT(q3, q4)
    (0, 1),  # g2: CNOT(q1, q2)
    (1, 2),  # g3: CNOT(q2, q3)
    (2, 1),  # g4: CNOT(q3, q2)
    (0, 1),  # g5: CNOT(q1, q2)
]

#: Minimal added cost of mapping the example to IBM QX4 (Example 7).
PAPER_EXAMPLE_MINIMAL_COST = 4


def paper_example_cnot_skeleton() -> QuantumCircuit:
    """The 5-CNOT skeleton of Fig. 1b."""
    circuit = QuantumCircuit(4, name="paper_example_cnots")
    for control, target in PAPER_EXAMPLE_CNOTS:
        circuit.cx(control, target)
    return circuit


def paper_example_circuit() -> QuantumCircuit:
    """The full 8-gate circuit of Fig. 1a (including single-qubit gates)."""
    circuit = QuantumCircuit(4, name="paper_example")
    circuit.h(2)          # H on q3
    circuit.cx(2, 3)      # g1: CNOT(q3, q4)
    circuit.cx(0, 1)      # g2: CNOT(q1, q2)
    circuit.t(0)          # T on q1
    circuit.h(1)          # H on q2
    circuit.cx(1, 2)      # g3: CNOT(q2, q3)
    circuit.cx(2, 1)      # g4: CNOT(q3, q2)
    circuit.cx(0, 1)      # g5: CNOT(q1, q2)
    return circuit


__all__ = [
    "PAPER_EXAMPLE_CNOTS",
    "PAPER_EXAMPLE_MINIMAL_COST",
    "paper_example_cnot_skeleton",
    "paper_example_circuit",
]
