"""Upper-bound providers for seeding exact searches.

The SAT optimiser descends much faster when it starts from a known valid
objective bound (see ``OptimizingSolver.minimize(upper_bound=...)``).  A
:class:`BoundProvider` is any source of such a bound:

* :class:`HeuristicBoundProvider` — run a cheap heuristic engine and use its
  added cost (the classic portfolio seed),
* :class:`StoreBoundProvider` — look up previously solved results for the
  same circuit in a :class:`~repro.service.store.ResultStore`, on the same
  architecture **or on a known sub-architecture**: a mapping that complies
  with a subset of the device's edges also complies with the device, so its
  cost is a valid upper bound,
* :class:`StaticBoundProvider` — a caller-supplied bound (CLI flag, API).

A :class:`BoundProviderChain` queries every provider and keeps the tightest
bound.  Every bound produced here is the cost of some *valid mapping on the
full device*, so it is an upper bound on the true minimum — safe to assert
exactly where ``mapper.accepts_external_bound`` is true (see
:meth:`repro.exact.sat_mapper.SATMapper.accepts_external_bound` for why
restricted search spaces opt out).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit


class BoundProvider(Protocol):
    """Structural interface of one upper-bound source."""

    name: str

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        """A valid inclusive objective bound, or ``None`` when unknown."""
        ...


class StaticBoundProvider:
    """A fixed caller-supplied bound (e.g. from a ``--upper-bound`` flag)."""

    name = "static"

    def __init__(self, bound: int):
        if bound < 0:
            raise ValueError("upper bound must be non-negative")
        self.bound = int(bound)

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        return self.bound


class HeuristicBoundProvider:
    """Bound from a cheap heuristic engine's added cost.

    Args:
        engine: Registry name of the heuristic engine (default ``"sabre"``).
        options: Extra constructor options for the heuristic.
    """

    name = "heuristic"

    def __init__(self, engine: str = "sabre", options: Optional[Dict[str, Any]] = None):
        self.engine = engine
        self.options = dict(options or {})

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        from repro.pipeline.registry import get_mapper

        try:
            result = get_mapper(self.engine, coupling, **self.options).map(circuit)
        except Exception:  # noqa: BLE001 - a failing heuristic just yields no bound
            return None
        return result.added_cost


def is_sub_architecture(candidate: CouplingMap, device: CouplingMap) -> bool:
    """True when *candidate* is a sub-architecture of *device*.

    Sub-architecture means: no more qubits, and every directed coupling of
    *candidate* is also a coupling of *device* (under identity labelling).
    A mapping solved on the candidate then runs unchanged on the device,
    so its cost is a valid device-level upper bound.
    """
    return (
        candidate.num_qubits <= device.num_qubits
        and candidate.edges <= device.edges
    )


class StoreBoundProvider:
    """Bound from previously solved results in a fingerprint-keyed store.

    The store is queried by ``(circuit fingerprint, architecture
    fingerprint)`` — engine and options deliberately excluded, so a result
    solved by *any* engine (heuristic, DP, an earlier SAT run) warm-starts
    the next exact solve of the same circuit.  Besides the target
    architecture itself, every registered coupling map that is a
    sub-architecture of the target is consulted.

    Args:
        store: A :class:`~repro.service.store.ResultStore` (anything with a
            ``best_added_cost(circuit_fp, arch_fp)`` method works).
        couplings: Known coupling maps to consider for sub-architecture
            lookups (e.g. every device a service fronts).
    """

    name = "store"

    def __init__(
        self,
        store,
        couplings: Optional[Iterable[CouplingMap]] = None,
    ):
        self.store = store
        self.couplings: List[CouplingMap] = list(couplings or [])

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        from repro.service.fingerprint import coupling_fingerprint

        circuit_fp = circuit.fingerprint()
        arch_fps = [coupling_fingerprint(coupling)]
        seen = set(arch_fps)
        for candidate in self.couplings:
            if not is_sub_architecture(candidate, coupling):
                continue
            fingerprint = coupling_fingerprint(candidate)
            if fingerprint not in seen:
                seen.add(fingerprint)
                arch_fps.append(fingerprint)
        best: Optional[int] = None
        for arch_fp in arch_fps:
            bound = self.store.best_added_cost(circuit_fp, arch_fp)
            if bound is not None and (best is None or bound < best):
                best = bound
        return best


class BoundProviderChain:
    """Query several providers and keep the tightest valid bound.

    Example:
        >>> chain = BoundProviderChain([
        ...     StoreBoundProvider(store, couplings=devices),
        ...     HeuristicBoundProvider(),
        ... ])
        >>> bound, provider = chain.resolve(circuit, coupling)
    """

    def __init__(self, providers: Sequence[BoundProvider]):
        self.providers: List[BoundProvider] = list(providers)

    def resolve(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Tuple[Optional[int], Optional[str]]:
        """The minimum over all providers and the winning provider's name."""
        best: Optional[int] = None
        source: Optional[str] = None
        for provider in self.providers:
            bound = provider.upper_bound(circuit, coupling)
            if bound is None:
                continue
            if best is None or bound < best:
                best = bound
                source = getattr(provider, "name", type(provider).__name__)
        return best, source


__all__ = [
    "BoundProvider",
    "BoundProviderChain",
    "HeuristicBoundProvider",
    "StaticBoundProvider",
    "StoreBoundProvider",
    "is_sub_architecture",
]
