"""Upper-bound providers for seeding exact searches.

The SAT optimiser descends much faster when it starts from a known valid
objective bound (see ``OptimizingSolver.minimize(upper_bound=...)``).  A
:class:`BoundProvider` is any source of such a bound:

* :class:`HeuristicBoundProvider` — run a cheap heuristic engine and use its
  added cost (the classic portfolio seed),
* :class:`StoreBoundProvider` — look up previously solved results for the
  same circuit in a :class:`~repro.service.store.ResultStore`, on the same
  architecture **or on a known sub-architecture**: a mapping that complies
  with a subset of the device's edges also complies with the device, so its
  cost is a valid upper bound,
* :class:`StaticBoundProvider` — a caller-supplied bound (CLI flag, API),
* :class:`ModelProvider` — the *schedule* of the cheapest stored result,
  replayed as an initial incumbent model: the exact solver then starts with
  a feasible solution in hand and only has to prove (or beat) it, instead
  of rediscovering it probe by probe,
* :class:`ClauseProvider` — a handle into the store's **solve-artifact
  table** (learned clauses, proven family lower bounds, best schedules,
  keyed by encoding skeleton rather than circuit fingerprint), so even a
  never-seen circuit warm-starts from structurally identical past jobs.

A :class:`BoundProviderChain` queries every provider and keeps the tightest
bound (:meth:`~BoundProviderChain.resolve`); the richer
:meth:`~BoundProviderChain.resolve_seed` additionally collects a model seed
from providers that offer one.  Every bound produced here is the cost of
some *valid mapping on the full device*, so it is an upper bound on the
true minimum — safe to assert exactly where
``mapper.accepts_external_bound`` is true (see
:meth:`repro.exact.sat_mapper.SATMapper.accepts_external_bound` for why
restricted search spaces opt out).  Model seeds are stricter still: a
cached schedule is only replayed after re-validation against the *current*
coupling map — a sub-architecture hit whose schedule does not transfer
degrades to bound-only seeding with a provenance note instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit


class BoundProvider(Protocol):
    """Structural interface of one upper-bound source."""

    name: str

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        """A valid inclusive objective bound, or ``None`` when unknown."""
        ...


class StaticBoundProvider:
    """A fixed caller-supplied bound (e.g. from a ``--upper-bound`` flag)."""

    name = "static"

    def __init__(self, bound: int):
        if bound < 0:
            raise ValueError("upper bound must be non-negative")
        self.bound = int(bound)

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        return self.bound


class HeuristicBoundProvider:
    """Bound from a cheap heuristic engine's added cost.

    Args:
        engine: Registry name of the heuristic engine (default ``"sabre"``).
        options: Extra constructor options for the heuristic.
    """

    name = "heuristic"

    def __init__(self, engine: str = "sabre", options: Optional[Dict[str, Any]] = None):
        self.engine = engine
        self.options = dict(options or {})

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        from repro.pipeline.registry import get_mapper

        try:
            result = get_mapper(self.engine, coupling, **self.options).map(circuit)
        except Exception:  # noqa: BLE001 - a failing heuristic just yields no bound
            return None
        return result.added_cost


def is_sub_architecture(candidate: CouplingMap, device: CouplingMap) -> bool:
    """True when *candidate* is a sub-architecture of *device*.

    Sub-architecture means: no more qubits, and every directed coupling of
    *candidate* is also a coupling of *device* (under identity labelling).
    A mapping solved on the candidate then runs unchanged on the device,
    so its cost is a valid device-level upper bound.
    """
    return (
        candidate.num_qubits <= device.num_qubits
        and candidate.edges <= device.edges
    )


class StoreBoundProvider:
    """Bound from previously solved results in a fingerprint-keyed store.

    The store is queried by ``(circuit fingerprint, architecture
    fingerprint)`` — engine and options deliberately excluded, so a result
    solved by *any* engine (heuristic, DP, an earlier SAT run) warm-starts
    the next exact solve of the same circuit.  Besides the target
    architecture itself, every registered coupling map that is a
    sub-architecture of the target is consulted.

    Args:
        store: A :class:`~repro.service.store.ResultStore` (anything with a
            ``best_added_cost(circuit_fp, arch_fp)`` method works).
        couplings: Known coupling maps to consider for sub-architecture
            lookups (e.g. every device a service fronts).
    """

    name = "store"

    def __init__(
        self,
        store,
        couplings: Optional[Iterable[CouplingMap]] = None,
    ):
        self.store = store
        self.couplings: List[CouplingMap] = list(couplings or [])

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        from repro.service.fingerprint import coupling_fingerprint

        circuit_fp = circuit.fingerprint()
        arch_fps = [coupling_fingerprint(coupling)]
        seen = set(arch_fps)
        for candidate in self.couplings:
            if not is_sub_architecture(candidate, coupling):
                continue
            fingerprint = coupling_fingerprint(candidate)
            if fingerprint not in seen:
                seen.add(fingerprint)
                arch_fps.append(fingerprint)
        best: Optional[int] = None
        for arch_fp in arch_fps:
            bound = self.store.best_added_cost(circuit_fp, arch_fp)
            if bound is not None and (best is None or bound < best):
                best = bound
        return best


@dataclass(frozen=True)
class ModelSeed:
    """A cached schedule replayable as an initial incumbent model.

    Attributes:
        mappings: One device-indexed logical-to-physical mapping per CNOT.
        objective: The schedule's added cost on the device it was validated
            against (a valid upper bound for the current solve).
        provider: Name of the provider that produced the seed.
        source_arch: ``"same"`` when the schedule was solved on the target
            architecture itself, ``"sub-architecture"`` otherwise.
    """

    mappings: Tuple[Tuple[int, ...], ...]
    objective: int
    provider: str = "model"
    source_arch: str = "same"


class ModelProvider(StoreBoundProvider):
    """Bound *and* schedule seeding from the result store.

    Extends :class:`StoreBoundProvider` (costs transfer exactly as there)
    with :meth:`model_seed`: the cheapest stored result whose schedule
    survives validation against the current coupling map is handed back as
    a replayable incumbent.  Validation matters because sub-architecture
    hits may not transfer as models even though their costs transfer as
    bounds (and a corrupted store row must never poison a solve): any
    schedule that fails the check degrades to bound-only seeding, with a
    note explaining why.
    """

    name = "model"

    def model_seed(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Tuple[Optional[ModelSeed], List[str]]:
        """The cheapest replayable stored schedule, plus provenance notes.

        Every consulted architecture — the target itself plus the
        registered sub-architectures (whose schedules run unchanged on the
        device under identity labelling *when* they validate) — contributes
        its cheapest stored schedule, and the cheapest validating one
        overall wins (ties broken towards the target architecture).  Every
        candidate whose schedule fails validation against the current
        coupling map contributes a note instead of a seed.

        Returns:
            ``(seed, notes)`` — *seed* is ``None`` when no stored schedule
            transfers; *notes* records each rejected candidate.
        """
        from repro.exact.result import schedule_is_valid
        from repro.service.fingerprint import coupling_fingerprint

        circuit_fp = circuit.fingerprint()
        target_fp = coupling_fingerprint(coupling)
        candidates: List[Tuple[str, str]] = [(target_fp, "same")]
        seen = {target_fp}
        for candidate in self.couplings:
            if not is_sub_architecture(candidate, coupling):
                continue
            fingerprint = coupling_fingerprint(candidate)
            if fingerprint not in seen:
                seen.add(fingerprint)
                candidates.append((fingerprint, "sub-architecture"))
        notes: List[str] = []
        best: Optional[ModelSeed] = None
        for arch_fp, kind in candidates:
            result = self.store.best_result(circuit_fp, arch_fp)
            if result is None:
                continue
            if best is not None and best.objective <= result.added_cost:
                continue
            mappings = tuple(tuple(m) for m in result.schedule.mappings)
            if not mappings:
                continue
            if schedule_is_valid(circuit, mappings, coupling):
                best = ModelSeed(
                    mappings=mappings,
                    objective=result.added_cost,
                    provider=self.name,
                    source_arch=kind,
                )
                continue
            notes.append(
                f"cached schedule ({kind} hit, engine {result.engine}, cost "
                f"{result.added_cost}) does not comply with the current "
                f"coupling map; falling back to bound-only seeding"
            )
        return best, notes


class ClauseProvider(StoreBoundProvider):
    """Solve-artifact seeding from the store's artifact table.

    Shares the store/couplings plumbing of :class:`StoreBoundProvider` but
    contributes **no result-table bound of its own** (a
    :class:`ModelProvider`/:class:`StoreBoundProvider` in the same chain
    covers that) — so bound seeding and artifact seeding stay independently
    switchable.  Its contribution is :meth:`artifact_cache`: a picklable
    :class:`~repro.service.store.ArtifactCache` handle to the store's
    solve-artifact tier.  Unlike the result-table providers, which key on
    the *circuit fingerprint* (the identical circuit must have been seen
    before), artifact rows key on the **encoding skeleton** (gate sequence
    × qubit counts × permutation spots × undirected edge set) — so a fresh
    worker on a never-seen circuit still warm-starts whenever *any* past
    job anywhere in the fleet solved a structurally identical instance.
    The cache itself cannot tell whether a row exists for this circuit
    (keys are computed per subset family inside the sweep), so the handle
    is always offered; hit/miss counting happens at the consumer.
    """

    name = "artifact"

    def upper_bound(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Optional[int]:
        return None

    def artifact_cache(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Tuple[Optional[Any], List[str]]:
        """A seeding handle into the store's artifact tier, plus notes.

        Returns:
            ``(cache, notes)`` — *cache* is ``None`` when the store exposes
            no artifact tier (e.g. a bare ``best_added_cost`` stub).
        """
        from repro.service.store import ArtifactCache

        if not hasattr(self.store, "get_artifact"):
            return None, [
                "artifact provider: store exposes no artifact tier; "
                "skipping artifact seeding"
            ]
        return ArtifactCache(self.store), []


@dataclass
class SeedResolution:
    """Everything the chain knows about warm-starting one solve.

    Attributes:
        bound: The tightest valid upper bound (``None`` when unknown).
        provider: Name of the provider that supplied :attr:`bound`.
        model: A replayable incumbent schedule, when some provider offered
            one that is at least as cheap as no bound at all (a model seed
            worse than the resolved bound is dropped — the bound alone is
            stronger).
        artifacts: A solve-artifact cache handle
            (:class:`~repro.service.store.ArtifactCache`-shaped) for
            skeleton-keyed clause/bound/model seeding inside the sweep, or
            ``None`` when no provider offers one.
        artifact_provider: Name of the provider that supplied
            :attr:`artifacts`.
        notes: Provenance notes, e.g. why a cached schedule was rejected.
    """

    bound: Optional[int] = None
    provider: Optional[str] = None
    model: Optional[ModelSeed] = None
    artifacts: Optional[Any] = None
    artifact_provider: Optional[str] = None
    notes: List[str] = field(default_factory=list)


class BoundProviderChain:
    """Query several providers and keep the tightest valid bound.

    Example:
        >>> chain = BoundProviderChain([
        ...     ModelProvider(store, couplings=devices),
        ...     HeuristicBoundProvider(),
        ... ])
        >>> bound, provider = chain.resolve(circuit, coupling)
        >>> seed = chain.resolve_seed(circuit, coupling)
    """

    def __init__(self, providers: Sequence[BoundProvider]):
        self.providers: List[BoundProvider] = list(providers)

    def resolve(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Tuple[Optional[int], Optional[str]]:
        """The minimum over all providers and the winning provider's name."""
        best: Optional[int] = None
        source: Optional[str] = None
        for provider in self.providers:
            bound = provider.upper_bound(circuit, coupling)
            if bound is None:
                continue
            if best is None or bound < best:
                best = bound
                source = getattr(provider, "name", type(provider).__name__)
        return best, source

    def resolve_seed(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> SeedResolution:
        """Tightest bound plus (when available) a replayable model seed.

        Providers exposing a ``model_seed`` method (duck-typed — see
        :class:`ModelProvider`) are asked for a schedule; the cheapest valid
        one wins.  A model whose objective exceeds the resolved bound is
        dropped: the tighter bound subsumes it (seeding a provably
        non-optimal incumbent would only slow the descent down).
        """
        bound, provider = self.resolve(circuit, coupling)
        resolution = SeedResolution(bound=bound, provider=provider)
        best_seed: Optional[ModelSeed] = None
        for candidate in self.providers:
            seeder = getattr(candidate, "model_seed", None)
            if seeder is None:
                continue
            seed, notes = seeder(circuit, coupling)
            resolution.notes.extend(notes)
            if seed is None:
                continue
            if bound is not None and seed.objective > bound:
                resolution.notes.append(
                    f"model seed (cost {seed.objective}) is worse than the "
                    f"resolved bound {bound} from {provider}; using the "
                    f"bound alone"
                )
                continue
            if best_seed is None or seed.objective < best_seed.objective:
                best_seed = seed
        resolution.model = best_seed
        return resolution

    def resolve_artifacts(
        self, circuit: QuantumCircuit, coupling: CouplingMap
    ) -> Tuple[Optional[Any], Optional[str], List[str]]:
        """A solve-artifact cache handle from the first provider offering one.

        Providers exposing an ``artifact_cache`` method (duck-typed — see
        :class:`ClauseProvider`) are asked in order; the first non-``None``
        handle wins.  Returns ``(cache, provider_name, notes)``.
        """
        notes: List[str] = []
        for candidate in self.providers:
            source = getattr(candidate, "artifact_cache", None)
            if source is None:
                continue
            cache, cache_notes = source(circuit, coupling)
            notes.extend(cache_notes)
            if cache is not None:
                name = getattr(candidate, "name", type(candidate).__name__)
                return cache, name, notes
        return None, None, notes


__all__ = [
    "BoundProvider",
    "BoundProviderChain",
    "ClauseProvider",
    "HeuristicBoundProvider",
    "ModelProvider",
    "ModelSeed",
    "SeedResolution",
    "StaticBoundProvider",
    "StoreBoundProvider",
    "is_sub_architecture",
]
