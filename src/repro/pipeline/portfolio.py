"""Portfolio mapping: heuristic first, SAT seeded with the heuristic bound.

The classic portfolio trick for exact optimisation: run a cheap heuristic to
obtain *some* valid mapping, then hand its cost to the exact engine as an
initial upper bound.  The SAT optimiser asserts ``F <= bound`` before the
first solve (see :meth:`repro.sat.optimize.OptimizingSolver.minimize`), so
the objective descent starts at the heuristic incumbent instead of an
arbitrary first model — fewer solver iterations, same proven minimum.

The exact stage's objective-search strategy is selectable
(``optimizer="linear" | "binary" | "core"``), and the special value
``optimizer="race"`` races two independently seeded SAT stages — linear
descent against core-guided descent — and keeps whichever finishes first
(they prove the same minimum, so first-done wins safely).  Note that the
pure-Python solver holds the GIL, so the race buys wall-clock only when the
strategies' runtimes differ a lot on the instance; its real value is that
neither strategy's pathological case can dominate.

When the bounded SAT search fails (the heuristic solution may not be
expressible under a restricted permutation strategy, or the budget runs
out), the heuristic result itself is returned, so :meth:`PortfolioMapper.map`
always yields a valid mapping that is at least as cheap as the heuristic's.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.result import MappingResult
from repro.exact.sat_mapper import SATMapper, SATMapperError
from repro.exact.strategies import PermutationStrategy
from repro.pipeline.registry import get_mapper, resolve_mapper_name
from repro.sat.optimize import resolve_optimizer_name

#: Strategies raced by ``optimizer="race"`` (first proven result wins).
RACE_OPTIMIZERS: Tuple[str, str] = ("linear", "core")


class PortfolioMapper:
    """Heuristic-seeded exact mapper (registry name ``"portfolio"``).

    Args:
        coupling: Target architecture.
        strategy: Permutation-restriction strategy for the SAT stage.
        use_subsets: Restrict the SAT stage to connected physical-qubit
            subsets (Section 4.1).
        optimizer: Objective search of the SAT stage — any registered
            optimizer strategy (``"linear"``, ``"binary"``, ``"core"``) or
            ``"race"`` to run linear and core-guided descent concurrently
            and keep the first finisher.
        optimizer_strategy: Backwards-compatible alias for *optimizer*
            (ignored when *optimizer* is given).
        time_limit: Wall-clock budget of the SAT stage in seconds.
        conflict_limit: Per-solver-call conflict budget of the SAT stage.
        decompose_swaps: Emit SWAPs as their 7-gate decomposition (default).
        share_clauses: Forwarded to the SAT stage — cross-family clause
            sharing and skeleton reuse during subset sweeps (see
            :class:`~repro.exact.sat_mapper.SATMapper`).
        prune_families: Forwarded to the SAT stage — lower-bound family
            pruning during subset sweeps.
        heuristic: Registry name of the bound-providing heuristic engine
            (default ``"sabre"``).
        heuristic_options: Extra constructor options for the heuristic.

    Example:
        >>> from repro.arch import ibm_qx4
        >>> from repro.benchlib import paper_example_cnot_skeleton
        >>> result = PortfolioMapper(ibm_qx4()).map(paper_example_cnot_skeleton())
        >>> result.added_cost
        4
    """

    name = "portfolio"

    #: An externally known bound is always safe here: the SAT stage failing
    #: within the bound falls back to the heuristic result.
    accepts_external_bound = True

    def __init__(
        self,
        coupling: CouplingMap,
        strategy: Optional[PermutationStrategy] = None,
        use_subsets: bool = False,
        optimizer: Optional[str] = None,
        optimizer_strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        decompose_swaps: bool = True,
        share_clauses: bool = True,
        prune_families: bool = True,
        heuristic: str = "sabre",
        heuristic_options: Optional[Dict[str, Any]] = None,
    ):
        self.coupling = coupling
        self.heuristic_name = resolve_mapper_name(heuristic)
        options = dict(heuristic_options or {})
        options.setdefault("decompose_swaps", decompose_swaps)
        self._heuristic = get_mapper(self.heuristic_name, coupling, **options)
        requested = optimizer if optimizer is not None else optimizer_strategy
        # Validate up front ("race" is portfolio-specific, everything else
        # must be a registered strategy).
        self.optimizer = (
            "race" if requested == "race" else resolve_optimizer_name(requested)
        )

        def build_sat(optimizer_name: str) -> SATMapper:
            return SATMapper(
                coupling,
                strategy=strategy,
                use_subsets=use_subsets,
                optimizer=optimizer_name,
                time_limit=time_limit,
                conflict_limit=conflict_limit,
                decompose_swaps=decompose_swaps,
                share_clauses=share_clauses,
                prune_families=prune_families,
            )

        if self.optimizer == "race":
            self._racers = [(name, build_sat(name)) for name in RACE_OPTIMIZERS]
            self._sat = self._racers[0][1]
        else:
            self._racers = []
            self._sat = build_sat(self.optimizer)

    # ------------------------------------------------------------------
    def _map_sat(
        self, circuit: QuantumCircuit, bound: int
    ) -> Tuple[MappingResult, Optional[str]]:
        """Run the exact stage; returns the result and the winning racer.

        For a single strategy this is one bounded SAT solve.  For
        ``optimizer="race"`` both strategies solve independent copies of
        the instance in **daemon threads**; the first to *finish
        successfully* wins and its name is reported.  Losing runs are not
        interrupted mid-solve (the solver offers no safe cancellation) but
        being daemonic they never delay process exit either — a
        ``ThreadPoolExecutor`` would join its non-daemon workers at
        interpreter shutdown and turn the race's effective wall-clock into
        max(linear, core).  The race trades CPU for robustness against one
        strategy's bad case.
        """
        if not self._racers:
            return self._sat.map(circuit, upper_bound=bound), None
        outcomes: "queue.Queue[Tuple[str, Optional[MappingResult], Optional[BaseException]]]" = (
            queue.Queue()
        )

        def run(name: str, mapper: SATMapper) -> None:
            try:
                outcomes.put((name, mapper.map(circuit, upper_bound=bound), None))
            except BaseException as error:  # noqa: BLE001 - re-raised by the racer
                outcomes.put((name, None, error))

        for name, mapper in self._racers:
            threading.Thread(
                target=run, args=(name, mapper),
                name=f"portfolio-race-{name}", daemon=True,
            ).start()
        last_error: Optional[BaseException] = None
        for _ in self._racers:
            name, result, error = outcomes.get()
            if error is None:
                assert result is not None
                return result, name
            last_error = error
        assert last_error is not None
        raise last_error

    def map(
        self, circuit: QuantumCircuit, upper_bound: Optional[int] = None
    ) -> MappingResult:
        """Map *circuit*: heuristic bound first, then bounded exact search.

        Args:
            circuit: The circuit to map.
            upper_bound: Externally known valid bound (e.g. from a
                :class:`~repro.pipeline.bounds.BoundProviderChain`); the SAT
                stage is seeded with the tighter of this and the heuristic's
                cost.

        The returned result carries portfolio bookkeeping in its
        ``statistics``: ``portfolio_bound`` (the seeded bound),
        ``portfolio_heuristic`` (its engine name), ``portfolio_source``
        (``"sat"`` when the exact stage produced the result, ``"heuristic"``
        when the heuristic was already provably minimal or the exact stage
        found nothing within the bound), ``portfolio_external_bound`` when a
        caller-supplied bound tightened the seed, and — in race mode —
        ``portfolio_race_winner`` (the strategy that finished first).
        """
        start = time.monotonic()
        heuristic_result = self._heuristic.map(circuit)
        bound = heuristic_result.added_cost
        bookkeeping = {
            "portfolio_bound": bound,
            "portfolio_heuristic": self.heuristic_name,
            "portfolio_heuristic_runtime": heuristic_result.runtime_seconds,
            "portfolio_optimizer": self.optimizer,
        }
        if upper_bound is not None and upper_bound < bound:
            bound = upper_bound
            bookkeeping["portfolio_bound"] = bound
            bookkeeping["portfolio_external_bound"] = upper_bound

        if heuristic_result.added_cost == 0:
            # Zero added cost is globally minimal; no exact search needed.
            heuristic_result.statistics.update(bookkeeping, portfolio_source="heuristic")
            heuristic_result.optimal = True
            heuristic_result.engine = self.name
            heuristic_result.runtime_seconds = time.monotonic() - start
            return heuristic_result

        try:
            sat_result, winner = self._map_sat(circuit, bound)
        except SATMapperError as error:
            # Nothing at or below the bound was found within the SAT stage's
            # strategy/subset restriction or budget — the heuristic solution
            # stands.
            heuristic_result.statistics.update(
                bookkeeping,
                portfolio_source="heuristic",
                portfolio_sat_error=str(error),
            )
            heuristic_result.engine = self.name
            heuristic_result.runtime_seconds = time.monotonic() - start
            return heuristic_result

        sat_result.statistics.update(bookkeeping, portfolio_source="sat")
        if winner is not None:
            sat_result.statistics["portfolio_race_winner"] = winner
        sat_result.engine = self.name
        sat_result.runtime_seconds = time.monotonic() - start
        return sat_result


__all__ = ["PortfolioMapper", "RACE_OPTIMIZERS"]
