"""Portfolio mapping: heuristic first, SAT seeded with the heuristic bound.

The classic portfolio trick for exact optimisation: run a cheap heuristic to
obtain *some* valid mapping, then hand its cost to the exact engine as an
initial upper bound.  The SAT optimiser asserts ``F <= bound`` before the
first solve (see :meth:`repro.sat.optimize.OptimizingSolver.minimize`), so
the objective descent starts at the heuristic incumbent instead of an
arbitrary first model — fewer solver iterations, same proven minimum.

When the bounded SAT search fails (the heuristic solution may not be
expressible under a restricted permutation strategy, or the budget runs
out), the heuristic result itself is returned, so :meth:`PortfolioMapper.map`
always yields a valid mapping that is at least as cheap as the heuristic's.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.result import MappingResult
from repro.exact.sat_mapper import SATMapper, SATMapperError
from repro.exact.strategies import PermutationStrategy
from repro.pipeline.registry import get_mapper, resolve_mapper_name


class PortfolioMapper:
    """Heuristic-seeded exact mapper (registry name ``"portfolio"``).

    Args:
        coupling: Target architecture.
        strategy: Permutation-restriction strategy for the SAT stage.
        use_subsets: Restrict the SAT stage to connected physical-qubit
            subsets (Section 4.1).
        optimizer_strategy: Objective search of the SAT stage
            (``"linear"`` or ``"binary"``).
        time_limit: Wall-clock budget of the SAT stage in seconds.
        conflict_limit: Per-solver-call conflict budget of the SAT stage.
        decompose_swaps: Emit SWAPs as their 7-gate decomposition (default).
        heuristic: Registry name of the bound-providing heuristic engine
            (default ``"sabre"``).
        heuristic_options: Extra constructor options for the heuristic.

    Example:
        >>> from repro.arch import ibm_qx4
        >>> from repro.benchlib import paper_example_cnot_skeleton
        >>> result = PortfolioMapper(ibm_qx4()).map(paper_example_cnot_skeleton())
        >>> result.added_cost
        4
    """

    name = "portfolio"

    #: An externally known bound is always safe here: the SAT stage failing
    #: within the bound falls back to the heuristic result.
    accepts_external_bound = True

    def __init__(
        self,
        coupling: CouplingMap,
        strategy: Optional[PermutationStrategy] = None,
        use_subsets: bool = False,
        optimizer_strategy: str = "linear",
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        decompose_swaps: bool = True,
        heuristic: str = "sabre",
        heuristic_options: Optional[Dict[str, Any]] = None,
    ):
        self.coupling = coupling
        self.heuristic_name = resolve_mapper_name(heuristic)
        options = dict(heuristic_options or {})
        options.setdefault("decompose_swaps", decompose_swaps)
        self._heuristic = get_mapper(self.heuristic_name, coupling, **options)
        self._sat = SATMapper(
            coupling,
            strategy=strategy,
            use_subsets=use_subsets,
            optimizer_strategy=optimizer_strategy,
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            decompose_swaps=decompose_swaps,
        )

    # ------------------------------------------------------------------
    def map(
        self, circuit: QuantumCircuit, upper_bound: Optional[int] = None
    ) -> MappingResult:
        """Map *circuit*: heuristic bound first, then bounded exact search.

        Args:
            circuit: The circuit to map.
            upper_bound: Externally known valid bound (e.g. from a
                :class:`~repro.pipeline.bounds.BoundProviderChain`); the SAT
                stage is seeded with the tighter of this and the heuristic's
                cost.

        The returned result carries portfolio bookkeeping in its
        ``statistics``: ``portfolio_bound`` (the seeded bound),
        ``portfolio_heuristic`` (its engine name), ``portfolio_source``
        (``"sat"`` when the exact stage produced the result, ``"heuristic"``
        when the heuristic was already provably minimal or the exact stage
        found nothing within the bound), and ``portfolio_external_bound``
        when a caller-supplied bound tightened the seed.
        """
        start = time.monotonic()
        heuristic_result = self._heuristic.map(circuit)
        bound = heuristic_result.added_cost
        bookkeeping = {
            "portfolio_bound": bound,
            "portfolio_heuristic": self.heuristic_name,
            "portfolio_heuristic_runtime": heuristic_result.runtime_seconds,
        }
        if upper_bound is not None and upper_bound < bound:
            bound = upper_bound
            bookkeeping["portfolio_bound"] = bound
            bookkeeping["portfolio_external_bound"] = upper_bound

        if heuristic_result.added_cost == 0:
            # Zero added cost is globally minimal; no exact search needed.
            heuristic_result.statistics.update(bookkeeping, portfolio_source="heuristic")
            heuristic_result.optimal = True
            heuristic_result.engine = self.name
            heuristic_result.runtime_seconds = time.monotonic() - start
            return heuristic_result

        try:
            sat_result = self._sat.map(circuit, upper_bound=bound)
        except SATMapperError as error:
            # Nothing at or below the bound was found within the SAT stage's
            # strategy/subset restriction or budget — the heuristic solution
            # stands.
            heuristic_result.statistics.update(
                bookkeeping,
                portfolio_source="heuristic",
                portfolio_sat_error=str(error),
            )
            heuristic_result.engine = self.name
            heuristic_result.runtime_seconds = time.monotonic() - start
            return heuristic_result

        sat_result.statistics.update(bookkeeping, portfolio_source="sat")
        sat_result.engine = self.name
        sat_result.runtime_seconds = time.monotonic() - start
        return sat_result


__all__ = ["PortfolioMapper"]
