"""Batch mapping over worker pools, with structured per-item results.

:class:`MappingPipeline` is the service-shaped front end of the package: it
resolves its engine through the :mod:`repro.pipeline.registry`, maps single
circuits or whole batches, and exploits two levels of parallelism:

* **circuit level** — :meth:`MappingPipeline.map_many` fans independent
  circuits out over a :mod:`concurrent.futures` thread or process pool and
  returns one :class:`BatchItem` per input (result *or* structured failure —
  one bad circuit never poisons the batch),
* **subset level** — for the SAT engine with ``use_subsets=True``,
  :meth:`MappingPipeline.map` solves one representative per *subset family*
  (structurally identical induced sub-couplings share one encoding, see
  :meth:`~repro.exact.sat_mapper.SATMapper.subset_family_groups`)
  concurrently, mirrors each family outcome onto its other members for
  free, drops outstanding instances as soon as a zero-added-cost mapping is
  found, and picks the winner in deterministic subset order: the same
  subset wins with the same added cost as the sequential loop in
  :meth:`repro.exact.sat_mapper.SATMapper.map` (the concrete qubit
  assignment within the winning subset may differ, as the sequential loop
  solves later subsets under a tightened incumbent bound).

Mapping engines that can exploit an externally known objective bound
(``mapper.accepts_external_bound``) are seeded through an optional
:class:`~repro.pipeline.bounds.BoundProviderChain` — cached incumbents from
a result store, a caller-supplied bound, or a heuristic run — before any
solver starts.  Engines that consume **solve artifacts**
(``mapper.accepts_artifacts``) additionally receive a picklable
skeleton-keyed cache handle resolved from the chain's
:class:`~repro.pipeline.bounds.ClauseProvider`, so sweeps warm-start from
structurally identical past jobs; the subset fan-out dispatches families
*rolling* (slots refill in plan order) so each family also gets the
cheapest already-found schedule replayed as its first incumbent — the
parallel counterpart of the sequential sweep's cross-family model transfer.

The pure-Python SAT solver holds the GIL, so ``executor="process"`` is the
choice for real speed-ups; ``executor="thread"`` (the default) still
overlaps I/O and keeps the API identical without any pickling requirements.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.cache import shared_permutation_table
from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.result import MappingResult
from repro.exact.sat_mapper import (
    SATMapper,
    SATMapperError,
    SubsetOutcome,
    SweepContext,
)
from repro.pipeline.bounds import BoundProvider, BoundProviderChain, SeedResolution
from repro.pipeline.registry import get_mapper, resolve_mapper_name


def _map_with_bound(
    mapper,
    circuit: QuantumCircuit,
    upper_bound: Optional[int],
    model_mappings: Optional[Sequence[Tuple[int, ...]]] = None,
    model_objective: Optional[int] = None,
    artifacts=None,
):
    """Map through *mapper*, seeding bound, model and artifacts only where safe.

    Engines opt in via ``accepts_external_bound`` (objective bound),
    ``accepts_initial_model`` (incumbent schedule) and ``accepts_artifacts``
    (skeleton-keyed solve-artifact cache); everything else is mapped
    unseeded, so heuristics and restricted exact searches are unaffected.
    """
    kwargs = {}
    if upper_bound is not None and getattr(mapper, "accepts_external_bound", False):
        kwargs["upper_bound"] = upper_bound
    if (
        model_mappings is not None
        and model_objective is not None
        and getattr(mapper, "accepts_initial_model", False)
    ):
        kwargs["initial_model"] = model_mappings
        kwargs["initial_objective"] = model_objective
    if artifacts is not None and getattr(mapper, "accepts_artifacts", False):
        kwargs["artifacts"] = artifacts
    return mapper.map(circuit, **kwargs)


@dataclass
class BatchItem:
    """Outcome of mapping one circuit of a batch.

    Exactly one of :attr:`result` and :attr:`error` is set.

    Attributes:
        index: Position of the circuit in the input batch.
        name: The circuit's name.
        result: The mapping result on success.
        error: Human-readable failure message on failure.
        error_type: Exception class name on failure.
        elapsed_seconds: Wall-clock time spent on this item.
    """

    index: int
    name: str
    result: Optional[MappingResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the circuit was mapped successfully."""
        return self.result is not None


def _map_circuit_task(
    engine: str,
    coupling: CouplingMap,
    options: Dict[str, Any],
    circuit: QuantumCircuit,
    upper_bound: Optional[int] = None,
    model_mappings: Optional[Tuple[Tuple[int, ...], ...]] = None,
    model_objective: Optional[int] = None,
    artifacts=None,
    control=None,
) -> Tuple[str, Any, Optional[str], float]:
    """Worker task: map one circuit with a freshly built engine.

    *upper_bound* and the model seed are plain integers/tuples resolved by
    the parent (bound providers hold locks and store handles, so they never
    cross into workers); they are only asserted on engines that declare
    ``accepts_external_bound`` / ``accepts_initial_model``.  *artifacts* is
    a picklable :class:`~repro.service.store.ArtifactCache` handle (it
    carries only the database path and reopens lazily on the far side).

    Returns a plain tuple ``(status, payload, error_type, elapsed)`` instead
    of raising, so process workers never have to pickle tracebacks.
    """
    start = time.monotonic()
    try:
        if control is not None and control.cancelled:
            return (
                "error", "job cancelled before mapping started",
                "JobCancelled", time.monotonic() - start,
            )
        mapper = get_mapper(engine, coupling, **options)
        if control is not None and hasattr(mapper, "bind_control"):
            # Cooperative cancellation/deadline token (thread executors
            # only — it never crosses a process boundary).  Engines without
            # bind_control run to completion; their caller enforces the
            # deadline by abandoning the result.
            mapper.bind_control(control)
        result = _map_with_bound(
            mapper, circuit, upper_bound, model_mappings, model_objective,
            artifacts=artifacts,
        )
        return ("ok", result, None, time.monotonic() - start)
    except Exception as error:  # noqa: BLE001 - converted to a structured failure
        return ("error", str(error), type(error).__name__, time.monotonic() - start)


def _solve_subset_task(
    mapper: SATMapper,
    gates: Sequence[Tuple[int, int]],
    num_logical: int,
    spots: Sequence[int],
    subset: Tuple[int, ...],
    deadline: Optional[float],
    upper_bound: Optional[int],
    incumbent: Optional[Tuple[List[Tuple[int, ...]], int]] = None,
    artifacts=None,
) -> SubsetOutcome:
    """Worker task: solve one SAT subset instance.

    *deadline* is an absolute ``time.monotonic()`` timestamp so that a task
    dequeued late in a crowded pool gets only the time that is actually left
    of the overall budget, not the full budget again.  (``CLOCK_MONOTONIC``
    is system-wide, so the comparison also holds in process-pool workers.)

    *incumbent* is the parent-resolved cross-family model transfer
    (subset-local mappings plus objective) and *artifacts* the picklable
    solve-artifact cache handle — both pure warm starts that never change
    the outcome, only how fast it is reached.
    """
    if deadline is not None:
        time_limit = deadline - time.monotonic()
        if time_limit <= 0:
            return SubsetOutcome(subset=tuple(subset), status="unknown")
    else:
        time_limit = None
    return mapper.solve_subset(
        gates, num_logical, spots, subset,
        time_limit=time_limit, upper_bound=upper_bound,
        incumbent=incumbent, artifacts=artifacts,
    )


class MappingPipeline:
    """Registry-backed mapping front end with batch and subset parallelism.

    Args:
        coupling: Target architecture shared by all mapped circuits.
        engine: Registry name of the mapping engine (``"sat"``, ``"dp"``,
            ``"stochastic"``, ``"sabre"``, ``"portfolio"``, or any name added
            via :func:`repro.pipeline.registry.register_mapper`).
        engine_options: Keyword options forwarded to the engine factory.
        workers: Default worker count for :meth:`map_many` and for the SAT
            subset fan-out of :meth:`map`; ``1`` means fully sequential.
        executor: ``"thread"`` (default) or ``"process"``.  With
            ``"process"``, worker processes re-resolve the engine from their
            own copy of the registry: custom engines added at runtime via
            :func:`~repro.pipeline.registry.register_mapper` are only visible
            to workers on platforms whose start method is ``fork`` (Linux) or
            when the registration runs at import time of a module the workers
            also import; on spawn-start platforms (Windows, macOS default) a
            runtime-registered name fails in the workers with ``KeyError``.

    Example:
        >>> from repro.arch import ibm_qx4
        >>> pipeline = MappingPipeline(ibm_qx4(), engine="dp")
        >>> items = pipeline.map_many([circuit_a, circuit_b], workers=2)
        >>> [item.result.added_cost for item in items if item.ok]
        [0, 4]
    """

    def __init__(
        self,
        coupling: CouplingMap,
        engine: str = "sat",
        engine_options: Optional[Dict[str, Any]] = None,
        workers: int = 1,
        executor: str = "thread",
        bound_providers: Optional[Sequence[BoundProvider]] = None,
    ):
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; use 'thread' or 'process'"
            )
        self.coupling = coupling
        self.engine = resolve_mapper_name(engine)
        self.engine_options = dict(engine_options or {})
        self.workers = max(1, int(workers))
        self.executor = executor
        self.bounds = (
            BoundProviderChain(bound_providers) if bound_providers else None
        )

    # ------------------------------------------------------------------
    def _resolve_seed(
        self, mapper, circuit: QuantumCircuit
    ) -> SeedResolution:
        """Resolve the provider bound and model seed for *circuit*.

        Providers run in the calling thread (they may touch a result store);
        the resolved plain values are what travel into worker tasks.  The
        model seed is only resolved for mappers that can replay it, and the
        solve-artifact cache handle only for mappers that consume one —
        notably the subset sweep, which rejects global bounds
        (``accepts_external_bound`` is false there) but still accepts
        artifacts, because artifact material is applied per family key.
        """
        if self.bounds is None:
            return SeedResolution()
        resolution = SeedResolution()
        if getattr(mapper, "accepts_external_bound", False):
            if getattr(mapper, "accepts_initial_model", False):
                resolution = self.bounds.resolve_seed(circuit, self.coupling)
            else:
                bound, provider = self.bounds.resolve(circuit, self.coupling)
                resolution = SeedResolution(bound=bound, provider=provider)
        if getattr(mapper, "accepts_artifacts", False):
            cache, provider, notes = self.bounds.resolve_artifacts(
                circuit, self.coupling
            )
            resolution.artifacts = cache
            resolution.artifact_provider = provider
            resolution.notes.extend(notes)
        return resolution

    @staticmethod
    def _annotate_seed(result: MappingResult, seed: SeedResolution) -> None:
        if seed.bound is not None and seed.provider is not None:
            result.statistics.setdefault("bound_provider", seed.provider)
            result.statistics.setdefault("external_bound", seed.bound)
        if seed.artifacts is not None and seed.artifact_provider is not None:
            result.statistics.setdefault(
                "artifact_provider", seed.artifact_provider
            )
        if seed.model is not None:
            result.statistics.setdefault("model_provider", seed.model.provider)
            result.statistics.setdefault(
                "seeded_model_objective", seed.model.objective
            )
            result.statistics.setdefault(
                "seeded_model_source", seed.model.source_arch
            )
        if seed.notes:
            result.statistics.setdefault("seed_notes", list(seed.notes))

    # ------------------------------------------------------------------
    def _make_executor(self, workers: int) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def create_mapper(self):
        """A fresh engine instance from the registry."""
        return get_mapper(self.engine, self.coupling, **self.engine_options)

    # ------------------------------------------------------------------
    # Single circuit
    # ------------------------------------------------------------------
    def map(
        self, circuit: QuantumCircuit, control: Optional[Any] = None
    ) -> MappingResult:
        """Map one circuit, fanning SAT subset instances out when possible.

        The parallel subset path is taken for the SAT engine with
        ``use_subsets=True`` and more than one worker; every other
        configuration simply delegates to the engine's own ``map`` (seeded
        with a provider-resolved upper bound where the engine allows it).
        *control* is an optional cooperative-cancellation token (see
        :meth:`map_many`; thread executor only).
        """
        mapper = self.create_mapper()
        if (
            control is not None
            and self.executor == "thread"
            and hasattr(mapper, "bind_control")
        ):
            mapper.bind_control(control)
        seed = self._resolve_seed(mapper, circuit)
        if (
            self.workers > 1
            and isinstance(mapper, SATMapper)
            and mapper.use_subsets
        ):
            result = self._map_subsets_parallel(
                mapper, circuit, artifacts=seed.artifacts
            )
        else:
            result = _map_with_bound(
                mapper,
                circuit,
                seed.bound,
                seed.model.mappings if seed.model is not None else None,
                seed.model.objective if seed.model is not None else None,
                artifacts=seed.artifacts,
            )
        self._annotate_seed(result, seed)
        return result

    def _map_subsets_parallel(
        self,
        mapper: SATMapper,
        circuit: QuantumCircuit,
        artifacts=None,
    ) -> MappingResult:
        start = time.monotonic()
        gates, spots = mapper.cnot_instance(circuit)
        if not gates:
            return mapper.map(circuit)
        subsets = mapper.candidate_subsets(circuit.num_qubits)
        if len(subsets) <= 1:
            return _map_with_bound(mapper, circuit, None, artifacts=artifacts)

        budget = mapper.time_limit
        deadline = None if budget is None else start + budget
        budget_exhausted = False
        # One task per subset *family*: structurally identical sub-couplings
        # share an encoding, so solving the first member covers them all.
        # Families are submitted in the sweep plan's order (heuristic lower
        # bound, then first appearance) — the same order the sequential loop
        # walks, so pruning decisions transfer between the two paths.
        plans = mapper.plan_families(subsets, gates)
        context = SweepContext(
            gates=gates,
            num_logical=circuit.num_qubits,
            spots=spots,
            artifacts=(
                artifacts
                if getattr(mapper, "accepts_artifacts", False) else None
            ),
        )
        outcomes_by_plan: Dict[int, SubsetOutcome] = {}
        pruned_plans: Dict[int, float] = {}
        connected = [
            (position, plan)
            for position, plan in enumerate(plans)
            if plan.connected
        ]
        workers = min(self.workers, max(1, len(connected)))
        futures: Dict[Any, int] = {}
        with self._make_executor(workers) as pool:
            pending: set = set()
            queue_index = 0
            zero_position: Optional[int] = None
            best_objective: Optional[int] = None

            def prefix_state(position: int) -> Tuple[bool, Optional[int]]:
                """Whether every earlier-ordered family is decided, and the
                cheapest objective among the decided prefix."""
                resolved = all(
                    earlier in outcomes_by_plan
                    or earlier in pruned_plans
                    or not plans[earlier].connected
                    for earlier in range(position)
                )
                best = min(
                    (
                        outcomes_by_plan[earlier].objective
                        for earlier in range(position)
                        if earlier in outcomes_by_plan
                        and outcomes_by_plan[earlier].is_satisfiable
                    ),
                    default=None,
                )
                return resolved, best

            def submit_ready() -> None:
                """Fill free worker slots with families, in plan order.

                Submission is rolling rather than upfront so that each
                family is dispatched with the best warm start known *now*:
                a cross-family model transfer from already-finished
                families (the sequential sweep's incumbent replay, closed
                here for the fan-out) and the solve-artifact cache handle.
                Pruning happens at submit time, and only when the decision
                is reproducible from plan-order-prefix information — every
                earlier-ordered family already decided, the incumbent and
                the transferred bounds drawn from those alone.  That is
                exactly the information the sequential sweep has at the
                same point, so the two paths prune the same families
                (a family dispatched before its prefix resolved simply
                solves — parallel may prune fewer, never different ones).
                """
                nonlocal queue_index
                while queue_index < len(connected) and len(pending) < workers:
                    position, plan = connected[queue_index]
                    if zero_position is not None and position > zero_position:
                        # A zero-cost mapping is globally minimal; families
                        # ordered after the earliest zero can never win.
                        queue_index += 1
                        continue
                    prefix_resolved, prefix_best = prefix_state(position)
                    if (
                        mapper.prune_families
                        and prefix_resolved
                        and prefix_best is not None
                    ):
                        bound = prefix_best - 1
                        in_sweep = context.lower_bound_for(
                            plan, before=position
                        )
                        proven = in_sweep
                        persisted = context.artifact_lower_bound(
                            plan.sub_coupling
                        )
                        if persisted is not None and persisted > proven:
                            proven = persisted
                        if proven > bound:
                            if in_sweep <= bound:
                                context.artifact_bounds_used += 1
                            pruned_plans[position] = proven
                            context.note_family(
                                plan, lower_bound=proven, position=position
                            )
                            context.families_pruned += 1
                            queue_index += 1
                            continue
                    incumbent = None
                    if mapper.share_clauses:
                        incumbent = context.incumbent_for(
                            plan, gates,
                            shared_permutation_table(plan.sub_coupling),
                            bound=None,
                        )
                    future = pool.submit(
                        _solve_subset_task,
                        mapper, gates, circuit.num_qubits, spots,
                        subsets[plan.indices[0]], deadline, None,
                        incumbent, context.artifacts,
                    )
                    futures[future] = position
                    pending.add(future)
                    queue_index += 1

            submit_ready()
            while pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        budget_exhausted = True
                        break
                done, pending = wait(
                    pending, timeout=remaining, return_when=FIRST_COMPLETED
                )
                for future in done:
                    position = futures[future]
                    outcome = future.result()
                    outcomes_by_plan[position] = outcome
                    plan = plans[position]
                    schedule = None
                    if outcome.mappings is not None:
                        # The worker reports device-indexed mappings; the
                        # context records subset-local schedules (the form
                        # transfers translate), so convert back through the
                        # representative subset's qubit order.
                        to_local = {
                            qubit: index
                            for index, qubit in enumerate(outcome.subset)
                        }
                        schedule = [
                            tuple(to_local[qubit] for qubit in mapping)
                            for mapping in outcome.mappings
                        ]
                    context.note_family(
                        plan,
                        lower_bound=(
                            outcome.objective
                            if outcome.status == "optimal"
                            else float("inf") if outcome.status == "unsat"
                            else None
                        ),
                        schedule=schedule,
                        schedule_objective=(
                            outcome.objective
                            if outcome.is_satisfiable else None
                        ),
                        position=position,
                    )
                    if outcome.is_satisfiable and (
                        best_objective is None
                        or outcome.objective < best_objective
                    ):
                        best_objective = outcome.objective
                    if outcome.is_satisfiable and outcome.objective == 0:
                        if zero_position is None or position < zero_position:
                            zero_position = position
                if zero_position is not None:
                    # Zero added cost is globally minimal, so nothing can beat
                    # it — but the sequential loop would have stopped at the
                    # *first* family reaching zero, so keep waiting for the
                    # earlier-ordered instances (one of them may also reach
                    # zero) and cancel the rest.  This keeps the winner
                    # deterministic regardless of completion order.
                    keep = set()
                    for future in pending:
                        if futures[future] < zero_position:
                            keep.add(future)
                        else:
                            future.cancel()
                    pending = keep
                submit_ready()
            for future in pending:
                future.cancel()
        # The executor shutdown above waited for in-flight tasks, so harvest
        # outcomes that completed after a deadline break — a budget-limited
        # run must still return the best solution found, like the sequential
        # loop does.
        for future, position in futures.items():
            if (
                position in outcomes_by_plan
                or position in pruned_plans
                or not future.done()
                or future.cancelled()
            ):
                continue
            outcomes_by_plan[position] = future.result()
        if (
            deadline is not None
            and not budget_exhausted
            and time.monotonic() >= deadline
        ):
            # Tasks that self-expired at the deadline drain in one wait()
            # round without the outer loop re-checking the clock; the run is
            # still budget-limited and must be reported as such.
            budget_exhausted = True

        # Assemble outcomes in the sweep plan's order, mirroring each solved
        # family representative onto the family's other members — identical
        # encodings, so only the device-index translation differs and no
        # solver runs.  The reduction then picks the same winner as the
        # sequential sweep.
        ordered: List[SubsetOutcome] = []
        for position, plan in enumerate(plans):
            if not plan.connected:
                ordered.extend(
                    SubsetOutcome(subset=tuple(subsets[index]), status="unsat")
                    for index in plan.indices
                )
                continue
            if position in pruned_plans:
                proven = pruned_plans[position]
                ordered.extend(
                    SubsetOutcome(
                        subset=tuple(subsets[index]),
                        status="pruned",
                        pruned=True,
                        proven_lower_bound=proven,
                    )
                    for index in plan.indices
                )
                continue
            solved = outcomes_by_plan.get(position)
            if solved is None:
                continue
            ordered.append(solved)
            ordered.extend(
                SATMapper.mirror_outcome(solved, subsets[member])
                for member in plan.indices[1:]
            )
        best = SATMapper.select_best_outcome(ordered)
        if best is None:
            raise SATMapperError.no_solution(budget_exhausted)
        # Artifact hit rates: each worker counted its own family's loads and
        # imports (reported through the outcome statistics); the parent
        # context counted the bound lookups of its submit-time prune checks.
        # Both are real cache traffic, so the job-level counters are the sum.
        artifact_stats = context.artifact_statistics()
        artifact_notes = list(context.artifact_notes)
        for outcome in outcomes_by_plan.values():
            for key in artifact_stats:
                artifact_stats[key] += outcome.statistics.get(key, 0)
            artifact_notes.extend(outcome.statistics.get("artifact_notes", ()))
        if artifact_notes:
            artifact_stats["artifact_notes"] = artifact_notes
        return mapper.build_mapping_result(
            circuit,
            best,
            ordered,
            spots,
            subsets_total=len(subsets),
            runtime_seconds=time.monotonic() - start,
            budget_exhausted=budget_exhausted,
            extra_statistics={
                "families_total": len(plans),
                "families_pruned": context.families_pruned,
                "clauses_exported": 0,
                "clauses_imported": 0,
                "models_transferred": context.models_transferred,
                "clause_sharing": 0,
                "family_pruning": int(mapper.prune_families),
                "artifact_seeding": int(context.artifacts is not None),
                **artifact_stats,
            },
        )

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def map_many(
        self,
        circuits: Iterable[QuantumCircuit],
        workers: Optional[int] = None,
        controls: Optional[Sequence[Any]] = None,
    ) -> List[BatchItem]:
        """Map a batch of circuits, one :class:`BatchItem` per input.

        Items are returned in input order.  A circuit that fails to map
        (for example because it has more logical qubits than the device)
        yields an item with :attr:`BatchItem.error` set; the other circuits
        are unaffected.

        Args:
            circuits: The circuits to map.
            workers: Worker count for this call (defaults to the pipeline's
                ``workers``); ``1`` maps sequentially in the calling thread.
            controls: Optional per-circuit
                :class:`~repro.sat.control.SolveControl` tokens (aligned
                with *circuits*) for cooperative cancellation and deadline
                interrupts.  Honoured under the thread executor only — the
                tokens cannot cross a process boundary, so with
                ``executor="process"`` cancellation degrades to the caller
                abandoning the result.
        """
        batch = list(circuits)
        batch_controls: List[Any] = list(controls or [])
        batch_controls.extend([None] * (len(batch) - len(batch_controls)))
        if self.executor == "process":
            batch_controls = [None] * len(batch)
        pool_size = self.workers if workers is None else max(1, int(workers))
        pool_size = min(pool_size, max(1, len(batch)))

        # Resolve provider bounds and model seeds in the calling thread:
        # providers may hold store handles and locks that must not cross
        # into process workers.  Only plain tuples/ints travel.
        seeds: List[SeedResolution] = [SeedResolution() for _ in batch]
        if self.bounds is not None and batch:
            probe = self.create_mapper()
            if getattr(probe, "accepts_external_bound", False) or getattr(
                probe, "accepts_artifacts", False
            ):
                seeds = [
                    self._resolve_seed(probe, circuit) for circuit in batch
                ]

        def task_args(index: int, circuit: QuantumCircuit):
            seed = seeds[index]
            model = seed.model
            return (
                self.engine, self.coupling, self.engine_options, circuit,
                seed.bound,
                model.mappings if model is not None else None,
                model.objective if model is not None else None,
                seed.artifacts,
                batch_controls[index],
            )

        if pool_size <= 1 or len(batch) <= 1:
            items = [
                self._item_from_task(
                    index, circuit, _map_circuit_task(*task_args(index, circuit))
                )
                for index, circuit in enumerate(batch)
            ]
        else:
            slots: List[Optional[BatchItem]] = [None] * len(batch)
            with self._make_executor(pool_size) as pool:
                futures = {
                    pool.submit(
                        _map_circuit_task, *task_args(index, circuit)
                    ): (index, circuit)
                    for index, circuit in enumerate(batch)
                }
                for future in futures:
                    index, circuit = futures[future]
                    slots[index] = self._item_from_task(
                        index, circuit, future.result()
                    )
            items = [item for item in slots if item is not None]
        for item in items:
            if item.ok:
                self._annotate_seed(item.result, seeds[item.index])
        return items

    @staticmethod
    def _item_from_task(
        index: int,
        circuit: QuantumCircuit,
        task_result: Tuple[str, Any, Optional[str], float],
    ) -> BatchItem:
        status, payload, error_type, elapsed = task_result
        if status == "ok":
            return BatchItem(
                index=index, name=circuit.name,
                result=payload, elapsed_seconds=elapsed,
            )
        return BatchItem(
            index=index, name=circuit.name,
            error=payload, error_type=error_type, elapsed_seconds=elapsed,
        )


__all__ = ["BatchItem", "MappingPipeline"]
