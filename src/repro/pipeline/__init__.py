"""Production mapping pipeline: registry, batching, caching, portfolio.

This subsystem turns the individual mapping engines of :mod:`repro.exact`
and :mod:`repro.heuristic` into one service-shaped entry point:

* :mod:`repro.pipeline.registry` — a :class:`Mapper` protocol plus a name
  registry (``get_mapper("sat", coupling, ...)``) so callers no longer
  hard-code engine classes,
* :mod:`repro.pipeline.pipeline` — :class:`MappingPipeline` with a batch API
  (``map_many``) that fans independent circuits and SAT subset instances out
  over a thread or process pool and returns structured per-item results,
* :mod:`repro.pipeline.portfolio` — :class:`PortfolioMapper`, which runs a
  cheap heuristic first and seeds the SAT optimiser with its cost as an
  initial upper bound,
* :mod:`repro.pipeline.cache` — process-wide memoisation of
  :class:`~repro.arch.permutations.PermutationTable` and
  :func:`~repro.arch.subsets.connected_subsets` keyed by the canonical
  coupling-map key.

The submodules are imported lazily (PEP 562): :mod:`repro.pipeline.registry`
builds engines from :mod:`repro.exact` and :mod:`repro.heuristic`, and
deferring the imports keeps this package cheap to import and free of
import-order coupling with the engine layers.
"""

from importlib import import_module
from typing import TYPE_CHECKING

_EXPORTS = {
    "Mapper": "repro.pipeline.registry",
    "MapperRegistry": "repro.pipeline.registry",
    "register_mapper": "repro.pipeline.registry",
    "get_mapper": "repro.pipeline.registry",
    "available_mappers": "repro.pipeline.registry",
    "resolve_mapper_name": "repro.pipeline.registry",
    "MappingPipeline": "repro.pipeline.pipeline",
    "BatchItem": "repro.pipeline.pipeline",
    "PortfolioMapper": "repro.pipeline.portfolio",
    "BoundProvider": "repro.pipeline.bounds",
    "BoundProviderChain": "repro.pipeline.bounds",
    "HeuristicBoundProvider": "repro.pipeline.bounds",
    "ModelProvider": "repro.pipeline.bounds",
    "ModelSeed": "repro.pipeline.bounds",
    "SeedResolution": "repro.pipeline.bounds",
    "StaticBoundProvider": "repro.pipeline.bounds",
    "StoreBoundProvider": "repro.pipeline.bounds",
    "shared_permutation_table": "repro.pipeline.cache",
    "shared_connected_subsets": "repro.pipeline.cache",
    "cache_stats": "repro.pipeline.cache",
    "clear_caches": "repro.pipeline.cache",
    "set_cache_dir": "repro.pipeline.cache",
    "get_cache_dir": "repro.pipeline.cache",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.pipeline.bounds import (
        BoundProvider,
        BoundProviderChain,
        HeuristicBoundProvider,
        ModelProvider,
        ModelSeed,
        SeedResolution,
        StaticBoundProvider,
        StoreBoundProvider,
    )
    from repro.pipeline.cache import (
        cache_stats,
        clear_caches,
        get_cache_dir,
        set_cache_dir,
        shared_connected_subsets,
        shared_permutation_table,
    )
    from repro.pipeline.pipeline import BatchItem, MappingPipeline
    from repro.pipeline.portfolio import PortfolioMapper
    from repro.pipeline.registry import (
        Mapper,
        MapperRegistry,
        available_mappers,
        get_mapper,
        register_mapper,
        resolve_mapper_name,
    )


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
