"""Service-facing entry point for the per-architecture artefact caches.

The implementation lives in :mod:`repro.arch.cache` — the cached artefacts
(:class:`~repro.arch.permutations.PermutationTable`,
:func:`~repro.arch.subsets.connected_subsets`) depend only on the
architecture layer, and keeping the code there lets the exact engines use
the caches without depending on this orchestration package.  This module
re-exports the API under the pipeline namespace, where batch-mapping users
look for it.
"""

from repro.arch.cache import (
    MAX_ENTRIES,
    cache_stats,
    clear_caches,
    shared_connected_subsets,
    shared_permutation_table,
)

__all__ = [
    "MAX_ENTRIES",
    "shared_permutation_table",
    "shared_connected_subsets",
    "cache_stats",
    "clear_caches",
]
