"""Service-facing entry point for the per-architecture artefact caches.

The implementation lives in :mod:`repro.arch.cache` — the cached artefacts
(:class:`~repro.arch.permutations.PermutationTable`,
:func:`~repro.arch.subsets.connected_subsets`) depend only on the
architecture layer, and keeping the code there lets the exact engines use
the caches without depending on this orchestration package.  This module
re-exports the API under the pipeline namespace, where batch-mapping users
look for it.

The in-memory caches are backed by an optional on-disk warm-start layer
(:mod:`repro.arch.diskcache`): point :func:`set_cache_dir` — or the
``REPRO_CACHE_DIR`` environment variable — at a directory and permutation
tables survive process restarts.
"""

from repro.arch.cache import (
    CACHE_DIR_ENV,
    MAX_ENTRIES,
    cache_stats,
    clear_caches,
    get_cache_dir,
    reset_cache_dir,
    set_cache_dir,
    shared_connected_subsets,
    shared_permutation_table,
)

__all__ = [
    "MAX_ENTRIES",
    "CACHE_DIR_ENV",
    "set_cache_dir",
    "reset_cache_dir",
    "get_cache_dir",
    "shared_permutation_table",
    "shared_connected_subsets",
    "cache_stats",
    "clear_caches",
]
