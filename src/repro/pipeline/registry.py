"""The mapper backend registry.

Every mapping engine — exact, heuristic or composite — is reachable through
one entry point::

    from repro.pipeline import get_mapper

    mapper = get_mapper("sat", coupling, strategy="odd", use_subsets=True)
    result = mapper.map(circuit)

A *mapper* is anything satisfying the :class:`Mapper` protocol: it exposes a
``map(circuit) -> MappingResult`` method.  Factories are registered by name
(plus optional aliases) and receive the target coupling map followed by
engine-specific keyword options; the built-in engines accept strategy names
(``strategy="odd"``) as well as strategy instances.

Third-party engines can join the registry at runtime::

    from repro.pipeline import register_mapper

    @register_mapper("annealer", aliases=("sa",))
    def _build_annealer(coupling, **options):
        return MyAnnealingMapper(coupling, **options)

The built-in factories import their engine classes lazily so that this
module stays importable from anywhere in the package without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, runtime_checkable

from repro.arch.coupling import CouplingMap
from repro.circuit.circuit import QuantumCircuit
from repro.exact.result import MappingResult


@runtime_checkable
class Mapper(Protocol):
    """Structural interface every registered mapping engine satisfies."""

    def map(self, circuit: QuantumCircuit) -> MappingResult:
        """Map *circuit* to the engine's architecture."""
        ...


MapperFactory = Callable[..., Mapper]


class MapperRegistry:
    """Name-indexed collection of mapper factories.

    A module-level default instance backs the :func:`register_mapper` /
    :func:`get_mapper` convenience functions; independent registries can be
    created for testing or embedding.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, MapperFactory] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Optional[MapperFactory] = None,
        *,
        aliases: Sequence[str] = (),
        overwrite: bool = False,
    ):
        """Register *factory* under *name* (usable as a decorator).

        Args:
            name: Canonical engine name (case-insensitive).
            factory: Callable ``factory(coupling, **options) -> Mapper``.
                When omitted the call returns a decorator.
            aliases: Additional names resolving to the same factory.
            overwrite: Allow replacing an existing registration.

        Raises:
            ValueError: When a name is already taken and *overwrite* is off.
        """
        if factory is None:
            def decorator(func: MapperFactory) -> MapperFactory:
                self.register(name, func, aliases=aliases, overwrite=overwrite)
                return func
            return decorator

        key = name.lower()
        taken = [
            candidate
            for candidate in (key, *[alias.lower() for alias in aliases])
            if not overwrite and (candidate in self._factories or candidate in self._aliases)
        ]
        if taken:
            raise ValueError(f"mapper name(s) already registered: {taken}")
        self._factories[key] = factory
        self._aliases.pop(key, None)
        for alias in aliases:
            self._aliases[alias.lower()] = key
        return factory

    def resolve(self, name: str) -> str:
        """Canonical name for *name* (which may be an alias).

        Raises:
            KeyError: When the name is unknown.
        """
        key = name.lower()
        key = self._aliases.get(key, key)
        if key not in self._factories:
            raise KeyError(
                f"unknown mapper {name!r}; available: {self.names()}"
            )
        return key

    def create(self, name: str, coupling: CouplingMap, **options: Any) -> Mapper:
        """Instantiate the engine registered under *name*."""
        return self._factories[self.resolve(name)](coupling, **options)

    def names(self) -> List[str]:
        """Sorted canonical engine names (aliases excluded)."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except KeyError:
            return False
        return True


#: The default registry used by the module-level convenience functions.
DEFAULT_REGISTRY = MapperRegistry()


def register_mapper(
    name: str,
    factory: Optional[MapperFactory] = None,
    *,
    aliases: Sequence[str] = (),
    overwrite: bool = False,
):
    """Register a factory in the default registry (see :meth:`MapperRegistry.register`)."""
    return DEFAULT_REGISTRY.register(name, factory, aliases=aliases, overwrite=overwrite)


def get_mapper(name: str, coupling: CouplingMap, **options: Any) -> Mapper:
    """Instantiate a mapping engine from the default registry by name.

    Args:
        name: Registered engine name or alias (``"sat"``, ``"dp"``,
            ``"stochastic"``, ``"sabre"``, ``"portfolio"``, ...).
        coupling: Target architecture.
        options: Engine-specific constructor options; ``strategy`` may be a
            name from :func:`repro.exact.strategies.available_strategies` or
            a :class:`~repro.exact.strategies.PermutationStrategy` instance.

    Raises:
        KeyError: When the engine name is unknown.
    """
    return DEFAULT_REGISTRY.create(name, coupling, **options)


def available_mappers() -> List[str]:
    """Canonical engine names registered in the default registry."""
    return DEFAULT_REGISTRY.names()


def resolve_mapper_name(name: str) -> str:
    """Canonical name for *name* in the default registry (KeyError if unknown)."""
    return DEFAULT_REGISTRY.resolve(name)


# ----------------------------------------------------------------------
# Built-in engines.  The factories import lazily: this module must stay
# importable while repro.exact / repro.heuristic are still initialising.
# ----------------------------------------------------------------------
def _resolved_strategy(options: Dict[str, Any]) -> Dict[str, Any]:
    """Return a copy of *options* with a string ``strategy`` instantiated."""
    strategy = options.get("strategy")
    if isinstance(strategy, str):
        from repro.exact.strategies import get_strategy

        options = dict(options)
        options["strategy"] = get_strategy(strategy)
    return options


@register_mapper("sat")
def _build_sat_mapper(coupling: CouplingMap, **options: Any) -> Mapper:
    from repro.exact.sat_mapper import SATMapper

    return SATMapper(coupling, **_resolved_strategy(options))


@register_mapper("dp")
def _build_dp_mapper(coupling: CouplingMap, **options: Any) -> Mapper:
    from repro.exact.dp_mapper import DPMapper

    return DPMapper(coupling, **_resolved_strategy(options))


@register_mapper("stochastic")
def _build_stochastic_mapper(coupling: CouplingMap, **options: Any) -> Mapper:
    from repro.heuristic.stochastic_swap import StochasticSwapMapper

    return StochasticSwapMapper(coupling, **options)


@register_mapper("sabre", aliases=("sabre_lite",))
def _build_sabre_mapper(coupling: CouplingMap, **options: Any) -> Mapper:
    from repro.heuristic.sabre_lite import SabreLiteMapper

    return SabreLiteMapper(coupling, **options)


@register_mapper("portfolio")
def _build_portfolio_mapper(coupling: CouplingMap, **options: Any) -> Mapper:
    from repro.pipeline.portfolio import PortfolioMapper

    return PortfolioMapper(coupling, **_resolved_strategy(options))


@register_mapper("sat_split", aliases=("split",))
def _build_split_sat_mapper(coupling: CouplingMap, **options: Any) -> Mapper:
    from repro.exact.splitting import SplitSATMapper

    return SplitSATMapper(coupling, **_resolved_strategy(options))


__all__ = [
    "Mapper",
    "MapperFactory",
    "MapperRegistry",
    "DEFAULT_REGISTRY",
    "register_mapper",
    "get_mapper",
    "available_mappers",
    "resolve_mapper_name",
]
