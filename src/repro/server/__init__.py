"""Network serving layer: HTTP/WebSocket front end over the mapping service.

The package turns the in-process :class:`~repro.service.service.MappingService`
into something that listens on a socket and scales past one process:

* :mod:`repro.server.protocol` — the versioned typed-message wire contract
  (one validated dataclass per message, a ``(type, version)`` registry,
  strict JSON conversions, and the service-error → HTTP status table).
* :mod:`repro.server.wire` — hand-rolled HTTP/1.1 request/response plumbing
  and RFC 6455 WebSocket framing over :mod:`asyncio` streams (stdlib only,
  both server and client side — the client side is what the supervisor
  proxies through).
* :mod:`repro.server.app` — :class:`~repro.server.app.JobServer`, the
  single-process server exposing the job lifecycle (``POST /v1/jobs``,
  ``GET /v1/jobs/{id}``, ``GET /v1/jobs/{id}/result``, ``GET /v1/stats``,
  ``GET /v1/healthz``, ``POST /v1/cache/prune``) plus a WebSocket
  ``/v1/stream`` pushing job state transitions.
* :mod:`repro.server.worker` — the ``python -m repro.server.worker`` entry
  point a supervisor spawns (one :class:`JobServer` per process, graceful
  SIGTERM drain).
* :mod:`repro.server.supervisor` — the multi-process parent: spawns N
  workers over the shared SQLite result store, routes by queue depth,
  restarts crashed workers, broadcasts cache invalidations and fans worker
  event streams into one.

Everything is importable lazily; importing :mod:`repro.server` does not pull
the asyncio server machinery into processes that only need the protocol.
"""

from repro.server.protocol import (
    PROTOCOL_VERSION,
    ErrorEnvelope,
    ProtocolError,
    from_wire,
    http_status_for_code,
    to_wire,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ErrorEnvelope",
    "ProtocolError",
    "from_wire",
    "to_wire",
    "http_status_for_code",
]
