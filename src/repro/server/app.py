"""Single-process HTTP/WebSocket server over one :class:`MappingService`.

:class:`JobServer` is the unit the supervisor scales horizontally: one
process, one asyncio loop, one mapping service, one listening socket.  It
exposes the full job lifecycle under the versioned ``/v1`` prefix:

=========  =======================  ==========================================
method     path                     meaning
=========  =======================  ==========================================
POST       /v1/jobs                 submit a circuit (SubmitRequest body)
GET        /v1/jobs/{id}            job status snapshot
DELETE     /v1/jobs/{id}            cancel a job (cooperative interrupt)
GET        /v1/jobs/{id}/result     full result (``?wait=SECONDS`` to block)
GET        /v1/stats                service + store counters and gauges
GET        /v1/healthz              liveness + the queue-depth routing gauges
POST       /v1/cache/prune          prune the result store / flush the LRU
GET        /v1/stream               WebSocket: job state transition events
=========  =======================  ==========================================

Every body in both directions is a :mod:`repro.server.protocol` envelope;
every failure is an :class:`~repro.server.protocol.ErrorEnvelope` whose
HTTP status comes from the service-error code table.  Connections are
keep-alive; request handling is fully async (the service already keeps
solver work off the event loop).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Any, Dict, Optional, Tuple

from repro.circuit.qasm import parse_qasm
from repro.server import wire
from repro.server.protocol import (
    CancelRequest,
    ErrorEnvelope,
    HealthReport,
    JobStatus,
    ProtocolError,
    PruneReport,
    PruneRequest,
    ResultPayload,
    StatsReport,
    StreamEvent,
    SubmitRequest,
    from_wire,
)
from repro.service.errors import ServiceError
from repro.service.service import DONE, FAILED, MappingService

#: Longest a ``?wait=`` result long-poll may block (seconds).
MAX_RESULT_WAIT_SECONDS = 300.0


def _error_response(error: ServiceError, *, keep_alive: bool = True) -> bytes:
    envelope = ErrorEnvelope.from_error(error)
    return wire.json_response(
        envelope.http_status, envelope.to_wire(), keep_alive=keep_alive
    )


class JobServer:
    """The HTTP/WebSocket front end of one mapping service process.

    Args:
        service: The (not yet started) mapping service to expose.
        host/port: Bind address; port ``0`` picks a free port (read the
            resolved one from :attr:`port` after :meth:`start`).
        worker_id: Name stamped into health reports and stream events —
            the supervisor uses it to prefix job ids.
        cache_dir: The persistent cache directory backing the service's
            store, if any (reported by the prune endpoint).
    """

    def __init__(
        self,
        service: MappingService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_id: str = "w0",
        cache_dir: Optional[str] = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.cache_dir = cache_dir
        self.draining = False
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "JobServer":
        """Start the service and bind the listening socket."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=wire.MAX_HEADER_BYTES,
            reuse_address=True,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        return self

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, then drain the service.

        Open keep-alive connections are closed after their in-progress
        request; the service finishes in-flight solves and fails
        still-queued jobs with ``ServiceUnavailable`` (see
        :meth:`MappingService.stop`).
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain)

    async def __aenter__(self) -> "JobServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(drain=exc_type is None)

    async def serve_forever(self) -> None:
        """Block until the server is closed (for worker main loops)."""
        assert self._server is not None, "start() the server first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - cancellation path
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await wire.read_request(reader)
                except wire.WireError as error:
                    envelope = ErrorEnvelope(
                        error_code="protocol-error",
                        message=str(error),
                        http_status=error.status,
                    )
                    writer.write(
                        wire.json_response(
                            error.status, envelope.to_wire(), keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                self._requests_served += 1
                if request.path == "/v1/stream" and request.is_websocket_upgrade:
                    await self._handle_stream(request, reader, writer)
                    return
                status, envelope = await self._dispatch(request)
                keep_alive = request.keep_alive and not self.draining
                writer.write(
                    wire.json_response(status, envelope, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """Route one request; always returns a protocol envelope."""
        try:
            return await self._route(request)
        except ServiceError as error:
            envelope = ErrorEnvelope.from_error(error)
            return envelope.http_status, envelope.to_wire()
        except Exception as error:  # noqa: BLE001 - last-resort server error
            envelope = ErrorEnvelope(
                error_code="service-error",
                message=f"internal server error: {error}",
                details={"error_type": type(error).__name__},
            )
            return envelope.http_status, envelope.to_wire()

    async def _route(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        path, method = request.path, request.method
        if path == "/v1/jobs":
            if method != "POST":
                raise _method_not_allowed(method, path)
            return await self._submit(request)
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/result"):
                job_id = tail[: -len("/result")]
                if method != "GET":
                    raise _method_not_allowed(method, path)
                return await self._result(job_id, request)
            if "/" not in tail:
                if method == "GET":
                    return self._status(tail)
                if method == "DELETE":
                    return self._cancel(tail, request)
                raise _method_not_allowed(method, path)
        if path == "/v1/stats":
            if method != "GET":
                raise _method_not_allowed(method, path)
            return self._stats()
        if path == "/v1/healthz":
            if method != "GET":
                raise _method_not_allowed(method, path)
            return self._healthz()
        if path == "/v1/cache/prune":
            if method != "POST":
                raise _method_not_allowed(method, path)
            return await self._prune(request)
        if path == "/v1/stream":
            raise ProtocolError(
                "/v1/stream requires a WebSocket upgrade "
                "(Connection: Upgrade, Upgrade: websocket)"
            )
        not_found = ServiceError(f"no such endpoint: {method} {path}")
        not_found.code = "not-found"
        raise not_found

    # ------------------------------------------------------------------
    # Endpoint handlers
    # ------------------------------------------------------------------
    async def _submit(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        message = from_wire(request.json())
        if not isinstance(message, SubmitRequest):
            raise ProtocolError(
                f"POST /v1/jobs expects a submit-request, got {message.TYPE}"
            )
        try:
            circuit = parse_qasm(
                message.qasm, name=message.circuit_name or "submitted_circuit"
            )
        except Exception as error:  # noqa: BLE001 - parser raises ValueError family
            raise ProtocolError(
                f"QASM body failed to parse: {error}",
                details={"error_type": type(error).__name__},
            ) from error
        job_id = await self.service.submit(
            circuit,
            arch=message.arch,
            engine=message.engine,
            options=dict(message.options) or None,
        )
        snapshot = self.service.status(job_id)
        return 202, JobStatus.from_snapshot(snapshot).to_wire()

    def _status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        snapshot = self.service.status(job_id)
        return 200, JobStatus.from_snapshot(snapshot).to_wire()

    def _cancel(
        self, job_id: str, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """``DELETE /v1/jobs/{id}``: cooperatively cancel one job.

        Returns the post-cancel snapshot (status 200) — cancelling an
        already-terminal job is a no-op, not an error, so retried DELETEs
        are safe.
        """
        reason = None
        body = request.json()
        if body:
            message = from_wire(body)
            if not isinstance(message, CancelRequest):
                raise ProtocolError(
                    "DELETE /v1/jobs/{id} expects a cancel-request body, "
                    f"got {message.TYPE}"
                )
            reason = message.reason
        snapshot = self.service.cancel(job_id, reason=reason)
        return 200, JobStatus.from_snapshot(snapshot).to_wire()

    async def _result(
        self, job_id: str, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        wait_raw = request.query.get("wait")
        if wait_raw is not None:
            try:
                wait = min(float(wait_raw), MAX_RESULT_WAIT_SECONDS)
            except ValueError:
                raise ProtocolError(
                    f"invalid wait parameter {wait_raw!r}"
                ) from None
            try:
                await self.service.result(job_id, timeout=wait)
            except asyncio.TimeoutError:
                pass  # fall through to the snapshot below (202)
            except ServiceError:
                pass  # job failed; the snapshot carries the structured error
        snapshot = self.service.status(job_id)
        if snapshot["status"] == DONE:
            result = await self.service.result(job_id)
            payload = ResultPayload(
                job_id=job_id,
                result=result.to_dict(),
                provenance=dict(snapshot.get("provenance", {})),
            )
            return 200, payload.to_wire()
        if snapshot["status"] == FAILED:
            error_dict = snapshot.get("error") or {}
            envelope = ErrorEnvelope(
                error_code=error_dict.get("code", "mapping-failed"),
                message=error_dict.get("message", "job failed"),
                details=dict(error_dict.get("details", {})),
                http_status=ErrorEnvelope.from_error(
                    _as_service_error(error_dict)
                ).http_status,
            )
            return envelope.http_status, envelope.to_wire()
        return 202, JobStatus.from_snapshot(snapshot).to_wire()

    def _stats(self) -> Tuple[int, Dict[str, Any]]:
        stats = self.service.stats()
        stats["server"] = {
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "port": self.port,
            "requests_served": self._requests_served,
            "uptime_seconds": (
                time.monotonic() - self.started_at
                if self.started_at is not None
                else 0.0
            ),
            "draining": self.draining,
        }
        report = StatsReport(role="worker", stats=stats)
        return 200, report.to_wire()

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        stats = self.service.stats()
        report = HealthReport(
            ok=not self.draining,
            role="worker",
            pid=os.getpid(),
            queue_depth=stats["queue_depth"],
            in_flight=stats["in_flight"],
            worker_id=self.worker_id,
            draining=self.draining,
        )
        return 200, report.to_wire()

    async def _prune(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        body = request.json()
        if body:
            message = from_wire(body)
            if not isinstance(message, PruneRequest):
                raise ProtocolError(
                    "POST /v1/cache/prune expects a prune-request, got "
                    f"{message.TYPE}"
                )
        else:
            message = PruneRequest()
        store = self.service.store
        loop = asyncio.get_running_loop()
        if message.ttl_seconds is not None:
            pruned = await loop.run_in_executor(
                None, store.prune_report, message.ttl_seconds
            )
        else:
            pruned = {"rows_pruned": 0, "bytes_reclaimed": 0,
                      "memory_dropped": 0, "ttl_seconds": None}
        memory_dropped = pruned["memory_dropped"]
        if message.flush_memory:
            # Result LRU only — disk-backed artifact rows survive the
            # broadcast (they are skeleton-keyed facts, never stale the way
            # a fingerprinted result can be) and are TTL-pruned above.
            memory_dropped += store.drop_memory()
        report = PruneReport(
            rows_pruned=pruned["rows_pruned"],
            bytes_reclaimed=pruned["bytes_reclaimed"],
            memory_dropped=memory_dropped,
            artifact_rows_pruned=pruned.get("artifact_rows_pruned", 0),
            artifact_bytes_reclaimed=pruned.get("artifact_bytes_reclaimed", 0),
            ttl_seconds=message.ttl_seconds,
            cache_dir=self.cache_dir,
        )
        return 200, report.to_wire()

    # ------------------------------------------------------------------
    # WebSocket stream
    # ------------------------------------------------------------------
    async def _handle_stream(
        self,
        request: wire.HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        if not key:
            writer.write(
                wire.json_response(
                    400,
                    ErrorEnvelope(
                        error_code="protocol-error",
                        message="missing Sec-WebSocket-Key",
                        http_status=400,
                    ).to_wire(),
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        writer.write(
            wire.serialize_response(
                101,
                extra_headers={
                    "Upgrade": "websocket",
                    "Connection": "Upgrade",
                    "Sec-WebSocket-Accept": wire.websocket_accept(key),
                },
            )
        )
        await writer.drain()
        socket = wire.WebSocketConnection(reader, writer, client=False)
        queue = self.service.subscribe()
        receive_task = asyncio.ensure_future(socket.receive())
        event_task = asyncio.ensure_future(queue.get())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {receive_task, event_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if receive_task in done:
                    # The only client messages we expect are pings (answered
                    # inside receive()) and close; anything else is ignored.
                    if receive_task.result() is None:
                        break
                    receive_task = asyncio.ensure_future(socket.receive())
                if event_task in done:
                    event = StreamEvent.from_service_event(
                        event_task.result(), worker=self.worker_id
                    )
                    await socket.send_text(event.to_json())
                    event_task = asyncio.ensure_future(queue.get())
        except (wire.WireError, ConnectionError, OSError):
            pass  # subscriber went away mid-send
        finally:
            self.service.unsubscribe(queue)
            for task in (receive_task, event_task):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            await socket.close()


def _method_not_allowed(method: str, path: str) -> ServiceError:
    error = ServiceError(f"method {method} not allowed on {path}")
    error.code = "method-not-allowed"
    return error


def _as_service_error(error_dict: Dict[str, Any]) -> ServiceError:
    rebuilt = ServiceError(
        error_dict.get("message", "job failed"),
        details=dict(error_dict.get("details", {})),
    )
    rebuilt.code = error_dict.get("code", "mapping-failed")
    return rebuilt


def _json_dumps(value: Any) -> str:  # pragma: no cover - debugging helper
    return json.dumps(value, sort_keys=True)


__all__ = ["JobServer", "MAX_RESULT_WAIT_SECONDS"]
