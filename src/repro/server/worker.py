"""Worker process entry point: one :class:`JobServer` per process.

The supervisor spawns ``python -m repro.server.worker --port N ...`` once
per worker.  Each worker owns a full :class:`MappingService` over its own
connection to the shared SQLite result store, binds a private loopback
port, and prints a single JSON readiness line on stdout once listening::

    {"event": "listening", "worker_id": "w0", "port": 41234, "pid": 12345}

Shutdown is graceful: SIGTERM (or SIGINT) closes the listening socket,
finishes in-flight jobs, fails still-queued jobs with a structured
``service-unavailable`` error and exits 0.  The module is also usable
stand-alone as a single-process server (that is exactly what
``repro-map listen --workers 0`` runs in-process).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Any, Dict, Optional, Sequence

from repro.arch import get_architecture
from repro.server.app import JobServer
from repro.service.service import MappingService
from repro.service.store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.worker",
        description="Run one mapping-service worker: an HTTP/WebSocket "
        "server over a MappingService (normally spawned by the supervisor).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to bind (0 picks a free one; the readiness line on "
        "stdout reports the resolved port)",
    )
    parser.add_argument("--worker-id", default="w0")
    parser.add_argument(
        "--arch", action="append", default=None,
        help="architecture name; repeat to register several devices "
        "(default: ibm_qx4)",
    )
    parser.add_argument("--engine", default="dp")
    parser.add_argument(
        "--engine-options", default=None, metavar="JSON",
        help="engine constructor options as a JSON object",
    )
    parser.add_argument(
        "--service-workers", type=int, default=2,
        help="solver worker-pool size inside the mapping service",
    )
    parser.add_argument("--executor", default="thread",
                        choices=["thread", "process"])
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache directory holding the shared result store "
        "(defaults to $REPRO_CACHE_DIR; omit both for an in-memory store)",
    )
    parser.add_argument("--result-ttl", type=float, default=None)
    return parser


def build_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    worker_id: str = "w0",
    arch: Optional[Sequence[str]] = None,
    engine: str = "dp",
    engine_options: Optional[Dict[str, Any]] = None,
    service_workers: int = 2,
    executor: str = "thread",
    cache_dir: Optional[str] = None,
    result_ttl: Optional[float] = None,
) -> JobServer:
    """Assemble (but do not start) a worker's :class:`JobServer`.

    Shared between the subprocess entry point below and the in-process
    single-worker mode of ``repro-map listen --workers 0``.
    """
    from repro.pipeline.cache import get_cache_dir, set_cache_dir

    if cache_dir is not None:
        set_cache_dir(cache_dir)
    cache_dir = get_cache_dir()
    couplings = {}
    for name in arch or ["ibm_qx4"]:
        coupling = get_architecture(name)
        couplings[coupling.name] = coupling
    store = (
        ResultStore.at(cache_dir, ttl_seconds=result_ttl)
        if cache_dir is not None
        else ResultStore(ttl_seconds=result_ttl)
    )
    service = MappingService(
        couplings,
        engine=engine,
        engine_options=engine_options,
        store=store,
        workers=service_workers,
        executor=executor,
    )
    return JobServer(
        service, host=host, port=port, worker_id=worker_id, cache_dir=cache_dir
    )


async def _amain(args: argparse.Namespace) -> int:
    engine_options = (
        json.loads(args.engine_options) if args.engine_options else None
    )
    server = build_server(
        host=args.host,
        port=args.port,
        worker_id=args.worker_id,
        arch=args.arch,
        engine=args.engine,
        engine_options=engine_options,
        service_workers=args.service_workers,
        executor=args.executor,
        cache_dir=args.cache_dir,
        result_ttl=args.result_ttl,
    )
    await server.start()
    print(
        json.dumps(
            {
                "event": "listening",
                "worker_id": server.worker_id,
                "port": server.port,
                "pid": os.getpid(),
            }
        ),
        flush=True,
    )

    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            signal.signal(signum, lambda *_: stop_requested.set())
    await stop_requested.wait()
    await server.stop(drain=True)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
