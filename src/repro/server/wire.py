"""Hand-rolled HTTP/1.1 and WebSocket plumbing over asyncio streams.

The serving layer is stdlib-only by design, so this module implements the
small slice of HTTP/1.1 and RFC 6455 the job API needs, on both sides of
the wire:

* **Server side** — :func:`read_request` parses one request (request line,
  headers, ``Content-Length`` body) from a stream; :func:`serialize_response`
  renders one response.  Keep-alive is supported (the app loops over
  ``read_request`` per connection); chunked transfer encoding is not — the
  protocol layer's payloads are small JSON documents, and a client sending
  chunked bodies gets a clean 411.
* **Client side** — :func:`http_request` runs one request against a host
  and returns status, headers and body.  The supervisor proxies worker
  traffic through it; :func:`open_websocket` is the client half of the
  stream fan-in.
* **WebSocket** — :func:`websocket_accept` computes the handshake key;
  :class:`WebSocketConnection` frames/deframes text messages, answers pings
  transparently, unmasks client frames (and masks its own when acting as a
  client), reassembles fragmented messages and turns close frames into a
  ``None`` from :meth:`~WebSocketConnection.receive`.

Size limits are deliberately conservative: header blocks over 64 KiB and
bodies over ``MAX_BODY_BYTES`` are rejected before they are buffered, so a
misbehaving peer cannot balloon a worker's memory.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import random
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple
from urllib.parse import unquote, urlsplit

from repro import faults
from repro.server.protocol import ProtocolError

#: Upper bound on one request's header block.
MAX_HEADER_BYTES = 64 * 1024

#: Base of the jittered exponential backoff between client retries.
RETRY_BACKOFF_BASE_SECONDS = 0.1

#: Upper bound on any single retry pause.
RETRY_BACKOFF_CAP_SECONDS = 2.0

#: Upper bound on one request/response body (QASM sources are small).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: RFC 6455 handshake GUID.
WEBSOCKET_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes this layer handles.
OP_CONT, OP_TEXT, OP_BINARY, OP_CLOSE, OP_PING, OP_PONG = (
    0x0, 0x1, 0x2, 0x8, 0x9, 0xA,
)

_REASONS = {
    101: "Switching Protocols", 200: "OK", 202: "Accepted",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 411: "Length Required",
    413: "Payload Too Large", 499: "Client Closed Request",
    500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable", 504: "Gateway Timeout",
}


class WireError(Exception):
    """A peer violated the HTTP/WebSocket framing (not the message contract).

    Carries the HTTP status the server side should answer with before
    closing the connection.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class RetryableWireError(WireError):
    """A transport-level failure that a fresh attempt may well fix.

    Raised by the client helpers when the TCP layer fails (connection
    refused/reset, stream truncated) — conditions a fleet produces
    routinely during worker restarts.  Callers distinguish "retry this"
    (here) from "the peer is speaking garbage" (plain :class:`WireError`)
    by type, not by parsing messages.
    """

    retryable = True

    def __init__(self, message: str, status: int = 503):
        super().__init__(message, status=status)


def _retryable(error: BaseException) -> bool:
    """Whether a client-side attempt failure is worth retrying."""
    if isinstance(error, (ConnectionError, asyncio.IncompleteReadError)):
        return True
    if isinstance(error, WireError):
        # 502-family wire errors are truncated/refused upstream streams;
        # anything else (malformed peer output) will not improve on retry.
        return error.status in (502, 503)
    return isinstance(error, OSError)


async def _backoff(attempt: int) -> None:
    """Sleep the jittered exponential backoff for retry number *attempt*."""
    pause = min(
        RETRY_BACKOFF_CAP_SECONDS,
        RETRY_BACKOFF_BASE_SECONDS * (2 ** (attempt - 1)),
    )
    await asyncio.sleep(pause * (0.5 + random.random() / 2.0))


@dataclass
class HTTPRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return "close" not in connection

    @property
    def is_websocket_upgrade(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )

    def json(self) -> Any:
        """The body parsed as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ProtocolError(f"body is not valid JSON: {error}") from error


def _parse_query(raw: str) -> Dict[str, str]:
    query: Dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        query[unquote(key)] = unquote(value)
    return query


def _parse_headers(lines) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise WireError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_header_block(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read exactly through the blank line; ``None`` on EOF before any byte.

    ``readuntil`` consumes nothing past the separator, which matters for
    WebSocket upgrades: frames the peer sends immediately after its
    handshake stay in the stream buffer.
    """
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError("connection closed mid-headers") from error
    except asyncio.LimitOverrunError as error:
        raise WireError("header block too large", status=413) from error


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> Optional[HTTPRequest]:
    """Parse one request from *reader*; ``None`` on clean end of stream.

    Raises:
        WireError: Malformed framing, oversized payloads, or unsupported
            transfer encodings (the carried status says how to answer).
    """
    block = await _read_header_block(reader)
    if block is None:
        return None
    head = block[:-4]
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as error:
        raise WireError(f"malformed request line: {error}") from error
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise WireError(f"unsupported HTTP version {version!r}")
    headers = _parse_headers(lines[1:])
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise WireError("chunked request bodies are not supported", status=411)
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise WireError(f"invalid Content-Length {length_header!r}") from None
    if length < 0 or length > max_body:
        raise WireError("request body too large", status=413)
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as error:
        raise WireError("connection closed mid-body") from error
    parts = urlsplit(target)
    return HTTPRequest(
        method=method.upper(),
        target=target,
        path=parts.path,
        query=_parse_query(parts.query),
        headers=headers,
        body=body,
        version=version,
    )


def serialize_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Render one HTTP/1.1 response (always with ``Content-Length``)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int, envelope: Dict[str, Any], *, keep_alive: bool = True
) -> bytes:
    """Render a JSON envelope as a complete response."""
    return serialize_response(
        status,
        json.dumps(envelope, sort_keys=True).encode("utf-8"),
        keep_alive=keep_alive,
    )


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
async def _read_response(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> Tuple[int, Dict[str, str], bytes]:
    block = await _read_header_block(reader)
    if block is None:
        raise WireError("connection closed before any response", status=502)
    lines = block[:-4].decode("latin-1").split("\r\n")
    try:
        _, status_text, _ = lines[0].split(" ", 2)
        status = int(status_text)
    except ValueError as error:
        raise WireError(f"malformed status line {lines[0]!r}") from error
    headers = _parse_headers(lines[1:])
    length = int(headers.get("content-length", "0") or "0")
    if length > max_body:
        raise WireError("response body too large", status=502)
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as error:
        raise WireError("connection closed mid-response", status=502) from error
    return status, headers, body


async def http_request(
    host: str,
    port: int,
    method: str,
    target: str,
    *,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 30.0,
    retries: int = 0,
) -> Tuple[int, Dict[str, str], bytes]:
    """Run one HTTP/1.1 request; returns ``(status, headers, body)``.

    One connection per request (``Connection: close``) — the proxy hop is
    local, so connection reuse buys little and error handling stays simple.

    Transport failures (refused/reset connections, truncated streams) are
    raised as :class:`RetryableWireError` so callers see a structured,
    explicitly-retryable condition instead of a raw :class:`ConnectionError`.
    With ``retries > 0`` the helper performs that many additional attempts
    itself, spaced by jittered exponential backoff, before giving up.
    """

    async def _run() -> Tuple[int, Dict[str, str], bytes]:
        if faults.ARMED:
            mode = faults.fire("wire.write")
            if mode == "drop":
                raise RetryableWireError("injected fault dropped the request")
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = body or b""
            lines = [
                f"{method} {target} HTTP/1.1",
                f"Host: {host}:{port}",
                f"Content-Length: {len(payload)}",
                "Connection: close",
            ]
            if payload:
                lines.append("Content-Type: application/json")
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            writer.write(
                ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload
            )
            await writer.drain()
            status, response_headers, response_body = await _read_response(reader)
            if faults.ARMED:
                mode = faults.fire("wire.read")
                if mode == "drop":
                    raise RetryableWireError("injected fault dropped the response")
                if mode == "corrupt":
                    response_body = faults.mangle("wire.read", response_body)
            return status, response_headers, response_body
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    attempt = 0
    while True:
        try:
            return await asyncio.wait_for(_run(), timeout)
        except RetryableWireError as error:
            last_error: BaseException = error
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as error:
            last_error = error
        except WireError as error:
            if not _retryable(error):
                raise
            last_error = error
        if attempt >= retries:
            if isinstance(last_error, RetryableWireError):
                raise last_error
            raise RetryableWireError(
                f"request to {host}:{port} failed: {last_error}"
            ) from last_error
        attempt += 1
        await _backoff(attempt)


# ----------------------------------------------------------------------
# WebSocket
# ----------------------------------------------------------------------
def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a handshake *key*."""
    digest = hashlib.sha1((key + WEBSOCKET_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


class WebSocketConnection:
    """Framing layer over an established (upgraded) stream pair.

    Args:
        reader/writer: The upgraded connection.
        client: Whether this side is the client — clients mask outgoing
            frames and expect unmasked incoming ones; servers the reverse.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        client: bool,
    ):
        self.reader = reader
        self.writer = writer
        self.client = client
        self.closed = False

    # -- sending -------------------------------------------------------
    def _frame(self, opcode: int, payload: bytes) -> bytes:
        header = bytes([0x80 | opcode])
        mask_bit = 0x80 if self.client else 0x00
        length = len(payload)
        if length < 126:
            header += bytes([mask_bit | length])
        elif length < 1 << 16:
            header += bytes([mask_bit | 126]) + struct.pack(">H", length)
        else:
            header += bytes([mask_bit | 127]) + struct.pack(">Q", length)
        if self.client:
            mask = os.urandom(4)
            masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
            return header + mask + masked
        return header + payload

    async def _send(self, opcode: int, payload: bytes) -> None:
        if self.closed:
            raise WireError("websocket already closed")
        self.writer.write(self._frame(opcode, payload))
        await self.writer.drain()

    async def send_text(self, text: str) -> None:
        """Send one unfragmented text frame.

        Under an armed ``wire.write`` fault in ``drop`` mode the frame is
        silently discarded — the lost-event case stream consumers must
        recover from via the ``?since`` replay cursor.
        """
        payload = text.encode("utf-8")
        if faults.ARMED:
            mode = faults.fire("wire.write")
            if mode == "drop":
                return
            if mode == "corrupt":
                payload = faults.mangle("wire.write", payload)
        await self._send(OP_TEXT, payload)

    async def send_ping(self, payload: bytes = b"") -> None:
        await self._send(OP_PING, payload)

    # -- receiving -----------------------------------------------------
    async def _read_exact(self, count: int) -> bytes:
        if count == 0:
            return b""
        try:
            return await self.reader.readexactly(count)
        except (asyncio.IncompleteReadError, ConnectionError) as error:
            raise WireError(f"websocket stream ended mid-frame: {error}") from error

    async def _read_frame(self) -> Tuple[bool, int, bytes]:
        first, second = await self._read_exact(2)
        fin = bool(first & 0x80)
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", await self._read_exact(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await self._read_exact(8))
        if length > MAX_BODY_BYTES:
            raise WireError("websocket frame too large", status=413)
        mask = await self._read_exact(4) if masked else b""
        payload = await self._read_exact(length)
        if masked:
            payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        return fin, opcode, payload

    async def receive(self) -> Optional[str]:
        """The next text message, or ``None`` once the peer closed.

        Pings are answered and skipped; fragmented text messages are
        reassembled; EOF and close frames both end the stream cleanly.
        """
        buffer = b""
        fragmented = False
        while True:
            try:
                fin, opcode, payload = await self._read_frame()
            except WireError:
                self.closed = True
                return None
            if opcode == OP_PING:
                try:
                    await self._send(OP_PONG, payload)
                except (WireError, ConnectionError):  # pragma: no cover
                    return None
                continue
            if opcode == OP_PONG:
                continue
            if opcode == OP_CLOSE:
                if not self.closed:
                    self.closed = True
                    try:
                        self.writer.write(self._frame(OP_CLOSE, payload[:2]))
                        await self.writer.drain()
                    except (ConnectionError, OSError):  # pragma: no cover
                        pass
                return None
            if opcode in (OP_TEXT, OP_BINARY):
                if fragmented:
                    raise WireError("interleaved websocket fragments")
                if faults.ARMED:
                    try:
                        mode = faults.fire("wire.read")
                    except faults.FaultInjectedError:
                        # Model a torn connection: consumers see the same
                        # clean end-of-stream a real reset produces.
                        self.closed = True
                        return None
                    if mode == "drop":
                        continue  # injected receive-side frame loss
                buffer = payload
                if fin:
                    return buffer.decode("utf-8", errors="replace")
                fragmented = True
                continue
            if opcode == OP_CONT:
                if not fragmented:
                    raise WireError("continuation frame without a start")
                buffer += payload
                if fin:
                    return buffer.decode("utf-8", errors="replace")
                continue
            raise WireError(f"unsupported websocket opcode {opcode:#x}")

    async def close(self, code: int = 1000) -> None:
        """Send a close frame (best effort) and close the transport."""
        if not self.closed:
            self.closed = True
            try:
                self.writer.write(self._frame(OP_CLOSE, struct.pack(">H", code)))
                await self.writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def open_websocket(
    host: str, port: int, path: str, *, timeout: float = 10.0, retries: int = 0
) -> WebSocketConnection:
    """Open a client WebSocket to ``ws://host:port{path}``.

    Performs the HTTP upgrade handshake (including the accept-key check)
    and returns the framed connection.  Transport failures surface as
    :class:`RetryableWireError`; with ``retries > 0`` the helper re-attempts
    the handshake that many times with jittered backoff first — stream
    consumers that track a ``?since`` cursor lose nothing across the gap.
    """

    async def _run() -> WebSocketConnection:
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        )
        writer.write(request.encode("latin-1"))
        await writer.drain()
        # readuntil consumes exactly through the blank line, so bytes of
        # the first frames the server sends right away stay in the buffer.
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as error:
            writer.close()
            raise WireError(f"websocket handshake failed: {error}", status=502)
        lines = head.decode("latin-1").split("\r\n")
        try:
            _, status_text, _ = lines[0].split(" ", 2)
            status = int(status_text)
        except ValueError as error:
            writer.close()
            raise WireError(f"malformed status line {lines[0]!r}") from error
        headers = _parse_headers(line for line in lines[1:] if line)
        if status != 101:
            writer.close()
            raise WireError(
                f"websocket upgrade refused with status {status}", status=502
            )
        expected = websocket_accept(key)
        if headers.get("sec-websocket-accept") != expected:
            writer.close()
            raise WireError("websocket accept key mismatch", status=502)
        return WebSocketConnection(reader, writer, client=True)

    attempt = 0
    while True:
        try:
            return await asyncio.wait_for(_run(), timeout)
        except (
            RetryableWireError,
            ConnectionError,
            asyncio.IncompleteReadError,
            OSError,
        ) as error:
            last_error: BaseException = error
        except WireError as error:
            if not _retryable(error):
                raise
            last_error = error
        if attempt >= retries:
            if isinstance(last_error, RetryableWireError):
                raise last_error
            raise RetryableWireError(
                f"websocket to {host}:{port}{path} failed: {last_error}"
            ) from last_error
        attempt += 1
        await _backoff(attempt)


__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "RETRY_BACKOFF_BASE_SECONDS",
    "RETRY_BACKOFF_CAP_SECONDS",
    "WEBSOCKET_GUID",
    "WireError",
    "RetryableWireError",
    "HTTPRequest",
    "read_request",
    "serialize_response",
    "json_response",
    "http_request",
    "websocket_accept",
    "WebSocketConnection",
    "open_websocket",
]
