"""Multi-process supervisor: N worker processes behind one public port.

The :class:`Supervisor` is a protocol-aware reverse proxy plus process
manager.  It spawns ``python -m repro.server.worker`` subprocesses (one
:class:`~repro.server.app.JobServer` each, all over the same on-disk SQLite
result store), binds the public port itself, and:

* **routes** new submissions to the least-loaded worker (smallest
  ``queue_depth + in_flight`` from the latest heartbeat, least-recently
  assigned wins ties) and namespaces job ids as ``w0-job-000001`` so every
  later ``GET`` finds its way back to the owning worker;
* **monitors** workers with a heartbeat poll of ``GET /v1/healthz`` and
  restarts any worker whose process died or that missed
  :data:`HEARTBEAT_MISS_LIMIT` consecutive heartbeats (kill -9 included —
  jobs that lived only in that worker's memory are reported as upstream
  failures and can simply be resubmitted; completed work survives in the
  shared store);
* **broadcasts** cache invalidations: ``POST /v1/cache/prune`` prunes the
  shared SQLite rows through one worker, then tells every worker to drop
  its in-memory LRU so no stale fingerprint is served from memory;
* **fans in** the workers' ``/v1/stream`` WebSockets into a single public
  ``/v1/stream`` (job ids rewritten to their namespaced form), reconnecting
  whenever a worker restarts; every public envelope carries a monotonically
  increasing ``seq`` and the last :data:`STREAM_REPLAY_SIZE` envelopes are
  retained, so a subscriber that reconnects with ``?since=<seq>`` replays
  the transitions it missed before resuming live delivery;
* **drains** on SIGTERM: the public socket closes first, then every worker
  gets SIGTERM and finishes in-flight jobs before the supervisor exits.

Everything speaks :mod:`repro.server.protocol` envelopes; worker
connection failures surface as ``upstream-failed`` (HTTP 502) error
envelopes rather than hung sockets.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro import faults
from repro.server import wire
from repro.server.protocol import (
    ErrorEnvelope,
    HealthReport,
    ProtocolError,
    PruneReport,
    PruneRequest,
    StatsReport,
    from_wire,
)
from repro.service.errors import ServiceError, ServiceUnavailable, StoreError
from repro.service.store import JobJournal, JOURNAL_TERMINAL

#: Seconds between heartbeat polls of each worker.
HEARTBEAT_INTERVAL = 0.5
#: Consecutive failed heartbeats after which a worker is declared dead.
HEARTBEAT_MISS_LIMIT = 3
#: Seconds a freshly spawned worker gets to print its readiness line.
STARTUP_TIMEOUT = 60.0
#: Seconds a SIGTERM'd worker gets to drain before SIGKILL.
DRAIN_TIMEOUT = 60.0
#: Per-request timeout of supervisor → worker proxy calls.
UPSTREAM_TIMEOUT = 300.0
#: Capacity of each public stream subscriber queue (drop-oldest beyond it).
SUBSCRIBER_QUEUE_SIZE = 1024
#: Recent stream envelopes retained for ``?since=<seq>`` catch-up replay.
STREAM_REPLAY_SIZE = 4096


def _free_port(host: str = "127.0.0.1") -> int:
    """Ask the kernel for a currently free TCP port."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _upstream_error(worker_id: str, error: Exception) -> ServiceError:
    failed = ServiceError(
        f"worker {worker_id} did not answer: {error}",
        details={"worker": worker_id, "error_type": type(error).__name__},
    )
    failed.code = "upstream-failed"
    return failed


@dataclass
class WorkerHandle:
    """Everything the supervisor tracks about one worker process."""

    worker_id: str
    port: int = 0
    process: Optional[asyncio.subprocess.Process] = None
    restarts: int = 0
    healthy: bool = False
    missed_heartbeats: int = 0
    queue_depth: int = 0
    in_flight: int = 0
    last_assigned: float = 0.0
    stream_task: Optional[asyncio.Task] = field(default=None, repr=False)

    @property
    def load(self) -> int:
        return self.queue_depth + self.in_flight

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def describe(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "port": self.port,
            "pid": self.pid,
            "healthy": self.healthy,
            "restarts": self.restarts,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
        }


class Supervisor:
    """Spawn, monitor and proxy a fleet of mapping-service workers.

    Args:
        workers: Number of worker processes.
        host/port: Public bind address (port ``0`` picks a free port).
        arch: Architecture names every worker registers.
        engine: Default mapping engine of every worker.
        engine_options: Engine constructor options forwarded verbatim.
        service_workers: Solver pool size inside each worker.
        executor: ``thread`` or ``process`` solver pool per worker.
        cache_dir: Shared persistent cache directory.  ``None`` creates a
            private temporary directory so the workers still share one
            SQLite store (cross-worker cache hits are the point of the
            supervisor).
        result_ttl: Result-store TTL forwarded to every worker.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        arch: Sequence[str] = ("ibm_qx4",),
        engine: str = "dp",
        engine_options: Optional[Dict[str, Any]] = None,
        service_workers: int = 2,
        executor: str = "thread",
        cache_dir: Optional[str] = None,
        result_ttl: Optional[float] = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.host = host
        self.port = port
        self.num_workers = workers
        self.arch = list(arch)
        self.engine = engine
        self.engine_options = dict(engine_options or {})
        self.service_workers = service_workers
        self.executor = executor
        self._temp_cache: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None:
            self._temp_cache = tempfile.TemporaryDirectory(
                prefix="repro-supervisor-"
            )
            cache_dir = self._temp_cache.name
        self.cache_dir = cache_dir
        self.result_ttl = result_ttl
        self.workers: List[WorkerHandle] = []
        self.draining = False
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._subscribers: set = set()
        self._stream_seq = 0
        self._stream_replay: Deque[Dict[str, Any]] = deque(
            maxlen=STREAM_REPLAY_SIZE
        )
        self._requests_served = 0
        #: Durable submit journal (shares the workers' results.sqlite).
        #: ``None`` when opening it failed — serving continues, durability
        #: degrades, and stats report the condition truthfully.
        self.journal: Optional[JobJournal] = None
        self._journal_errors = 0
        self._submit_seq = 0
        #: Redelivered jobs keep their original public id:
        #: public id -> (current worker id, current worker-local id) ...
        self._aliases: Dict[str, Tuple[str, str]] = {}
        #: ... and the reverse, for rewriting worker payloads on the way out.
        self._redelivered_public: Dict[Tuple[str, str], str] = {}
        #: Jobs that died with their worker when no redelivery target was
        #: available (drain race): public id -> structured error dict.
        self._lost: Dict[str, Dict[str, Any]] = {}
        #: Public ids with a lazy result recovery in flight, so concurrent
        #: polls don't double-dispatch the same replay.
        self._recovering: Set[str] = set()
        self._redeliveries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Supervisor":
        """Spawn all workers, wait for readiness, bind the public port."""
        try:
            self.journal = JobJournal.at(self.cache_dir)
        except (StoreError, OSError):
            self.journal = None  # durability degraded, serving continues
        self.workers = [
            WorkerHandle(worker_id=f"w{index}")
            for index in range(self.num_workers)
        ]
        await asyncio.gather(
            *(self._spawn(handle) for handle in self.workers)
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=wire.MAX_HEADER_BYTES,
            reuse_address=True,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())
        return self

    async def stop(self) -> None:
        """Graceful drain: close the public port, SIGTERM every worker.

        A worker that crashed while the drain was already underway gets no
        replacement and no redelivery (the fleet is going away) — its
        unfinished journal entries are settled as ``service-unavailable``
        instead, so no accepted job is left in a non-terminal state.
        """
        self.draining = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._heartbeat_task
            self._heartbeat_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for handle in self.workers:
            if handle.stream_task is not None:
                handle.stream_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await handle.stream_task
                handle.stream_task = None
        # Workers that died during the drain race: their in-memory jobs are
        # unrecoverable now, so settle them before terminating the rest.
        for handle in self.workers:
            process = handle.process
            if process is not None and process.returncode is not None:
                await self._fail_lost(handle)
        await asyncio.gather(
            *(self._terminate(handle) for handle in self.workers)
        )
        # Whatever is still journalled as unfinished (jobs the live workers
        # failed during their own drain, whose terminal events we no longer
        # observed) is equally dead with the fleet — settle it truthfully.
        await self._settle_remaining_journal()
        if self._temp_cache is not None:
            self._temp_cache.cleanup()
            self._temp_cache = None

    async def __aenter__(self) -> "Supervisor":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() the supervisor first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Worker process management
    # ------------------------------------------------------------------
    def _worker_command(self, handle: WorkerHandle) -> List[str]:
        command = [
            sys.executable, "-m", "repro.server.worker",
            "--host", "127.0.0.1",
            "--port", str(handle.port),
            "--worker-id", handle.worker_id,
            "--engine", self.engine,
            "--service-workers", str(self.service_workers),
            "--executor", self.executor,
            "--cache-dir", self.cache_dir,
        ]
        for name in self.arch:
            command += ["--arch", name]
        if self.engine_options:
            command += ["--engine-options", json.dumps(self.engine_options)]
        if self.result_ttl is not None:
            command += ["--result-ttl", str(self.result_ttl)]
        return command

    async def _spawn(self, handle: WorkerHandle) -> None:
        """Start (or restart) the process behind *handle* and await readiness."""
        if faults.ARMED:
            try:
                faults.fire("worker.spawn")
            except faults.FaultInjectedError as error:
                # Surface as the same ServiceError a real spawn failure
                # produces so _restart's retry path handles both alike.
                raise ServiceError(
                    f"worker {handle.worker_id} spawn failed: {error}"
                ) from error
        handle.port = _free_port()
        handle.healthy = False
        handle.missed_heartbeats = 0
        environment = dict(os.environ)
        import repro

        src_dir = str(__import__("pathlib").Path(repro.__file__).parent.parent)
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        handle.process = await asyncio.create_subprocess_exec(
            *self._worker_command(handle),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=environment,
        )
        try:
            line = await asyncio.wait_for(
                handle.process.stdout.readline(), STARTUP_TIMEOUT
            )
        except asyncio.TimeoutError:
            handle.process.kill()
            raise ServiceError(
                f"worker {handle.worker_id} failed to become ready within "
                f"{STARTUP_TIMEOUT:.0f}s"
            ) from None
        if not line:
            raise ServiceError(
                f"worker {handle.worker_id} exited before becoming ready "
                f"(code {handle.process.returncode})"
            )
        ready = json.loads(line)
        handle.port = ready["port"]
        handle.healthy = True
        if handle.stream_task is None:
            handle.stream_task = asyncio.ensure_future(
                self._stream_pump(handle)
            )

    async def _terminate(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is None or process.returncode is not None:
            return
        process.terminate()
        try:
            await asyncio.wait_for(process.wait(), DRAIN_TIMEOUT)
        except asyncio.TimeoutError:  # pragma: no cover - unresponsive worker
            process.kill()
            await process.wait()

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(HEARTBEAT_INTERVAL)
            for handle in self.workers:
                await self._heartbeat(handle)

    async def _heartbeat(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is not None and process.returncode is not None:
            await self._restart(handle, reason="process exited")
            return
        try:
            status, _headers, body = await wire.http_request(
                "127.0.0.1", handle.port, "GET", "/v1/healthz",
                timeout=HEARTBEAT_INTERVAL * 4,
            )
            payload = json.loads(body)["payload"]
        except (ConnectionError, OSError, asyncio.TimeoutError,
                ValueError, KeyError):
            handle.missed_heartbeats += 1
            if handle.missed_heartbeats >= HEARTBEAT_MISS_LIMIT:
                await self._restart(handle, reason="heartbeats missed")
            return
        handle.missed_heartbeats = 0
        handle.healthy = status == 200 and payload.get("ok", False)
        handle.queue_depth = int(payload.get("queue_depth", 0))
        handle.in_flight = int(payload.get("in_flight", 0))

    async def _restart(self, handle: WorkerHandle, *, reason: str) -> None:
        handle.healthy = False
        handle.restarts += 1
        process = handle.process
        if process is not None and process.returncode is None:
            process.kill()
            await process.wait()
        if handle.stream_task is not None:
            handle.stream_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await handle.stream_task
            handle.stream_task = None
        if self.draining:
            # The fleet is going away; don't replace the worker, settle
            # its unfinished jobs instead (see stop()).
            await self._fail_lost(handle)
            return
        try:
            await self._spawn(handle)
        except ServiceError:  # respawn failure (or injected spawn fault)
            handle.healthy = False
            return
        # The dead process took its in-memory jobs with it; every journal
        # entry it owned that never reached a terminal state is replayed
        # onto a live worker under the original public id.
        await self._redeliver(handle.worker_id)

    # ------------------------------------------------------------------
    # Durable journal + redelivery
    # ------------------------------------------------------------------
    async def _journal_call(self, fn, *args) -> bool:
        """Run one journal operation off-loop; False when it failed.

        Journal failures degrade durability, never availability — the
        submit/stream paths carry on and the error count is reported in
        stats.
        """
        if self.journal is None:
            return False
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, fn, *args)
            return True
        except StoreError:
            self._journal_errors += 1
            return False

    def _public_id(self, worker_id: str, local_id: str) -> str:
        """The public id for a worker-local job id (alias-aware)."""
        return self._redelivered_public.get(
            (worker_id, local_id), f"{worker_id}-{local_id}"
        )

    async def _redeliver(self, worker_id: str) -> None:
        """Replay a dead worker's unfinished journal entries.

        Each entry's original submit body is re-POSTed to a live worker
        (possibly the restarted one) and the original public id is aliased
        to the new worker-local id, so clients polling it never notice the
        move beyond the job restarting.  At-least-once: a job whose
        completion event was lost with the worker re-runs — the
        fingerprint cache makes the repeat cheap.
        """
        if self.journal is None or self.draining:
            return
        loop = asyncio.get_running_loop()
        try:
            entries = await loop.run_in_executor(
                None, self.journal.unfinished, worker_id
            )
        except StoreError:
            self._journal_errors += 1
            return
        for entry in entries:
            public_id = entry["public_id"]
            if public_id in self._lost:
                continue
            try:
                handle, status, envelope = await self._dispatch_submit(
                    entry["body"]
                )
            except ServiceError as error:
                # No live target right now; the entry stays unfinished and
                # the next restart cycle tries again.
                if isinstance(error, ServiceUnavailable):
                    return
                continue
            payload = envelope.get("payload", {})
            new_local = payload.get("job_id")
            if status != 202 or not isinstance(new_local, str):
                continue
            self._aliases[public_id] = (handle.worker_id, new_local)
            self._redelivered_public[(handle.worker_id, new_local)] = public_id
            self._redeliveries += 1
            await self._journal_call(
                self.journal.redelivered, public_id, handle.worker_id,
                new_local,
            )

    async def _recover_lost_result(
        self, public_id: str
    ) -> Optional[Tuple[WorkerHandle, str]]:
        """Lazily replay a *finished* job whose outcome died with its worker.

        Redelivery only covers non-terminal journal entries; a job that
        reached DONE just before its worker was killed is terminal in the
        journal but unknown to the restarted process, so polls for its id
        would 404 forever.  When a poll hits that hole, re-dispatch the
        original submit body (the fingerprint cache makes the repeat cheap)
        and alias the public id to the new run.  Terminal *failures* are
        replayed from the journal directly as their structured error.

        Returns the new ``(handle, local_id)`` home, or ``None`` when the
        caller should let the original not-found answer stand.
        """
        if self.journal is None or self.draining:
            return None
        if public_id in self._recovering:
            return None
        loop = asyncio.get_running_loop()
        try:
            entry = await loop.run_in_executor(
                None, self.journal.get, public_id
            )
        except StoreError:
            self._journal_errors += 1
            return None
        if entry is None or entry["state"] != JOURNAL_TERMINAL:
            # Unknown id, or a non-terminal entry the redelivery sweep
            # already owns — don't race it with a second dispatch.
            return None
        if entry["error_code"] is not None:
            error = ServiceError(
                f"job {public_id!r} failed before its worker died; "
                "replaying its terminal error from the durable journal"
            )
            error.code = entry["error_code"]
            raise error
        self._recovering.add(public_id)
        try:
            try:
                handle, status, envelope = await self._dispatch_submit(
                    entry["body"]
                )
            except ServiceError:
                return None
            payload = envelope.get("payload", {})
            new_local = payload.get("job_id")
            if status != 202 or not isinstance(new_local, str):
                return None
            self._aliases[public_id] = (handle.worker_id, new_local)
            self._redelivered_public[(handle.worker_id, new_local)] = public_id
            self._redeliveries += 1
            await self._journal_call(
                self.journal.redelivered, public_id, handle.worker_id,
                new_local,
            )
            return handle, new_local
        finally:
            self._recovering.discard(public_id)

    async def _fail_lost(self, handle: WorkerHandle) -> None:
        """Settle a dead worker's unfinished jobs when nothing can run them."""
        if self.journal is None:
            return
        loop = asyncio.get_running_loop()
        try:
            entries = await loop.run_in_executor(
                None, self.journal.unfinished, handle.worker_id
            )
        except StoreError:
            self._journal_errors += 1
            return
        for entry in entries:
            public_id = entry["public_id"]
            error = ServiceUnavailable(
                f"worker {handle.worker_id} died during drain; "
                "job was not redelivered",
                details={"job_id": public_id, "worker": handle.worker_id},
            )
            self._lost[public_id] = error.to_dict()
            await self._journal_call(
                self.journal.mark_terminal, public_id, error.code
            )

    async def _settle_remaining_journal(self) -> None:
        """Mark every still-unfinished entry terminal at the end of a drain."""
        if self.journal is None:
            return
        loop = asyncio.get_running_loop()
        try:
            entries = await loop.run_in_executor(None, self.journal.unfinished)
        except StoreError:
            self._journal_errors += 1
            return
        for entry in entries:
            public_id = entry["public_id"]
            error = ServiceUnavailable(
                "supervisor drained before the job reached a terminal state",
                details={"job_id": public_id},
            )
            self._lost.setdefault(public_id, error.to_dict())
            await self._journal_call(
                self.journal.mark_terminal, public_id, error.code
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _pick_worker(
        self, exclude: Optional[set] = None
    ) -> WorkerHandle:
        candidates = [
            handle for handle in self.workers
            if handle.healthy
            and (exclude is None or handle.worker_id not in exclude)
        ]
        if not candidates:
            raise ServiceUnavailable(
                "no healthy worker available; retry shortly",
                details={"workers": len(self.workers)},
            )
        chosen = min(
            candidates, key=lambda handle: (handle.load, handle.last_assigned)
        )
        chosen.last_assigned = time.monotonic()
        # Optimistic load bump so a burst of submissions between two
        # heartbeats spreads instead of piling onto one worker.
        chosen.queue_depth += 1
        return chosen

    def _worker_for_job(self, job_id: str) -> Tuple[WorkerHandle, str]:
        alias = self._aliases.get(job_id)
        if alias is not None:
            alias_worker, alias_local = alias
            for handle in self.workers:
                if handle.worker_id == alias_worker:
                    return handle, alias_local
        worker_id, _, local_id = job_id.partition("-")
        from repro.service.errors import JobNotFoundError

        # A restarted worker reuses its worker id and restarts its local
        # job counter, so a redelivered job may occupy this worker-local
        # slot under a *different* public id.  Routing the request through
        # would hand the caller someone else's job; report not-found
        # instead — the caller's own alias appears once redelivery
        # reaches its journal entry, and clients already ride out the
        # transient 404 window after a crash.
        occupant = self._redelivered_public.get((worker_id, local_id))
        if occupant is not None and occupant != job_id:
            raise JobNotFoundError(
                f"job id {job_id!r} is being redelivered after a worker "
                "restart; retry shortly"
            )
        for handle in self.workers:
            if handle.worker_id == worker_id and local_id:
                return handle, local_id
        raise JobNotFoundError(
            f"unknown job id {job_id!r} (expected '<worker>-job-<n>')"
        )

    def _prefix_job_ids(self, envelope: Dict[str, Any],
                        worker_id: str) -> Dict[str, Any]:
        payload = envelope.get("payload")
        if isinstance(payload, dict) and isinstance(
            payload.get("job_id"), str
        ):
            # Redelivered jobs keep the public id they were first accepted
            # under, wherever they run now.
            payload["job_id"] = self._public_id(worker_id, payload["job_id"])
        return envelope

    async def _proxy(
        self,
        handle: WorkerHandle,
        method: str,
        target: str,
        body: Optional[bytes] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            if faults.ARMED:
                mode = faults.fire("worker.dispatch")
                if mode == "drop":
                    raise ConnectionResetError("injected dispatch drop")
            status, _headers, raw = await wire.http_request(
                "127.0.0.1", handle.port, method, target,
                body=body, timeout=UPSTREAM_TIMEOUT,
            )
            return status, json.loads(raw)
        except (wire.RetryableWireError, ConnectionError, OSError,
                asyncio.TimeoutError, ValueError) as error:
            raise _upstream_error(handle.worker_id, error) from error

    async def _dispatch_submit(
        self, body: bytes
    ) -> Tuple[WorkerHandle, int, Dict[str, Any]]:
        """POST one submit body to a worker, trying alternates on failure.

        A worker that refuses or drops the connection (it may be mid-crash
        between two heartbeats) is skipped and the submit retried on the
        next least-loaded healthy worker, so one dying process does not
        surface as a client-visible 502 when siblings could take the job.
        """
        tried: set = set()
        last_error: Optional[ServiceError] = None
        for _ in range(len(self.workers)):
            try:
                handle = self._pick_worker(exclude=tried)
            except ServiceUnavailable as error:
                if last_error is not None:
                    raise last_error
                raise error
            try:
                status, envelope = await self._proxy(
                    handle, "POST", "/v1/jobs", body
                )
                return handle, status, envelope
            except ServiceError as error:
                if error.code != "upstream-failed":
                    raise
                tried.add(handle.worker_id)
                last_error = error
        raise last_error or ServiceUnavailable(
            "no worker accepted the submission"
        )

    # ------------------------------------------------------------------
    # Public HTTP surface
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await wire.read_request(reader)
                except wire.WireError as error:
                    envelope = ErrorEnvelope(
                        error_code="protocol-error",
                        message=str(error),
                        http_status=error.status,
                    )
                    writer.write(
                        wire.json_response(
                            error.status, envelope.to_wire(), keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                self._requests_served += 1
                if request.path == "/v1/stream" and request.is_websocket_upgrade:
                    await self._handle_stream(request, reader, writer)
                    return
                status, envelope = await self._dispatch(request)
                keep_alive = request.keep_alive and not self.draining
                writer.write(
                    wire.json_response(status, envelope, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            return await self._route(request)
        except ServiceError as error:
            envelope = ErrorEnvelope.from_error(error)
            return envelope.http_status, envelope.to_wire()
        except Exception as error:  # noqa: BLE001 - last-resort server error
            envelope = ErrorEnvelope(
                error_code="service-error",
                message=f"internal supervisor error: {error}",
                details={"error_type": type(error).__name__},
            )
            return envelope.http_status, envelope.to_wire()

    async def _route(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        path, method = request.path, request.method
        if path == "/v1/jobs" and method == "POST":
            return await self._submit(request)
        if path.startswith("/v1/jobs/") and method in ("GET", "DELETE"):
            tail = path[len("/v1/jobs/"):]
            suffix = ""
            if method == "GET" and tail.endswith("/result"):
                tail, suffix = tail[: -len("/result")], "/result"
            lost = self._lost.get(tail)
            if lost is not None:
                # The job died with its worker and nothing could take it
                # over; answer with its structured terminal error instead
                # of a misleading 404/502.
                envelope = ErrorEnvelope(
                    error_code=lost.get("code", "service-unavailable"),
                    message=lost.get("message", "job lost with its worker"),
                    details=dict(lost.get("details", {})),
                    http_status=503,
                )
                return 503, envelope.to_wire()
            from repro.service.errors import JobNotFoundError

            try:
                handle, local_id = self._worker_for_job(tail)
            except JobNotFoundError:
                if method != "GET":
                    raise
                recovered = await self._recover_lost_result(tail)
                if recovered is None:
                    raise
                handle, local_id = recovered

            def _target(local: str) -> str:
                target = f"/v1/jobs/{local}{suffix}"
                if request.query:
                    pairs = "&".join(
                        f"{key}={value}"
                        for key, value in request.query.items()
                    )
                    target = f"{target}?{pairs}"
                return target

            status, envelope = await self._proxy(
                handle, method, _target(local_id),
                request.body if method == "DELETE" else None,
            )
            if status == 404 and method == "GET":
                # The worker doesn't know the job — usually a restarted
                # process asked about a job that finished on its previous
                # incarnation.  Replay from the journal and re-ask once.
                recovered = await self._recover_lost_result(tail)
                if recovered is not None:
                    handle, local_id = recovered
                    status, envelope = await self._proxy(
                        handle, "GET", _target(local_id), None
                    )
            return status, self._prefix_job_ids(envelope, handle.worker_id)
        if path == "/v1/stats" and method == "GET":
            return await self._stats()
        if path == "/v1/healthz" and method == "GET":
            return self._healthz()
        if path == "/v1/cache/prune" and method == "POST":
            return await self._prune(request)
        if path == "/v1/stream":
            raise ProtocolError(
                "/v1/stream requires a WebSocket upgrade "
                "(Connection: Upgrade, Upgrade: websocket)"
            )
        known = ("/v1/jobs", "/v1/stats", "/v1/healthz", "/v1/cache/prune")
        if path in known or path.startswith("/v1/jobs/"):
            error = ServiceError(f"method {method} not allowed on {path}")
            error.code = "method-not-allowed"
            raise error
        not_found = ServiceError(f"no such endpoint: {method} {path}")
        not_found.code = "not-found"
        raise not_found

    async def _submit(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """Accept one submission: journal first, then dispatch.

        The body is journalled under a provisional id *before* any worker
        sees it, then re-keyed to the public id the dispatch produced —
        so from the moment a client could ever learn a job id, the submit
        is durable and redeliverable.
        """
        provisional: Optional[str] = None
        if self.journal is not None:
            self._submit_seq += 1
            provisional = f"pending-{os.getpid()}-{self._submit_seq:06d}"
            await self._journal_call(
                self.journal.record, provisional, request.body
            )
        try:
            handle, status, envelope = await self._dispatch_submit(
                request.body
            )
        except ServiceError as error:
            if provisional is not None:
                await self._journal_call(
                    self.journal.mark_terminal, provisional, error.code
                )
            raise
        payload = envelope.get("payload", {})
        local_id = payload.get("job_id")
        if status == 202 and isinstance(local_id, str) and self.journal is not None:
            public_id = f"{handle.worker_id}-{local_id}"
            await self._journal_call(
                self.journal.record, public_id, request.body
            )
            await self._journal_call(
                self.journal.assign, public_id, handle.worker_id, local_id
            )
        if provisional is not None:
            await self._journal_call(self.journal.discard, provisional)
        return status, self._prefix_job_ids(envelope, handle.worker_id)

    async def _stats(self) -> Tuple[int, Dict[str, Any]]:
        per_worker: Dict[str, Any] = {}

        async def fetch(handle: WorkerHandle) -> None:
            try:
                _status, envelope = await self._proxy(
                    handle, "GET", "/v1/stats"
                )
                per_worker[handle.worker_id] = envelope.get(
                    "payload", {}
                ).get("stats", {})
            except ServiceError as error:
                per_worker[handle.worker_id] = {"error": error.to_dict()}

        await asyncio.gather(*(fetch(handle) for handle in self.workers))
        aggregate = {
            "workers": len(self.workers),
            "healthy_workers": sum(
                1 for handle in self.workers if handle.healthy
            ),
            "restarts": sum(handle.restarts for handle in self.workers),
            "queue_depth": sum(handle.queue_depth for handle in self.workers),
            "in_flight": sum(handle.in_flight for handle in self.workers),
            "requests_served": self._requests_served,
            "redeliveries": self._redeliveries,
            "journal_enabled": self.journal is not None,
            "journal_errors": self._journal_errors,
            "lost_jobs": len(self._lost),
            "uptime_seconds": (
                time.monotonic() - self.started_at
                if self.started_at is not None
                else 0.0
            ),
            "cache_dir": self.cache_dir,
            "worker_processes": {
                handle.worker_id: handle.describe()
                for handle in self.workers
            },
        }
        report = StatsReport(
            role="supervisor", stats=aggregate, workers=per_worker
        )
        return 200, report.to_wire()

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        report = HealthReport(
            ok=any(handle.healthy for handle in self.workers)
            and not self.draining,
            role="supervisor",
            pid=os.getpid(),
            queue_depth=sum(handle.queue_depth for handle in self.workers),
            in_flight=sum(handle.in_flight for handle in self.workers),
            draining=self.draining,
            workers={
                handle.worker_id: handle.describe()
                for handle in self.workers
            },
        )
        return 200, report.to_wire()

    async def _prune(
        self, request: wire.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        body = request.json()
        if body:
            message = from_wire(body)
            if not isinstance(message, PruneRequest):
                raise ProtocolError(
                    "POST /v1/cache/prune expects a prune-request, got "
                    f"{message.TYPE}"
                )
        else:
            message = PruneRequest()
        healthy = [handle for handle in self.workers if handle.healthy]
        if not healthy:
            raise ServiceUnavailable("no healthy worker to prune through")
        per_worker: Dict[str, Any] = {}
        rows_pruned = bytes_reclaimed = memory_dropped = 0
        artifact_rows_pruned = artifact_bytes_reclaimed = 0
        # The first worker prunes the shared SQLite rows; every worker —
        # including that one — then flushes its in-memory LRU so no stale
        # fingerprint survives anywhere.  This is the cross-worker cache
        # invalidation broadcast.
        for index, handle in enumerate(healthy):
            forward = PruneRequest(
                ttl_seconds=message.ttl_seconds if index == 0 else None,
                flush_memory=message.flush_memory,
            )
            try:
                _status, envelope = await self._proxy(
                    handle, "POST", "/v1/cache/prune",
                    json.dumps(forward.to_wire()).encode(),
                )
                payload = envelope.get("payload", {})
            except ServiceError as error:
                per_worker[handle.worker_id] = {"error": error.to_dict()}
                continue
            per_worker[handle.worker_id] = payload
            rows_pruned += int(payload.get("rows_pruned", 0))
            bytes_reclaimed += int(payload.get("bytes_reclaimed", 0))
            memory_dropped += int(payload.get("memory_dropped", 0))
            artifact_rows_pruned += int(
                payload.get("artifact_rows_pruned", 0)
            )
            artifact_bytes_reclaimed += int(
                payload.get("artifact_bytes_reclaimed", 0)
            )
        report = PruneReport(
            rows_pruned=rows_pruned,
            bytes_reclaimed=bytes_reclaimed,
            memory_dropped=memory_dropped,
            artifact_rows_pruned=artifact_rows_pruned,
            artifact_bytes_reclaimed=artifact_bytes_reclaimed,
            ttl_seconds=message.ttl_seconds,
            cache_dir=self.cache_dir,
            per_worker=per_worker,
        )
        return 200, report.to_wire()

    # ------------------------------------------------------------------
    # Stream fan-in
    # ------------------------------------------------------------------
    async def _stream_pump(self, handle: WorkerHandle) -> None:
        """Mirror one worker's event stream into the public subscribers.

        Reconnects with a short back-off whenever the worker connection
        drops (e.g. across a restart); job ids are rewritten to their
        namespaced ``<worker>-<id>`` form on the way through.
        """
        while True:
            try:
                ws = await wire.open_websocket(
                    "127.0.0.1", handle.port, "/v1/stream"
                )
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    wire.WireError):
                await asyncio.sleep(HEARTBEAT_INTERVAL)
                continue
            try:
                while True:
                    message = await ws.receive()
                    if message is None:
                        break
                    try:
                        envelope = json.loads(message)
                    except ValueError:
                        continue
                    envelope = self._prefix_job_ids(
                        envelope, handle.worker_id
                    )
                    self._broadcast(envelope)
                    await self._note_terminal(envelope)
            finally:
                await ws.close()
            await asyncio.sleep(HEARTBEAT_INTERVAL)

    async def _note_terminal(self, envelope: Dict[str, Any]) -> None:
        """Settle the journal entry behind a done/failed stream event."""
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return
        if payload.get("status") not in ("done", "failed"):
            return
        job_id = payload.get("job_id")
        if not isinstance(job_id, str) or self.journal is None:
            return
        await self._journal_call(
            self.journal.mark_terminal, job_id, payload.get("error_code")
        )

    def _broadcast(self, envelope: Dict[str, Any]) -> None:
        self._stream_seq += 1
        envelope = dict(envelope)
        envelope["seq"] = self._stream_seq
        self._stream_replay.append(envelope)
        for queue in list(self._subscribers):
            self._enqueue(queue, envelope)

    @staticmethod
    def _enqueue(queue: asyncio.Queue, envelope: Dict[str, Any]) -> None:
        """Drop-oldest enqueue shared by live fan-out and replay."""
        try:
            queue.put_nowait(envelope)
        except asyncio.QueueFull:
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race
                pass
            try:
                queue.put_nowait(envelope)
            except asyncio.QueueFull:  # pragma: no cover - race
                pass

    async def _handle_stream(
        self,
        request: wire.HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        if not key:
            writer.write(
                wire.json_response(
                    400,
                    ErrorEnvelope(
                        error_code="protocol-error",
                        message="missing Sec-WebSocket-Key",
                        http_status=400,
                    ).to_wire(),
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        cursor: Optional[int] = None
        if "since" in request.query:
            try:
                cursor = int(request.query["since"])
            except ValueError:
                writer.write(
                    wire.json_response(
                        400,
                        ErrorEnvelope(
                            error_code="protocol-error",
                            message="since must be an integer sequence number",
                            http_status=400,
                        ).to_wire(),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return
        writer.write(
            wire.serialize_response(
                101,
                extra_headers={
                    "Upgrade": "websocket",
                    "Connection": "Upgrade",
                    "Sec-WebSocket-Accept": wire.websocket_accept(key),
                },
            )
        )
        await writer.drain()
        ws = wire.WebSocketConnection(reader, writer, client=False)
        queue: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIBER_QUEUE_SIZE)
        self._subscribers.add(queue)
        if cursor is not None:
            # Replay the retained tail before any live event: registration
            # and replay happen without an await in between, so no broadcast
            # can interleave and ordering by seq is preserved.
            for envelope in list(self._stream_replay):
                if envelope["seq"] > cursor:
                    self._enqueue(queue, envelope)
        receive_task = asyncio.ensure_future(ws.receive())
        event_task = asyncio.ensure_future(queue.get())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {receive_task, event_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if receive_task in done:
                    if receive_task.result() is None:
                        break
                    receive_task = asyncio.ensure_future(ws.receive())
                if event_task in done:
                    await ws.send_text(json.dumps(event_task.result()))
                    event_task = asyncio.ensure_future(queue.get())
        except (wire.WireError, ConnectionError, OSError):
            pass
        finally:
            self._subscribers.discard(queue)
            for task in (receive_task, event_task):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await task
            await ws.close()


async def run_supervisor(
    *, install_signal_handlers: bool = True, **kwargs: Any
) -> int:
    """Run a supervisor until SIGTERM/SIGINT, then drain.  CLI helper."""
    supervisor = Supervisor(**kwargs)
    await supervisor.start()
    print(
        json.dumps(
            {
                "event": "listening",
                "role": "supervisor",
                "host": supervisor.host,
                "port": supervisor.port,
                "workers": [
                    handle.describe() for handle in supervisor.workers
                ],
            }
        ),
        flush=True,
    )
    stop_requested = asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_: stop_requested.set())
    await stop_requested.wait()
    await supervisor.stop()
    return 0


__all__ = [
    "DRAIN_TIMEOUT",
    "HEARTBEAT_INTERVAL",
    "HEARTBEAT_MISS_LIMIT",
    "STARTUP_TIMEOUT",
    "Supervisor",
    "WorkerHandle",
    "run_supervisor",
]
