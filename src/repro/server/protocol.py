"""Versioned typed-message wire contract of the network serving layer.

Every payload that crosses the wire — HTTP request/response bodies and
WebSocket stream events — is one of the small dataclasses below, carried in
a three-field envelope::

    {"type": "submit-request", "version": 1, "payload": {...}}

The contract is deliberately strict, because the two ends of the wire are
allowed to run different releases:

* **Registry.** Message classes register under ``(type_name, version)``;
  :func:`from_wire` refuses unknown types and — separately, with a more
  helpful error — known types at unsupported versions, so a newer client
  talking to an older server fails loudly instead of half-working.
* **Unknown fields are rejected.** A payload field the receiving side does
  not declare is a contract violation (probably a newer sender), never
  silently dropped.
* **Versioning rules.** A change that adds an *optional* field keeps the
  version (old payloads still validate); any removal, rename, type change
  or new *required* field bumps the message's ``VERSION`` and keeps the old
  class registered for as long as old senders exist.

Error mapping: every :class:`~repro.service.errors.ServiceError` code has a
row in :data:`HTTP_STATUS_BY_ERROR_CODE`; :class:`ErrorEnvelope` carries the
code, message, details and resolved HTTP status across the wire so clients
can branch on the stable machine-readable code instead of the status text.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from repro.service.errors import ServiceError

#: Version of the envelope itself (the three-field wrapper, not the payloads).
PROTOCOL_VERSION = 1

#: Stable service-error code → HTTP status.  Codes missing here (including
#: codes minted by future releases) fall back to 500: an unknown failure is
#: a server-side failure until proven otherwise.
HTTP_STATUS_BY_ERROR_CODE: Dict[str, int] = {
    "service-error": 500,
    "invalid-result": 500,
    "job-not-found": 404,
    "routing-failed": 400,
    "mapping-failed": 500,
    "store-error": 500,
    "service-state": 409,
    "service-unavailable": 503,
    "protocol-error": 400,
    # Cooperative cancellation / deadline enforcement (PR 10).  499 is the
    # de-facto "client closed request" status nginx minted; a cancelled job
    # is the closest semantic match our stack has.
    "deadline-exceeded": 504,
    "job-cancelled": 499,
    # Route-level codes minted by the HTTP layer itself.
    "not-found": 404,
    "method-not-allowed": 405,
    "upstream-failed": 502,
}

#: Fallback status for error codes without an explicit row.
DEFAULT_ERROR_STATUS = 500


def http_status_for_code(code: str) -> int:
    """The HTTP status a service-error *code* maps to (default 500)."""
    return HTTP_STATUS_BY_ERROR_CODE.get(code, DEFAULT_ERROR_STATUS)


class ProtocolError(ServiceError):
    """A wire payload violated the message contract.

    Covers malformed envelopes, unknown message types, version mismatches,
    unknown or missing payload fields and field-level validation failures.
    Maps to HTTP 400 — the bytes were understood, their content was not.
    """

    code = "protocol-error"


# ----------------------------------------------------------------------
# Registry + envelope conversions
# ----------------------------------------------------------------------
_REGISTRY: Dict[Tuple[str, int], Type["WireMessage"]] = {}


def register_message(cls: Type["WireMessage"]) -> Type["WireMessage"]:
    """Class decorator: add a message type to the wire registry."""
    if not cls.TYPE:
        raise ValueError(f"{cls.__name__} must define a non-empty TYPE")
    key = (cls.TYPE, cls.VERSION)
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate message registration for {key}")
    _REGISTRY[key] = cls
    return cls


def registered_messages() -> Dict[Tuple[str, int], Type["WireMessage"]]:
    """A snapshot of the registry (for introspection and tests)."""
    return dict(_REGISTRY)


@dataclass(frozen=True)
class WireMessage:
    """Base class of every wire message.

    Subclasses are frozen dataclasses whose fields *are* the payload;
    ``TYPE``/``VERSION`` name the registry slot.  ``validate`` holds the
    field-level rules and runs on both directions of the conversion, so an
    instance that round-trips was valid on both ends.
    """

    TYPE: ClassVar[str] = ""
    VERSION: ClassVar[int] = 1

    def validate(self) -> None:
        """Check field-level invariants; raise :class:`ProtocolError`."""

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The payload mapping (shallow: nested values stay as they are)."""
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    def to_wire(self) -> Dict[str, Any]:
        """The full JSON-ready envelope for this message."""
        self.validate()
        return {
            "type": self.TYPE,
            "version": self.VERSION,
            "payload": self.to_payload(),
        }

    def to_json(self) -> str:
        """The envelope serialized to a JSON string."""
        return json.dumps(self.to_wire(), sort_keys=True)

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WireMessage":
        """Build an instance from a payload mapping — strictly.

        Unknown fields and missing required fields both raise
        :class:`ProtocolError`; the built instance is validated before it
        is returned.
        """
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"{cls.TYPE} payload must be an object",
                details={"type": cls.TYPE, "got": type(payload).__name__},
            )
        declared = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - set(declared))
        if unknown:
            raise ProtocolError(
                f"unknown field(s) in {cls.TYPE} payload: {', '.join(unknown)}",
                details={"type": cls.TYPE, "unknown_fields": unknown},
            )
        missing = sorted(
            name
            for name, f in declared.items()
            if name not in payload
            and f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING  # type: ignore[misc]
        )
        if missing:
            raise ProtocolError(
                f"missing required field(s) in {cls.TYPE} payload: "
                f"{', '.join(missing)}",
                details={"type": cls.TYPE, "missing_fields": missing},
            )
        message = cls(**dict(payload))
        message.validate()
        return message

    # ------------------------------------------------------------------
    # Validation helpers for subclasses
    # ------------------------------------------------------------------
    def _require(self, condition: bool, description: str) -> None:
        if not condition:
            raise ProtocolError(
                f"invalid {self.TYPE} payload: {description}",
                details={"type": self.TYPE},
            )

    def _require_str(self, name: str, *, optional: bool = False) -> None:
        value = getattr(self, name)
        if value is None and optional:
            return
        self._require(
            isinstance(value, str) and bool(value),
            f"{name} must be a non-empty string",
        )

    def _require_dict(self, name: str) -> None:
        value = getattr(self, name)
        self._require(
            isinstance(value, dict)
            and all(isinstance(key, str) for key in value),
            f"{name} must be an object with string keys",
        )

    def _require_int(self, name: str, *, optional: bool = False,
                     minimum: Optional[int] = None) -> None:
        value = getattr(self, name)
        if value is None and optional:
            return
        ok = isinstance(value, int) and not isinstance(value, bool)
        if ok and minimum is not None:
            ok = value >= minimum
        self._require(ok, f"{name} must be an integer"
                      + (f" >= {minimum}" if minimum is not None else ""))

    def _require_bool(self, name: str, *, optional: bool = False) -> None:
        value = getattr(self, name)
        if value is None and optional:
            return
        self._require(isinstance(value, bool), f"{name} must be a boolean")

    def _require_number(self, name: str, *, optional: bool = False,
                        positive: bool = False) -> None:
        value = getattr(self, name)
        if value is None and optional:
            return
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        if ok and positive:
            ok = value > 0
        self._require(
            ok, f"{name} must be a{' positive' if positive else ''} number"
        )


def to_wire(message: WireMessage) -> Dict[str, Any]:
    """Function-style alias of :meth:`WireMessage.to_wire`."""
    return message.to_wire()


def from_wire(envelope: Any) -> WireMessage:
    """Decode one envelope into its registered message type — strictly.

    Raises:
        ProtocolError: Malformed envelope, unknown type, unsupported
            version, or an invalid payload.
    """
    if not isinstance(envelope, Mapping):
        raise ProtocolError(
            "wire envelope must be an object",
            details={"got": type(envelope).__name__},
        )
    extra = sorted(set(envelope) - {"type", "version", "payload"})
    if extra:
        raise ProtocolError(
            f"unknown envelope field(s): {', '.join(extra)}",
            details={"unknown_fields": extra},
        )
    type_name = envelope.get("type")
    version = envelope.get("version")
    if not isinstance(type_name, str) or not type_name:
        raise ProtocolError("envelope 'type' must be a non-empty string")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError("envelope 'version' must be an integer")
    cls = _REGISTRY.get((type_name, version))
    if cls is None:
        supported = sorted(
            v for (name, v) in _REGISTRY if name == type_name
        )
        if supported:
            raise ProtocolError(
                f"unsupported version {version} of message {type_name!r} "
                f"(supported: {', '.join(map(str, supported))})",
                details={
                    "type": type_name,
                    "version": version,
                    "supported_versions": supported,
                },
            )
        raise ProtocolError(
            f"unknown message type {type_name!r}",
            details={"type": type_name, "known": sorted({n for n, _ in _REGISTRY})},
        )
    return cls.from_payload(envelope.get("payload", {}))


def from_json(text: str) -> WireMessage:
    """Decode a JSON string into its registered message type."""
    try:
        envelope = json.loads(text)
    except ValueError as error:
        raise ProtocolError(
            f"body is not valid JSON: {error}"
        ) from error
    return from_wire(envelope)


# ----------------------------------------------------------------------
# Message types
# ----------------------------------------------------------------------
#: Job lifecycle states a JobStatus / StreamEvent may carry.
JOB_STATES = ("queued", "running", "done", "failed")


@register_message
@dataclass(frozen=True)
class SubmitRequest(WireMessage):
    """``POST /v1/jobs`` body: one circuit to map.

    The circuit travels as its OpenQASM 2.0 source — the same canonical
    text form the fingerprint layer hashes — so any client that can write
    QASM can submit without sharing Python objects.
    """

    TYPE: ClassVar[str] = "submit-request"
    VERSION: ClassVar[int] = 1

    qasm: str
    arch: Optional[str] = None
    engine: Optional[str] = None
    options: Dict[str, Any] = field(default_factory=dict)
    circuit_name: Optional[str] = None

    def validate(self) -> None:
        self._require_str("qasm")
        self._require_str("arch", optional=True)
        self._require_str("engine", optional=True)
        self._require_str("circuit_name", optional=True)
        self._require_dict("options")


@register_message
@dataclass(frozen=True)
class CancelRequest(WireMessage):
    """``DELETE /v1/jobs/{id}`` body (optional): why the job is cancelled.

    The body may be empty — ``job_id`` in the path wins; carrying it in
    the payload as well keeps the message self-describing for transports
    without a path (the WebSocket control channel).
    """

    TYPE: ClassVar[str] = "cancel-request"
    VERSION: ClassVar[int] = 1

    job_id: str
    reason: Optional[str] = None

    def validate(self) -> None:
        self._require_str("job_id")
        self._require_str("reason", optional=True)


@register_message
@dataclass(frozen=True)
class JobStatus(WireMessage):
    """Status snapshot of one job (``GET /v1/jobs/{id}``, submit response)."""

    TYPE: ClassVar[str] = "job-status"
    VERSION: ClassVar[int] = 1

    job_id: str
    status: str
    fingerprint: str
    circuit_name: str
    arch: str
    engine: str
    provenance: Dict[str, Any] = field(default_factory=dict)
    added_cost: Optional[int] = None
    optimal: Optional[bool] = None
    error: Optional[Dict[str, Any]] = None

    def validate(self) -> None:
        self._require_str("job_id")
        self._require(self.status in JOB_STATES,
                      f"status must be one of {', '.join(JOB_STATES)}")
        self._require_str("fingerprint")
        self._require_str("circuit_name")
        self._require_str("arch")
        self._require_str("engine")
        self._require_dict("provenance")
        self._require_int("added_cost", optional=True, minimum=0)
        self._require_bool("optimal", optional=True)
        self._require(self.error is None or isinstance(self.error, dict),
                      "error must be an object or null")

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "JobStatus":
        """Build from :meth:`repro.service.service.Job.snapshot` output."""
        return cls(
            job_id=snapshot["job_id"],
            status=snapshot["status"],
            fingerprint=snapshot["fingerprint"],
            circuit_name=snapshot["circuit_name"],
            arch=snapshot["arch"],
            engine=snapshot["engine"],
            provenance=dict(snapshot.get("provenance", {})),
            added_cost=snapshot.get("added_cost"),
            optimal=snapshot.get("optimal"),
            error=snapshot.get("error"),
        )


@register_message
@dataclass(frozen=True)
class ResultPayload(WireMessage):
    """``GET /v1/jobs/{id}/result`` body: the full mapping result.

    ``result`` is the lossless :meth:`~repro.exact.result.MappingResult.
    to_dict` rendering (QASM round-trip included), so the receiving side
    can rebuild the full object with ``MappingResult.from_dict``.
    """

    TYPE: ClassVar[str] = "result-payload"
    VERSION: ClassVar[int] = 1

    job_id: str
    result: Dict[str, Any]
    provenance: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        self._require_str("job_id")
        self._require_dict("result")
        self._require_dict("provenance")


@register_message
@dataclass(frozen=True)
class ErrorEnvelope(WireMessage):
    """Any failure crossing the wire: stable code + message + HTTP status."""

    TYPE: ClassVar[str] = "error"
    VERSION: ClassVar[int] = 1

    error_code: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)
    http_status: int = DEFAULT_ERROR_STATUS

    def validate(self) -> None:
        self._require_str("error_code")
        self._require_str("message")
        self._require_dict("details")
        self._require_int("http_status", minimum=100)

    @classmethod
    def from_error(cls, error: ServiceError) -> "ErrorEnvelope":
        """The envelope for a structured service error."""
        return cls(
            error_code=error.code,
            message=error.message,
            details=_jsonable(error.details),
            http_status=http_status_for_code(error.code),
        )

    def to_error(self) -> ServiceError:
        """Rebuild a (generic) :class:`ServiceError` carrying this code."""
        rebuilt = ServiceError(self.message, details=dict(self.details))
        rebuilt.code = self.error_code
        return rebuilt


@register_message
@dataclass(frozen=True)
class StatsReport(WireMessage):
    """``GET /v1/stats`` body: service/store/server counters and gauges."""

    TYPE: ClassVar[str] = "stats-report"
    VERSION: ClassVar[int] = 1

    role: str
    stats: Dict[str, Any] = field(default_factory=dict)
    workers: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        self._require(self.role in ("worker", "supervisor"),
                      "role must be 'worker' or 'supervisor'")
        self._require_dict("stats")
        self._require_dict("workers")


@register_message
@dataclass(frozen=True)
class HealthReport(WireMessage):
    """``GET /v1/healthz`` body: liveness plus the load-routing gauges."""

    TYPE: ClassVar[str] = "health-report"
    VERSION: ClassVar[int] = 1

    ok: bool
    role: str
    pid: int
    queue_depth: int = 0
    in_flight: int = 0
    worker_id: Optional[str] = None
    draining: bool = False
    workers: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        self._require_bool("ok")
        self._require(self.role in ("worker", "supervisor"),
                      "role must be 'worker' or 'supervisor'")
        self._require_int("pid", minimum=0)
        self._require_int("queue_depth", minimum=0)
        self._require_int("in_flight", minimum=0)
        self._require_str("worker_id", optional=True)
        self._require_bool("draining")
        self._require_dict("workers")


@register_message
@dataclass(frozen=True)
class StreamEvent(WireMessage):
    """One job state transition pushed over the ``/v1/stream`` WebSocket."""

    TYPE: ClassVar[str] = "stream-event"
    VERSION: ClassVar[int] = 1

    seq: int
    job_id: str
    status: str
    fingerprint: str
    circuit_name: str
    arch: str
    engine: str
    added_cost: Optional[int] = None
    optimal: Optional[bool] = None
    cache_hit: Optional[bool] = None
    error_code: Optional[str] = None
    worker: Optional[str] = None

    def validate(self) -> None:
        self._require_int("seq", minimum=1)
        self._require_str("job_id")
        self._require(self.status in JOB_STATES,
                      f"status must be one of {', '.join(JOB_STATES)}")
        self._require_str("fingerprint")
        self._require_str("circuit_name")
        self._require_str("arch")
        self._require_str("engine")
        self._require_int("added_cost", optional=True, minimum=0)
        self._require_bool("optimal", optional=True)
        self._require_bool("cache_hit", optional=True)
        self._require_str("error_code", optional=True)
        self._require_str("worker", optional=True)

    @classmethod
    def from_service_event(
        cls, event: Mapping[str, Any], *, worker: Optional[str] = None
    ) -> "StreamEvent":
        """Build from a :meth:`MappingService.subscribe` queue item."""
        return cls(
            seq=event["seq"],
            job_id=event["job_id"],
            status=event["status"],
            fingerprint=event["fingerprint"],
            circuit_name=event["circuit_name"],
            arch=event["arch"],
            engine=event["engine"],
            added_cost=event.get("added_cost"),
            optimal=event.get("optimal"),
            cache_hit=event.get("cache_hit"),
            error_code=event.get("error_code"),
            worker=worker,
        )


@register_message
@dataclass(frozen=True)
class PruneRequest(WireMessage):
    """``POST /v1/cache/prune`` body: invalidate cached results.

    ``ttl_seconds`` prunes result rows older than the TTL from the shared
    store; ``flush_memory`` additionally evicts the whole in-memory LRU of
    the receiving worker (the supervisor broadcasts the request, so *every*
    worker's LRU drops potentially-stale fingerprints).
    """

    TYPE: ClassVar[str] = "prune-request"
    VERSION: ClassVar[int] = 1

    ttl_seconds: Optional[float] = None
    flush_memory: bool = True

    def validate(self) -> None:
        self._require_number("ttl_seconds", optional=True, positive=True)
        self._require_bool("flush_memory")


@register_message
@dataclass(frozen=True)
class PruneReport(WireMessage):
    """``POST /v1/cache/prune`` response: what was reclaimed, per worker."""

    TYPE: ClassVar[str] = "prune-report"
    VERSION: ClassVar[int] = 1

    rows_pruned: int
    bytes_reclaimed: int
    memory_dropped: int
    artifact_rows_pruned: int = 0
    artifact_bytes_reclaimed: int = 0
    ttl_seconds: Optional[float] = None
    cache_dir: Optional[str] = None
    per_worker: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        self._require_int("rows_pruned", minimum=0)
        self._require_int("bytes_reclaimed", minimum=0)
        self._require_int("memory_dropped", minimum=0)
        self._require_int("artifact_rows_pruned", minimum=0)
        self._require_int("artifact_bytes_reclaimed", minimum=0)
        self._require_number("ttl_seconds", optional=True, positive=True)
        self._require_str("cache_dir", optional=True)
        self._require_dict("per_worker")


def _jsonable(value: Any) -> Any:
    """Best-effort reduction of error details to JSON-ready values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return repr(value)


__all__ = [
    "PROTOCOL_VERSION",
    "HTTP_STATUS_BY_ERROR_CODE",
    "DEFAULT_ERROR_STATUS",
    "http_status_for_code",
    "ProtocolError",
    "WireMessage",
    "register_message",
    "registered_messages",
    "to_wire",
    "from_wire",
    "from_json",
    "JOB_STATES",
    "SubmitRequest",
    "CancelRequest",
    "JobStatus",
    "ResultPayload",
    "ErrorEnvelope",
    "StatsReport",
    "HealthReport",
    "StreamEvent",
    "PruneRequest",
    "PruneReport",
]
