"""SWAP synthesis for permutations of physical-qubit states.

The paper computes ``swaps(pi)`` by exhaustive BFS over the permutation group
(:class:`~repro.arch.permutations.PermutationTable`), which is provably
minimal but dies beyond 8 qubits (``m!`` states).  This module generalises
permutation realisation behind one small protocol with two backends:

* :class:`TableSynthesizer` wraps the exact table — provably minimal SWAP
  counts and sequences, kept for couplings and subsets of at most
  :data:`EXHAUSTIVE_SYNTHESIS_MAX_QUBITS` qubits,
* :class:`RoutedSynthesizer` synthesises SWAP sequences in polynomial time at
  any device size by greedy token-swapping: the permutation is decomposed
  into cycles, each cycle into transpositions between consecutive cycle
  positions, and each transposition is routed along a coupling-graph
  shortest path (``2·d − 1`` SWAPs exchange two states ``d`` edges apart
  while restoring everything in between).  Costs are honest *upper bounds*
  (:attr:`~RoutedSynthesizer.optimal` is ``False``); all-pairs distances are
  memoised per :meth:`~repro.arch.coupling.CouplingMap.canonical_key`
  through :func:`repro.arch.cache.shared_distance_matrix`.

Partial mapping transitions never enumerate completions here: free states
are matched to the nearest free destination
(:func:`~repro.arch.permutations.nearest_free_completion`), which is exact
only when it happens to meet the distance lower bound — the routed backend
trades that guarantee for polynomial scaling.

:func:`synthesizer_for` picks the backend by device size; prefer
:func:`repro.arch.cache.shared_synthesizer` which memoises the choice.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.arch.coupling import CouplingMap
from repro.arch.permutations import (
    Mapping,
    Permutation,
    PermutationTable,
    SwapEdge,
    identity_permutation,
    nearest_free_completion,
)

#: Largest device for which the exhaustive (provably minimal) table is used.
EXHAUSTIVE_SYNTHESIS_MAX_QUBITS = 8

#: Per-synthesizer LRU capacity for memoised routed sequences.
_SEQUENCE_CACHE_MAX = 4096


@runtime_checkable
class PermutationSynthesizer(Protocol):
    """Realise permutations of physical-qubit states as SWAP sequences.

    The surface mirrors the query side of :class:`PermutationTable`, so a
    table can stand in wherever a synthesizer is expected (and vice versa
    for every consumer that only queries).
    """

    coupling: CouplingMap
    size: int

    @property
    def optimal(self) -> bool:
        """True when reported SWAP counts are provably minimal."""
        ...

    def reachable(self, perm: Permutation) -> bool:
        """True when *perm* can be realised by SWAPs on coupling edges."""
        ...

    def swaps(self, perm: Permutation) -> int:
        """Number of SWAPs of the synthesised sequence for *perm*."""
        ...

    def swap_sequence(self, perm: Permutation) -> List[SwapEdge]:
        """A SWAP-edge sequence realising *perm*."""
        ...

    def transition_cost(self, old: Mapping, new: Mapping) -> int:
        """SWAPs turning mapping *old* into mapping *new*."""
        ...

    def transition_sequence(self, old: Mapping, new: Mapping) -> List[SwapEdge]:
        """A SWAP-edge sequence turning mapping *old* into mapping *new*."""
        ...


class TableSynthesizer:
    """Exact synthesis backed by the exhaustive :class:`PermutationTable`.

    Args:
        coupling: The architecture (at most
            :data:`EXHAUSTIVE_SYNTHESIS_MAX_QUBITS` qubits).
        table: Pre-built table to wrap; resolved through
            :func:`repro.arch.cache.shared_permutation_table` when omitted.
    """

    optimal = True

    def __init__(self, coupling: CouplingMap, table: Optional[PermutationTable] = None):
        if table is None:
            from repro.arch.cache import shared_permutation_table

            table = shared_permutation_table(
                coupling, max_qubits_exhaustive=EXHAUSTIVE_SYNTHESIS_MAX_QUBITS
            )
        self.coupling = coupling
        self.size = coupling.num_qubits
        self.table = table

    def reachable(self, perm: Permutation) -> bool:
        return self.table.reachable(perm)

    def swaps(self, perm: Permutation) -> int:
        return self.table.swaps(perm)

    def swap_sequence(self, perm: Permutation) -> List[SwapEdge]:
        return self.table.swap_sequence(perm)

    def transition_cost(self, old: Mapping, new: Mapping) -> int:
        return self.table.transition_cost(old, new)

    def transition_sequence(self, old: Mapping, new: Mapping) -> List[SwapEdge]:
        return self.table.transition_sequence(old, new)


class SynthesisError(ValueError):
    """Raised when a permutation cannot be realised on the coupling graph."""


class RoutedSynthesizer:
    """Polynomial-time SWAP synthesis by path-routed token swapping.

    The synthesised sequences are valid for any device size and any
    reachable permutation, but their length is an upper bound on the true
    ``swaps(pi)`` — never below it, often above.  Consumers that report
    optimality must treat results built on this backend as ``optimal=False``.

    Args:
        coupling: The architecture.
        distances: Pre-computed all-pairs shortest-path distances; resolved
            through :func:`repro.arch.cache.shared_distance_matrix` when
            omitted.
    """

    optimal = False

    def __init__(
        self,
        coupling: CouplingMap,
        distances: Optional[Dict[int, Dict[int, int]]] = None,
    ):
        if distances is None:
            from repro.arch.cache import shared_distance_matrix

            distances = shared_distance_matrix(coupling)
        self.coupling = coupling
        self.size = coupling.num_qubits
        self._distances = distances
        self._neighbours = {
            qubit: coupling.neighbours(qubit) for qubit in range(coupling.num_qubits)
        }
        self._cache: "OrderedDict[Permutation, Tuple[SwapEdge, ...]]" = OrderedDict()

    # ------------------------------------------------------------------
    # Routing primitives
    # ------------------------------------------------------------------
    def _path(self, start: int, goal: int) -> List[int]:
        """A deterministic shortest path, descending the distance field."""
        row_goal = self._distances.get(goal, {})
        if start not in row_goal:
            raise SynthesisError(
                f"physical qubits {start} and {goal} are not connected on "
                f"{self.coupling.name!r}"
            )
        path = [start]
        current = start
        while current != goal:
            remaining = row_goal[current]
            current = next(
                n for n in self._neighbours[current]
                if row_goal.get(n) == remaining - 1
            )
            path.append(current)
        return path

    def _route_transposition(self, a: int, b: int, out: List[SwapEdge]) -> None:
        """Exchange the states at *a* and *b*, restoring everything between.

        Along the path ``a = v0, …, vd = b`` the forward sweep carries the
        state of ``a`` to ``b`` (displacing intermediates one step back) and
        the return sweep walks ``b``'s state home while fixing them up:
        ``2·d − 1`` SWAPs total.
        """
        path = self._path(a, b)
        for left, right in zip(path, path[1:]):
            out.append((min(left, right), max(left, right)))
        backward = path[:-1]
        for left, right in zip(backward[:-1][::-1], backward[1:][::-1]):
            out.append((min(left, right), max(left, right)))

    @staticmethod
    def _cycles(perm: Permutation) -> List[List[int]]:
        """Non-trivial cycles of *perm*, each starting at its smallest member."""
        seen = [False] * len(perm)
        cycles: List[List[int]] = []
        for start in range(len(perm)):
            if seen[start] or perm[start] == start:
                seen[start] = True
                continue
            cycle = []
            current = start
            while not seen[current]:
                seen[current] = True
                cycle.append(current)
                current = perm[current]
            cycles.append(cycle)
        return cycles

    # ------------------------------------------------------------------
    # PermutationSynthesizer surface
    # ------------------------------------------------------------------
    def reachable(self, perm: Permutation) -> bool:
        if len(perm) != self.size or sorted(perm) != list(range(self.size)):
            return False
        return all(
            destination in self._distances.get(source, {})
            for source, destination in enumerate(perm)
        )

    def swap_sequence(self, perm: Permutation) -> List[SwapEdge]:
        """Synthesise *perm* via cycle decomposition + path routing.

        A cycle ``c0 → c1 → … → c(k-1) → c0`` (the state at ``ci`` moves to
        ``c(i+1)``) is realised by the transpositions ``(c(k-2), c(k-1)), …,
        (c0, c1)`` applied in that order; each transposition is routed along
        a shortest path.

        Raises:
            SynthesisError: If *perm* is not a permutation of this device's
                positions or crosses connectivity components.
        """
        perm = tuple(perm)
        if len(perm) != self.size or sorted(perm) != list(range(self.size)):
            raise SynthesisError(
                f"not a permutation of {self.size} positions: {perm!r}"
            )
        cached = self._cache.get(perm)
        if cached is not None:
            self._cache.move_to_end(perm)
            return list(cached)
        sequence: List[SwapEdge] = []
        for cycle in self._cycles(perm):
            for left, right in zip(cycle[-2::-1], cycle[:0:-1]):
                self._route_transposition(left, right, sequence)
        self._cache[perm] = tuple(sequence)
        while len(self._cache) > _SEQUENCE_CACHE_MAX:
            self._cache.popitem(last=False)
        return sequence

    def swaps(self, perm: Permutation) -> int:
        return len(self.swap_sequence(perm))

    def transition_cost(self, old: Mapping, new: Mapping) -> int:
        return len(self.transition_sequence(old, new))

    def transition_sequence(self, old: Mapping, new: Mapping) -> List[SwapEdge]:
        """A SWAP sequence turning mapping *old* into mapping *new*.

        Free states (physical qubits hosting no mapped logical qubit) are
        assigned by nearest-free-destination matching — no enumeration of
        completions, hence an upper bound for partial mappings.
        """
        if len(old) != len(new):
            raise ValueError("mappings must have the same length")
        fixed: Dict[int, int] = {}
        for logical in range(len(old)):
            source, destination = old[logical], new[logical]
            if source in fixed and fixed[source] != destination:
                raise ValueError("old mapping is not injective")
            fixed[source] = destination
        completion = nearest_free_completion(fixed, self.size, self._distances)
        if completion is None:
            raise SynthesisError(
                "no permutation realises the requested transition on "
                f"{self.coupling.name!r}"
            )
        return self.swap_sequence(completion)


def replay_swap_sequence(size: int, sequence: List[SwapEdge]) -> Permutation:
    """The permutation realised by applying *sequence* left to right.

    Entry ``i`` of the result is the final position of the state initially
    at physical qubit ``i`` — the library's permutation convention, used by
    the differential tests to check synthesised sequences.
    """
    position = list(identity_permutation(size))
    for a, b in sequence:
        for token in range(size):
            if position[token] == a:
                position[token] = b
            elif position[token] == b:
                position[token] = a
    return tuple(position)


def synthesizer_for(
    coupling: CouplingMap,
    max_qubits_exhaustive: int = EXHAUSTIVE_SYNTHESIS_MAX_QUBITS,
) -> PermutationSynthesizer:
    """Pick the synthesis backend for *coupling* by device size.

    Devices of at most *max_qubits_exhaustive* qubits get the provably
    minimal :class:`TableSynthesizer`; anything larger gets the polynomial
    :class:`RoutedSynthesizer`.  Prefer
    :func:`repro.arch.cache.shared_synthesizer`, which memoises the instance
    per canonical key and counts backend selections for the perf gates.
    """
    if coupling.num_qubits <= max_qubits_exhaustive:
        return TableSynthesizer(coupling)
    return RoutedSynthesizer(coupling)


__all__ = [
    "EXHAUSTIVE_SYNTHESIS_MAX_QUBITS",
    "PermutationSynthesizer",
    "TableSynthesizer",
    "RoutedSynthesizer",
    "SynthesisError",
    "replay_swap_sequence",
    "synthesizer_for",
]
